//! The hybrid SAT-based decision procedure for SUF — the paper's primary
//! contribution.
//!
//! `sufsat-core` ties the whole stack together: function elimination
//! (`sufsat-suf`), separation-logic analyses (`sufsat-seplog`), the
//! SD/EIJ/HYBRID encoders (`sufsat-encode`) and the CDCL SAT solver
//! (`sufsat-sat`) become one call, [`decide`], that answers validity of an
//! SUF formula and reports the measurements the paper's evaluation uses.
//!
//! The automatic `SEP_THOLD` selection of paper §4.1 is provided by
//! [`select_threshold`]. Where the paper *predicts* the better encoding,
//! [`decide_portfolio`] instead *races* the encodings on threads and
//! cancels the losers — see the `portfolio` module docs.
//!
//! # Examples
//!
//! ```
//! use sufsat_core::{decide, DecideOptions, EncodingMode};
//! use sufsat_suf::TermManager;
//!
//! let mut tm = TermManager::new();
//! let x = tm.int_var("x");
//! let y = tm.int_var("y");
//! let lt = tm.mk_lt(x, y);
//! let ge = tm.mk_ge(x, y);
//! let phi = tm.mk_or(lt, ge); // totality of the order: valid
//! for mode in [EncodingMode::Sd, EncodingMode::Eij, EncodingMode::Hybrid(700)] {
//!     let d = decide(&mut tm, phi, &DecideOptions::with_mode(mode));
//!     assert!(d.outcome.is_valid());
//! }
//! ```

#![warn(missing_docs)]

mod bmc;
mod cache;
mod certify;
mod decide;
mod portfolio;
mod threshold;

pub use bmc::{
    check_bounded, check_bounded_with_stats, substitute_state, BmcResult, TransitionSystem,
};
pub use cache::CacheHandle;
pub use certify::{
    counterexample_falsifies_original, counterexample_interpretation,
    interpretation_from_instances, Certificate,
};
pub use decide::{
    decide, DecideOptions, DecideStats, Decision, Outcome, StopReason, DEFAULT_SEP_THOLD,
};
pub use portfolio::{
    decide_many, decide_portfolio, LaneReport, PortfolioDecision, PortfolioOptions,
};
pub use threshold::{select_threshold, ThresholdSample};

// Re-exported so downstream users can configure runs without depending on
// the encoder crate directly.
pub use sufsat_encode::{CnfMode, EncodingMode};
// Re-exported so cache-aware callers can rebuild counterexamples without
// depending on the seplog crate directly.
pub use sufsat_seplog::SepAssignment;
