//! Automatic `SEP_THOLD` selection (paper §4.1).
//!
//! Given normalized EIJ runtimes on a training sample, the paper sorts the
//! runtimes, splits the sequence at the index `k` minimizing the sum of the
//! two parts' variances (1-D clustering with squared-distance similarity),
//! and picks the smallest multiple of 100 greater than `n_k`, the
//! separation-predicate count of the benchmark at runtime `T_k`. On the
//! paper's 16-benchmark sample this procedure yields 700.

/// One training observation: normalized EIJ runtime (seconds per thousand
/// DAG nodes) and the benchmark's separation-predicate count.
#[derive(Debug, Copy, Clone, PartialEq)]
pub struct ThresholdSample {
    /// Normalized total EIJ time.
    pub normalized_time: f64,
    /// The benchmark's separation-predicate count.
    pub sep_predicates: usize,
}

/// Selects `SEP_THOLD` from EIJ training observations.
///
/// Returns the paper's default of 700 when fewer than two samples are
/// provided (no split exists).
///
/// # Examples
///
/// ```
/// use sufsat_core::{select_threshold, ThresholdSample};
///
/// // Two clearly separated clusters: cheap runs up to 650 predicates,
/// // expensive runs beyond.
/// let samples: Vec<ThresholdSample> = (0..8)
///     .map(|i| ThresholdSample {
///         normalized_time: 0.5 + i as f64 * 0.01,
///         sep_predicates: 100 + i * 80,
///     })
///     .chain((0..4).map(|i| ThresholdSample {
///         normalized_time: 400.0 + i as f64 * 10.0,
///         sep_predicates: 2000 + i * 500,
///     }))
///     .collect();
/// let threshold = select_threshold(&samples);
/// assert_eq!(threshold, 700);
/// ```
pub fn select_threshold(samples: &[ThresholdSample]) -> usize {
    let span = sufsat_obs::span_with!("core.select_threshold", samples = samples.len());
    if samples.len() < 2 {
        if span.is_recording() {
            sufsat_obs::event!(
                "threshold.selected",
                threshold = crate::DEFAULT_SEP_THOLD,
                split = 0usize,
                reason = "too_few_samples"
            );
        }
        return crate::DEFAULT_SEP_THOLD;
    }
    let mut sorted: Vec<ThresholdSample> = samples.to_vec();
    sorted.sort_by(|a, b| {
        a.normalized_time
            .partial_cmp(&b.normalized_time)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let times: Vec<f64> = sorted.iter().map(|s| s.normalized_time).collect();

    // k splits into {T_1..T_k} and {T_{k+1}..T_n} (1-based k in 1..n).
    let mut best_k = 1usize;
    let mut best_score = f64::INFINITY;
    for k in 1..times.len() {
        let score = variance(&times[..k]) + variance(&times[k..]);
        if score < best_score {
            best_score = score;
            best_k = k;
        }
    }
    // n_k: the predicate count at runtime T_k (the last "cheap" sample).
    let n_k = sorted[best_k - 1].sep_predicates;
    // Smallest multiple of 100 strictly greater than n_k.
    let threshold = (n_k / 100 + 1) * 100;
    if span.is_recording() {
        for (i, sample) in sorted.iter().enumerate() {
            sufsat_obs::event!(
                "threshold.sample",
                rank = i,
                normalized_time = sample.normalized_time,
                sep_predicates = sample.sep_predicates,
                cheap = i < best_k
            );
        }
        sufsat_obs::event!(
            "threshold.selected",
            threshold = threshold,
            split = best_k,
            n_k = n_k,
            reason = "variance_split"
        );
    }
    threshold
}

fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: f64, n: usize) -> ThresholdSample {
        ThresholdSample {
            normalized_time: t,
            sep_predicates: n,
        }
    }

    #[test]
    fn two_cluster_split() {
        // Cheap cluster ends at 676 predicates (the paper's n_k), so the
        // threshold becomes 700.
        let samples = vec![
            s(0.3, 12),
            s(0.5, 40),
            s(0.8, 120),
            s(1.0, 300),
            s(1.6, 676),
            s(220.0, 1500),
            s(260.0, 2400),
            s(300.0, 4000),
        ];
        assert_eq!(select_threshold(&samples), 700);
    }

    #[test]
    fn exact_multiple_rounds_up() {
        let samples = vec![s(1.0, 100), s(500.0, 900)];
        // n_k = 100 -> smallest multiple of 100 greater than 100 is 200.
        assert_eq!(select_threshold(&samples), 200);
    }

    #[test]
    fn degenerate_inputs_fall_back_to_default() {
        assert_eq!(select_threshold(&[]), crate::DEFAULT_SEP_THOLD);
        assert_eq!(select_threshold(&[s(1.0, 5)]), crate::DEFAULT_SEP_THOLD);
    }

    #[test]
    fn variance_helper() {
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let samples = vec![s(300.0, 4000), s(0.3, 12), s(250.0, 2000), s(1.2, 500)];
        assert_eq!(select_threshold(&samples), 600);
    }
}
