//! Opt-in result caching for [`decide`](crate::decide).
//!
//! A [`CacheHandle`] on [`DecideOptions`](crate::DecideOptions) makes
//! `decide` consult a [`ResultCache`] before running the pipeline and
//! populate it afterwards. The cache key is the *canonical form* of the
//! formula (`sufsat-cache`), so α-renamed and trivially-reordered
//! spellings of the same query hit the same entry.
//!
//! Two rules keep this sound and honest:
//!
//! * only definitive verdicts (`Valid` / `Invalid`) are cached — a
//!   timeout or budget stop describes one run, not the formula;
//! * certifying runs (`options.certify`) bypass the cache entirely: a
//!   certificate attests to a solve that actually happened.
//!
//! Cached counterexamples are stored over canonical symbol indices and
//! remapped to the querying formula's own symbols on a hit. They are
//! restricted to the original formula's variables (auxiliary constants
//! introduced by function elimination are dropped), so they are a
//! best-effort witness; the verdict is the contract.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use sufsat_cache::{CacheValue, CachedVerdict, Canonical, LoadReport, ResultCache, StatsDigest};
use sufsat_seplog::SepAssignment;

use crate::decide::{DecideStats, Decision, Outcome};

/// A shared, cloneable reference to a [`ResultCache`], carried inside
/// [`DecideOptions`](crate::DecideOptions).
///
/// Equality is identity: two handles are equal iff they point at the
/// same cache, which is what option-comparison cares about.
#[derive(Clone)]
pub struct CacheHandle(Arc<ResultCache>);

impl CacheHandle {
    /// Wraps an existing cache.
    pub fn new(cache: Arc<ResultCache>) -> CacheHandle {
        CacheHandle(cache)
    }

    /// A fresh in-memory cache with the given byte budget.
    pub fn with_budget(byte_budget: usize) -> CacheHandle {
        CacheHandle(Arc::new(ResultCache::new(byte_budget)))
    }

    /// A fresh cache backed by the persistent log at `path` (loaded to
    /// warm the store). Returns the load report alongside the handle.
    pub fn with_persistence(
        byte_budget: usize,
        path: &Path,
    ) -> std::io::Result<(CacheHandle, LoadReport)> {
        let (cache, report) = ResultCache::with_persistence(byte_budget, path)?;
        Ok((CacheHandle(Arc::new(cache)), report))
    }

    /// The underlying cache.
    pub fn cache(&self) -> &ResultCache {
        &self.0
    }

    /// The underlying shared pointer (e.g. to hand to a server).
    pub fn arc(&self) -> &Arc<ResultCache> {
        &self.0
    }
}

impl std::fmt::Debug for CacheHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("CacheHandle").field(&self.0).finish()
    }
}

impl PartialEq for CacheHandle {
    fn eq(&self, other: &CacheHandle) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Digest of the measurements worth replaying on a warm hit.
pub(crate) fn digest_from_stats(stats: &DecideStats) -> StatsDigest {
    StatsDigest {
        dag_size: stats.dag_size as u64,
        cnf_clauses: stats.cnf_clauses,
        conflict_clauses: stats.conflict_clauses,
        decisions: stats.decisions,
        propagations: stats.propagations,
        sep_predicates: stats.sep_predicates as u64,
        translate_time_us: stats.translate_time.as_micros() as u64,
        solve_time_us: stats.sat_time.as_micros() as u64,
    }
}

/// The cacheable projection of a decision, or `None` when the outcome
/// is not definitive.
pub(crate) fn value_from_decision(
    canonical: &Canonical,
    decision: &Decision,
) -> Option<CacheValue> {
    let digest = digest_from_stats(&decision.stats);
    match &decision.outcome {
        Outcome::Valid => Some(CacheValue {
            verdict: CachedVerdict::Valid,
            int_model: Vec::new(),
            bool_model: Vec::new(),
            digest,
        }),
        Outcome::Invalid(cex) => {
            let mut int_model: Vec<(u32, i64)> = cex
                .ints
                .iter()
                .filter_map(|(&var, &val)| canonical.int_var_index(var).map(|i| (i, val)))
                .collect();
            int_model.sort_unstable();
            let mut bool_model: Vec<(u32, bool)> = cex
                .bools
                .iter()
                .filter_map(|(&var, &val)| canonical.bool_var_index(var).map(|i| (i, val)))
                .collect();
            bool_model.sort_unstable();
            Some(CacheValue {
                verdict: CachedVerdict::Invalid,
                int_model,
                bool_model,
                digest,
            })
        }
        Outcome::Unknown(_) => None,
    }
}

/// Reconstructs a decision from a cache hit, with the counterexample
/// remapped onto the querying formula's own symbols.
pub(crate) fn decision_from_value(canonical: &Canonical, value: &CacheValue) -> Decision {
    let outcome = match value.verdict {
        CachedVerdict::Valid => Outcome::Valid,
        CachedVerdict::Invalid => {
            let mut cex = SepAssignment::default();
            for &(idx, val) in &value.int_model {
                if let Some(&var) = canonical.int_vars.get(idx as usize) {
                    cex.ints.insert(var, val);
                }
            }
            for &(idx, val) in &value.bool_model {
                if let Some(&var) = canonical.bool_vars.get(idx as usize) {
                    cex.bools.insert(var, val);
                }
            }
            Outcome::Invalid(cex)
        }
    };
    let digest = &value.digest;
    let stats = DecideStats {
        dag_size: digest.dag_size as usize,
        cnf_clauses: digest.cnf_clauses,
        conflict_clauses: digest.conflict_clauses,
        decisions: digest.decisions,
        propagations: digest.propagations,
        sep_predicates: digest.sep_predicates as usize,
        translate_time: Duration::from_micros(digest.translate_time_us),
        sat_time: Duration::from_micros(digest.solve_time_us),
        ..DecideStats::default()
    };
    Decision {
        outcome,
        stats,
        certificate: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decide, DecideOptions, StopReason};
    use sufsat_suf::TermManager;

    fn invalid_uf(tm: &mut TermManager, f_name: &str, x_name: &str, y_name: &str) -> sufsat_suf::TermId {
        // f(x) = f(y) ⇒ x = y — invalid.
        let f = tm.declare_fun(f_name, 1);
        let x = tm.int_var(x_name);
        let y = tm.int_var(y_name);
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let hyp = tm.mk_eq(fx, fy);
        let conc = tm.mk_eq(x, y);
        tm.mk_implies(hyp, conc)
    }

    #[test]
    fn repeat_decide_hits_the_cache_with_the_same_verdict() {
        let handle = CacheHandle::with_budget(1 << 20);
        let mut options = DecideOptions::default();
        options.cache = Some(handle.clone());

        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let lt = tm.mk_lt(x, y);
        let ge = tm.mk_ge(x, y);
        let phi = tm.mk_or(lt, ge); // valid

        let cold = decide(&mut tm, phi, &options);
        assert!(cold.outcome.is_valid());
        let warm = decide(&mut tm, phi, &options);
        assert!(warm.outcome.is_valid());
        let stats = handle.cache().stats();
        assert_eq!(stats.hits, 1, "{stats:?}");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.inserts, 1);
        // The digest replays the cold run's counters.
        assert_eq!(warm.stats.dag_size, cold.stats.dag_size);
        assert_eq!(warm.stats.cnf_clauses, cold.stats.cnf_clauses);
    }

    #[test]
    fn alpha_renamed_query_hits_and_its_model_falsifies() {
        let handle = CacheHandle::with_budget(1 << 20);
        let mut options = DecideOptions::default();
        options.cache = Some(handle.clone());

        let mut tm = TermManager::new();
        let phi = invalid_uf(&mut tm, "f", "x", "y");
        let cold = decide(&mut tm, phi, &options);
        assert!(matches!(cold.outcome, Outcome::Invalid(_)));

        // An α-renamed spelling of the same query must hit the cache.
        let psi = invalid_uf(&mut tm, "g", "a", "b");
        assert_ne!(phi, psi);
        let warm = decide(&mut tm, psi, &options);
        let Outcome::Invalid(cex) = warm.outcome else {
            panic!("warm verdict must match cold: {:?}", warm.outcome);
        };
        assert_eq!(handle.cache().stats().hits, 1);
        // The remapped model speaks the duplicate's own symbols and,
        // being over original variables only here, falsifies it.
        let a = tm.find_int_var("a").unwrap();
        let b = tm.find_int_var("b").unwrap();
        assert!(cex.ints.contains_key(&a) || cex.ints.contains_key(&b));
        assert!(!cex.ints.contains_key(&tm.find_int_var("x").unwrap()));
    }

    #[test]
    fn unknown_outcomes_are_never_cached() {
        let handle = CacheHandle::with_budget(1 << 20);
        let mut options = DecideOptions::default();
        options.cache = Some(handle.clone());
        let cancel = sufsat_sat::CancelToken::new();
        cancel.cancel();
        options.cancel = Some(cancel);

        let mut tm = TermManager::new();
        let phi = invalid_uf(&mut tm, "f", "x", "y");
        let d = decide(&mut tm, phi, &options);
        assert_eq!(d.outcome, Outcome::Unknown(StopReason::Cancelled));
        let stats = handle.cache().stats();
        assert_eq!(stats.inserts, 0);
        // A later uncancelled run decides for real and caches.
        options.cancel = None;
        let d = decide(&mut tm, phi, &options);
        assert!(matches!(d.outcome, Outcome::Invalid(_)));
        assert_eq!(handle.cache().stats().inserts, 1);
    }

    #[test]
    fn certifying_runs_bypass_the_cache() {
        let handle = CacheHandle::with_budget(1 << 20);
        let mut options = DecideOptions::default();
        options.cache = Some(handle.clone());
        options.certify = true;

        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let lt = tm.mk_lt(x, y);
        let ge = tm.mk_ge(x, y);
        let phi = tm.mk_or(lt, ge);
        let d = decide(&mut tm, phi, &options);
        assert!(d.outcome.is_valid());
        assert!(d.certificate.is_some(), "certificate from a real solve");
        let stats = handle.cache().stats();
        assert_eq!(stats.hits + stats.misses + stats.inserts, 0, "{stats:?}");
    }

    #[test]
    fn handle_equality_is_identity() {
        let a = CacheHandle::with_budget(1024);
        let b = CacheHandle::with_budget(1024);
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
        // DecideOptions stays comparable with a handle attached.
        let mut opts_a = DecideOptions::default();
        opts_a.cache = Some(a.clone());
        assert_eq!(opts_a, opts_a.clone());
    }
}
