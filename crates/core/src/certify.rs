//! Two-sided answer certification.
//!
//! A decision procedure for validity answers in two directions, and both
//! can be independently certified without trusting the encoder or the SAT
//! solver:
//!
//! * **Invalid** comes with a decoded counterexample. The certifier
//!   replays it through the reference evaluator [`sufsat_suf::eval`] —
//!   against the post-elimination separation formula *and* against the
//!   original SUF formula, with function/predicate tables reconstructed
//!   from the elimination's instance lists.
//! * **Valid** means the SAT solver refuted `¬F_bool`. With proof logging
//!   enabled the recorded DRAT proof is replayed through the built-in
//!   forward RUP checker against the recorded input clauses.
//!
//! Certification is requested with [`DecideOptions::certify`]
//! (`crate::DecideOptions::certify`); the verdict-plus-evidence lands in
//! [`Decision::certificate`] (`crate::Decision::certificate`). The
//! differential fuzzing harness (`sufsat-fuzz`) turns a non-holding
//! certificate into a shrunk reproducer.

use std::collections::HashMap;

use sufsat_seplog::SepAssignment;
use sufsat_suf::{
    eval, ElimResult, FunSym, MapInterpretation, PredSym, TermId, TermManager, Value,
};

/// Machine-checked evidence for one [`decide`](crate::decide) answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// Evidence for an `Invalid` answer: the decoded assignment was
    /// replayed through the reference evaluator.
    Counterexample {
        /// Whether the SAT model decoded into an integer assignment at all
        /// (an inconsistent EIJ class makes this `false`).
        decoded: bool,
        /// Whether the assignment falsifies the post-elimination
        /// separation formula.
        falsifies_separation: bool,
        /// Whether the assignment, extended to function/predicate tables
        /// via the elimination's instance lists, falsifies the original
        /// SUF formula.
        falsifies_original: bool,
    },
    /// Evidence for a `Valid` answer: the DRAT proof of `¬F_bool`'s
    /// unsatisfiability was replayed through the forward RUP checker.
    Refutation {
        /// Number of recorded proof steps.
        steps: usize,
        /// Whether the replay succeeded.
        checked: bool,
    },
}

impl Certificate {
    /// Whether the certificate actually certifies the answer.
    pub fn holds(&self) -> bool {
        match self {
            Certificate::Counterexample {
                decoded,
                falsifies_separation,
                falsifies_original,
            } => *decoded && *falsifies_separation && *falsifies_original,
            Certificate::Refutation { checked, .. } => *checked,
        }
    }
}

/// Extends a decoded counterexample to a total interpretation of the
/// *original* formula's symbols.
///
/// The assignment speaks about the separation formula: symbolic constants
/// plus the fresh `vf!…`/`vp!…` instance constants. Function and predicate
/// applications of the original formula are interpreted by tables built
/// from the elimination's instance lists — instance arguments are
/// evaluated under the assignment and mapped to the instance constant's
/// value, first instance wins, exactly mirroring the nested-ITE chains.
/// Under the returned interpretation the original formula evaluates to the
/// same truth value as the separation formula under the plain assignment.
pub fn counterexample_interpretation(
    tm: &TermManager,
    elim: &ElimResult,
    cex: &SepAssignment,
) -> MapInterpretation {
    interpretation_from_instances(tm, &elim.fun_instances, &elim.pred_instances, cex)
}

/// [`counterexample_interpretation`] over bare instance tables — the form
/// incremental sessions use, where the tables live in a persistent
/// [`sufsat_suf::IncrementalElim`] rather than a one-shot
/// [`ElimResult`].
pub fn interpretation_from_instances(
    tm: &TermManager,
    fun_instances: &HashMap<FunSym, Vec<(Vec<TermId>, TermId)>>,
    pred_instances: &HashMap<PredSym, Vec<(Vec<TermId>, TermId)>>,
    cex: &SepAssignment,
) -> MapInterpretation {
    // The same base the assignment's own `evaluate` uses: seed 0 and
    // fallback range 1, so symbols outside the assignment default to
    // 0/deterministic values consistently on both sides of the comparison.
    let mut interp = MapInterpretation::with_seed(0);
    interp.fallback_range = 1;
    for (&v, &val) in &cex.ints {
        interp.set_int(v, val);
    }
    for (&b, &val) in &cex.bools {
        interp.set_bool(b, val);
    }

    // Argument terms are application-free, so the base interpretation
    // evaluates them directly.
    let arg_value = |interp: &MapInterpretation, t: TermId| eval(tm, t, interp).as_int();

    for (&f, instances) in fun_instances {
        for (args, fresh) in instances {
            let vals: Vec<i64> = args.iter().map(|&a| arg_value(&interp, a)).collect();
            let out = eval(tm, *fresh, &interp).as_int();
            interp.fun_tables.entry((f, vals)).or_insert(out);
        }
    }
    for (&p, instances) in pred_instances {
        for (args, fresh) in instances {
            let vals: Vec<i64> = args.iter().map(|&a| arg_value(&interp, a)).collect();
            let out = eval(tm, *fresh, &interp).as_bool();
            interp.pred_tables.entry((p, vals)).or_insert(out);
        }
    }
    interp
}

/// Whether the decoded counterexample falsifies the original SUF formula
/// under the interpretation induced by the elimination instance lists.
pub fn counterexample_falsifies_original(
    tm: &TermManager,
    phi: TermId,
    elim: &ElimResult,
    cex: &SepAssignment,
) -> bool {
    let span = sufsat_obs::span_with!(
        "certify.replay_original",
        ints = cex.ints.len(),
        bools = cex.bools.len()
    );
    let interp = counterexample_interpretation(tm, elim, cex);
    let falsified = eval(tm, phi, &interp) == Value::Bool(false);
    if span.is_recording() {
        sufsat_obs::event!("certify.replay_original.result", falsified = falsified);
    }
    falsified
}

/// Whether model-replay certification was requested through the
/// environment (`SUFSAT_CERTIFY=1`).
pub(crate) fn certify_env() -> bool {
    std::env::var("SUFSAT_CERTIFY").is_ok_and(|v| v == "1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_suf::eliminate;

    #[test]
    fn reconstructed_tables_agree_with_ite_chains() {
        // f(x) < f(y) is invalid; any falsifying assignment of the
        // eliminated formula must also falsify the original through the
        // reconstructed function table.
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let phi = tm.mk_lt(fx, fy);
        let elim = eliminate(&mut tm, phi);
        assert_eq!(elim.fun_instances[&f].len(), 2);

        // Build an explicit falsifying assignment: x = y forces, via the
        // ITE chain, f(x) = f(y), so f(x) < f(y) is false.
        let mut cex = SepAssignment::default();
        let xs = tm.find_int_var("x").unwrap();
        let ys = tm.find_int_var("y").unwrap();
        cex.ints.insert(xs, 3);
        cex.ints.insert(ys, 3);
        assert!(!cex.evaluate(&tm, elim.formula));
        assert!(counterexample_falsifies_original(&tm, phi, &elim, &cex));
    }

    #[test]
    fn nested_applications_resolve_through_tables() {
        // g(f(x)) = g(f(y)) with x = y: valid, so under ANY assignment the
        // original evaluates exactly like the eliminated formula (true).
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let g = tm.declare_fun("g", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let gfx = tm.mk_app(g, vec![fx]);
        let gfy = tm.mk_app(g, vec![fy]);
        let hyp = tm.mk_eq(x, y);
        let conc = tm.mk_eq(gfx, gfy);
        let phi = tm.mk_implies(hyp, conc);
        let elim = eliminate(&mut tm, phi);
        for (xv, yv) in [(0, 0), (1, 2), (5, 5), (-3, 4)] {
            let mut cex = SepAssignment::default();
            cex.ints.insert(tm.find_int_var("x").unwrap(), xv);
            cex.ints.insert(tm.find_int_var("y").unwrap(), yv);
            let interp = counterexample_interpretation(&tm, &elim, &cex);
            let orig = eval(&tm, phi, &interp).as_bool();
            let sep = cex.evaluate(&tm, elim.formula);
            assert_eq!(orig, sep, "x={xv} y={yv}");
        }
    }
}
