//! Bounded model checking on top of the decision procedure.
//!
//! The paper situates SUF as the logic "of systems modeled in CLU logic" —
//! the UCLID verifier used exactly this decision procedure for bounded
//! model checking of out-of-order microprocessors. This module provides
//! that flow: a [`TransitionSystem`] with symbolic update terms is unrolled
//! by substitution, and each step's property obligation becomes one
//! validity query.

use std::collections::HashMap;

use sufsat_seplog::SepAssignment;
use sufsat_suf::{substitute, Sort, TermId, TermManager};

use crate::decide::{decide, DecideOptions, DecideStats, Outcome, StopReason};

/// A deterministic symbolic transition system over integer state variables,
/// with fresh-per-step primary inputs.
///
/// `next[i]` is the update term of `state[i]`, written over the state
/// variables and the input variables; inputs are replaced by fresh copies
/// at every unrolling step.
#[derive(Debug, Clone)]
pub struct TransitionSystem {
    /// Current-state variables (integer-sorted terms, typically `IntVar`s).
    pub state: Vec<TermId>,
    /// Update term per state variable, aligned with `state`.
    pub next: Vec<TermId>,
    /// Primary-input variables, freshened at each step.
    pub inputs: Vec<TermId>,
    /// Initial-state predicate over the state variables.
    pub init: TermId,
    /// Safety property over the state variables.
    pub property: TermId,
}

/// Result of a bounded check.
#[derive(Debug, Clone, PartialEq)]
pub enum BmcResult {
    /// The property holds on every path of length up to the bound.
    Bounded(usize),
    /// The property fails at `step`; the assignment falsifies the unrolled
    /// obligation (it speaks about step-0 state and per-step input copies).
    CounterexampleAt {
        /// First failing step.
        step: usize,
        /// A falsifying assignment.
        assignment: SepAssignment,
    },
    /// A resource budget stopped the check at `step`.
    Unknown {
        /// The step that could not be decided.
        step: usize,
        /// Why it stopped.
        reason: StopReason,
    },
}

/// Checks the safety property for all executions of length `0..=bound`.
///
/// Each step `k` discharges the obligation
/// `init(s₀) ⇒ property(sₖ)` where `sₖ` is the `k`-fold symbolic unrolling
/// of the update terms with fresh inputs per step.
///
/// # Panics
///
/// Panics if `state` and `next` lengths differ, a state/input term is not
/// integer-sorted, or `init`/`property` are not Boolean.
///
/// # Examples
///
/// ```
/// use sufsat_core::{check_bounded, BmcResult, DecideOptions, TransitionSystem};
/// use sufsat_suf::TermManager;
///
/// // A saturating toggle: x' = ITE(x = lo, hi, lo); property: x = lo ∨ x = hi.
/// let mut tm = TermManager::new();
/// let x = tm.int_var("x");
/// let lo = tm.int_var("lo");
/// let hi = tm.int_var("hi");
/// let at_lo = tm.mk_eq(x, lo);
/// let next = tm.mk_ite_int(at_lo, hi, lo);
/// let at_hi = tm.mk_eq(x, hi);
/// let property = tm.mk_or(at_lo, at_hi);
/// let init = at_lo;
/// let system = TransitionSystem {
///     state: vec![x],
///     next: vec![next],
///     inputs: vec![],
///     init,
///     property,
/// };
/// let result = check_bounded(&mut tm, &system, 4, &DecideOptions::default());
/// assert_eq!(result, BmcResult::Bounded(4));
/// ```
pub fn check_bounded(
    tm: &mut TermManager,
    system: &TransitionSystem,
    bound: usize,
    options: &DecideOptions,
) -> BmcResult {
    check_bounded_with_stats(tm, system, bound, options).0
}

/// [`check_bounded`], additionally reporting the accumulated cost of every
/// per-step decision (times and clause/conflict counters summed via
/// [`DecideStats::absorb`]). The incremental-BMC evaluation compares this
/// total against a persistent-session run.
pub fn check_bounded_with_stats(
    tm: &mut TermManager,
    system: &TransitionSystem,
    bound: usize,
    options: &DecideOptions,
) -> (BmcResult, DecideStats) {
    assert_eq!(
        system.state.len(),
        system.next.len(),
        "state and next must align"
    );
    for &s in system.state.iter().chain(&system.inputs) {
        assert_eq!(tm.sort(s), Sort::Int, "state and inputs must be integers");
    }
    assert_eq!(tm.sort(system.init), Sort::Bool, "init must be Boolean");
    assert_eq!(
        tm.sort(system.property),
        Sort::Bool,
        "property must be Boolean"
    );

    // Current symbolic value of each state variable (step 0: itself).
    let mut current: HashMap<TermId, TermId> =
        system.state.iter().map(|&s| (s, s)).collect();
    let mut total = DecideStats::default();

    for step in 0..=bound {
        // Obligation: init(s0) => property(s_step).
        let prop_now = substitute_state(tm, system.property, system, &current, step);
        let obligation = tm.mk_implies(system.init, prop_now);
        let decision = decide(tm, obligation, options);
        total.absorb(&decision.stats);
        match decision.outcome {
            Outcome::Valid => {}
            Outcome::Invalid(assignment) => {
                return (BmcResult::CounterexampleAt { step, assignment }, total);
            }
            Outcome::Unknown(reason) => {
                return (BmcResult::Unknown { step, reason }, total);
            }
        }
        if step == bound {
            break;
        }
        // Advance: s_{k+1} = next(s_k, fresh inputs).
        let next_state: Vec<TermId> = system
            .next
            .iter()
            .map(|&n| substitute_state(tm, n, system, &current, step))
            .collect();
        for (s, n) in system.state.iter().zip(next_state) {
            current.insert(*s, n);
        }
    }
    (BmcResult::Bounded(bound), total)
}

/// Substitutes the current symbolic state into `term` and freshens the
/// inputs for `step`.
///
/// `current` maps each state variable to its symbolic value at the current
/// step; inputs are replaced by fresh `in<step>!…` copies. Public so that
/// alternative unrolling clients (the incremental session's BMC mode)
/// produce the *same* obligations as [`check_bounded`].
pub fn substitute_state(
    tm: &mut TermManager,
    term: TermId,
    system: &TransitionSystem,
    current: &HashMap<TermId, TermId>,
    step: usize,
) -> TermId {
    let mut map: HashMap<TermId, TermId> = current.clone();
    for &input in &system.inputs {
        let fresh = tm.fresh_int_var(&format!("in{step}"));
        map.insert(input, fresh);
    }
    substitute(tm, term, &map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::DecideOptions;

    #[test]
    fn counter_stays_above_floor() {
        // x' = ITE(grow, x+1, x) with symbolic input-controlled growth:
        // from x = floor, the property floor <= x holds at every depth.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let floor = tm.int_var("floor");
        let inp = tm.int_var("inp");
        let grow = tm.mk_lt(floor, inp);
        let inc = tm.mk_succ(x);
        let next = tm.mk_ite_int(grow, inc, x);
        let init = tm.mk_eq(x, floor);
        let property = tm.mk_le(floor, x);
        let system = TransitionSystem {
            state: vec![x],
            next: vec![next],
            inputs: vec![inp],
            init,
            property,
        };
        let result = check_bounded(&mut tm, &system, 5, &DecideOptions::default());
        assert_eq!(result, BmcResult::Bounded(5));
    }

    #[test]
    fn violation_is_found_at_the_right_depth() {
        // x' = x + 1 from x = base; the property x < base + 3 fails exactly
        // at step 3.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let base = tm.int_var("base");
        let next = tm.mk_succ(x);
        let init = tm.mk_eq(x, base);
        let limit = tm.mk_offset(base, 3);
        let property = tm.mk_lt(x, limit);
        let system = TransitionSystem {
            state: vec![x],
            next: vec![next],
            inputs: vec![],
            init,
            property,
        };
        match check_bounded(&mut tm, &system, 10, &DecideOptions::default()) {
            BmcResult::CounterexampleAt { step, .. } => assert_eq!(step, 3),
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn two_state_lock_protocol() {
        // The device-driver lock discipline as a transition system: the
        // lock toggles on a symbolic condition and must stay in {u, l}.
        let mut tm = TermManager::new();
        let lock = tm.int_var("lock");
        let unlocked = tm.int_var("u");
        let locked = tm.int_var("l");
        let guard = tm.int_var("guard");
        let inp = tm.int_var("trigger");
        let cond = tm.mk_eq(inp, guard);
        let is_u = tm.mk_eq(lock, unlocked);
        let toggled = tm.mk_ite_int(is_u, locked, unlocked);
        let next = tm.mk_ite_int(cond, toggled, lock);
        let init = is_u;
        let ok_u = tm.mk_eq(lock, unlocked);
        let ok_l = tm.mk_eq(lock, locked);
        let property = tm.mk_or(ok_u, ok_l);
        let system = TransitionSystem {
            state: vec![lock],
            next: vec![next],
            inputs: vec![inp],
            init,
            property,
        };
        let result = check_bounded(&mut tm, &system, 6, &DecideOptions::default());
        assert_eq!(result, BmcResult::Bounded(6));
    }

    #[test]
    fn uf_datapath_in_transition_relation() {
        // State flows through an uninterpreted ALU; the trivial property
        // x = x stays valid, and an unsound property (x stays equal to its
        // seed) is refuted at step 1.
        let mut tm = TermManager::new();
        let alu = tm.declare_fun("alu", 1);
        let x = tm.int_var("x");
        let seed = tm.int_var("seed");
        let next = tm.mk_app(alu, vec![x]);
        let init = tm.mk_eq(x, seed);
        let property = tm.mk_eq(x, seed);
        let system = TransitionSystem {
            state: vec![x],
            next: vec![next],
            inputs: vec![],
            init,
            property,
        };
        match check_bounded(&mut tm, &system, 4, &DecideOptions::default()) {
            BmcResult::CounterexampleAt { step, .. } => assert_eq!(step, 1),
            other => panic!("alu output need not equal the seed: {other:?}"),
        }
    }

    #[test]
    fn budgets_propagate() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let vars: Vec<_> = (0..9).map(|i| tm.int_var(&format!("v{i}"))).collect();
        // A property that is valid but needs search: the negated
        // pigeonhole-style constraint from the failure-mode tests.
        let zero = tm.int_var("zero");
        let mut conj = Vec::new();
        for &v in &vars {
            conj.push(tm.mk_ge(v, zero));
            let hi = tm.mk_offset(zero, 7);
            conj.push(tm.mk_le(v, hi));
        }
        for i in 0..vars.len() {
            for j in i + 1..vars.len() {
                conj.push(tm.mk_ne(vars[i], vars[j]));
            }
        }
        let all = tm.mk_and_many(&conj);
        let property = tm.mk_not(all);
        let init = tm.mk_eq(x, zero);
        let system = TransitionSystem {
            state: vec![x],
            next: vec![x],
            inputs: vec![],
            init,
            property,
        };
        let mut options = DecideOptions::default();
        options.conflict_budget = Some(1);
        match check_bounded(&mut tm, &system, 2, &options) {
            BmcResult::Unknown { .. } | BmcResult::Bounded(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
