//! The end-to-end decision procedure (paper §2.1 pipeline + §4 hybrid).
//!
//! Validity of an SUF formula `F_suf` is decided by:
//!
//! 1. eliminating uninterpreted function/predicate applications with the
//!    positive-equality-aware nested-ITE method (`sufsat-suf`), yielding
//!    the separation formula `F_sep`;
//! 2. computing equivalence classes, small-model domain sizes and per-class
//!    `SepCnt` (`sufsat-seplog`);
//! 3. encoding each class with SD or EIJ according to the selected
//!    [`EncodingMode`] (`sufsat-encode`), producing `F_bool = F_trans ⇒
//!    F_bvar`;
//! 4. checking `¬F_bool` with the CDCL SAT solver (`sufsat-sat`): UNSAT
//!    means `F_suf` is valid; a model decodes into a counterexample.

use std::time::{Duration, Instant};

use sufsat_encode::{
    encode, load_into_solver, try_decode_model, CnfMode, EncodeOptions, EncodingMode,
};
use sufsat_sat::{CancelToken, Interrupt, SolveResult, Solver};
use sufsat_seplog::{SepAnalysis, SepAssignment};
use sufsat_suf::{eliminate, TermId, TermManager};

use crate::certify::{certify_env, counterexample_falsifies_original, Certificate};

/// Options controlling [`decide`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecideOptions {
    /// Per-class encoding selection (the paper's SD / EIJ / HYBRID /
    /// fixed-hybrid modes).
    pub mode: EncodingMode,
    /// CNF conversion style.
    pub cnf: CnfMode,
    /// Budget on generated transitivity constraints; exceeding it stops the
    /// run in the translation stage, like the paper's EIJ timeouts.
    pub trans_budget: usize,
    /// Optional conflict budget for the SAT search.
    pub conflict_budget: Option<u64>,
    /// Optional wall-clock timeout for the SAT search.
    pub timeout: Option<Duration>,
    /// Optional cooperative cancellation token, polled in the translation
    /// and SAT stages. Raising it from another thread stops the run with
    /// [`Outcome::Unknown`]`(`[`StopReason::Cancelled`]`)` — this is how
    /// the portfolio engine retires losing lanes.
    pub cancel: Option<CancelToken>,
    /// Certify the answer: SAT models are replayed through the reference
    /// evaluator against both the separation formula and the original
    /// formula, and UNSAT answers log a DRAT proof that is replayed
    /// through the built-in RUP checker. The evidence is reported in
    /// [`Decision::certificate`]; certification failures are *reported*
    /// rather than panicked on, so a fuzzing oracle can shrink them.
    pub certify: bool,
}

impl Default for DecideOptions {
    fn default() -> DecideOptions {
        DecideOptions {
            mode: EncodingMode::Hybrid(DEFAULT_SEP_THOLD),
            cnf: CnfMode::default(),
            trans_budget: 2_000_000,
            conflict_budget: None,
            timeout: None,
            cancel: None,
            certify: false,
        }
    }
}

impl DecideOptions {
    /// Options for one of the paper's encoding modes with other settings at
    /// their defaults.
    pub fn with_mode(mode: EncodingMode) -> DecideOptions {
        DecideOptions {
            mode,
            ..DecideOptions::default()
        }
    }
}

/// The paper's default `SEP_THOLD`, derived in §4.1 by clustering
/// normalized EIJ runtimes on a 16-benchmark training sample.
pub const DEFAULT_SEP_THOLD: usize = 700;

/// The answer of the decision procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The formula is valid (true under every interpretation).
    Valid,
    /// The formula is falsifiable; the assignment falsifies the separation
    /// formula obtained after function elimination (fresh `vf!…`/`vp!…`
    /// constants name the eliminated application instances).
    Invalid(SepAssignment),
    /// A resource budget stopped the run first.
    Unknown(StopReason),
}

impl Outcome {
    /// Whether the outcome is [`Outcome::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, Outcome::Valid)
    }
}

/// Why a run stopped without an answer.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// Transitivity-constraint generation exceeded its budget (the paper's
    /// EIJ translation-stage blow-up).
    TranslationBudget,
    /// The SAT conflict budget ran out.
    ConflictBudget,
    /// The SAT wall-clock timeout elapsed.
    Timeout,
    /// A [`CancelToken`] was raised from another thread (e.g. a portfolio
    /// lane losing the race).
    Cancelled,
}

/// Measurements of one run — the quantities the paper's evaluation reports
/// (Figure 2 columns, Figure 3 features, Figures 4–6 total times).
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct DecideStats {
    /// DAG node count of the input formula (the paper's size measure).
    pub dag_size: usize,
    /// Time spent translating to CNF (elimination + analysis + encoding).
    pub translate_time: Duration,
    /// Time spent in the SAT solver.
    pub sat_time: Duration,
    /// CNF clauses given to the solver (Figure 2, "# of CNF Clauses").
    pub cnf_clauses: u64,
    /// Conflict clauses the solver derived (Figure 2, "# of Conflict
    /// Clauses").
    pub conflict_clauses: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// SAT propagations.
    pub propagations: u64,
    /// Total separation predicates across classes (Figure 3's feature).
    pub sep_predicates: usize,
    /// Number of `V_g` equivalence classes.
    pub classes: usize,
    /// Classes encoded with SD.
    pub sd_classes: usize,
    /// Classes encoded with EIJ.
    pub eij_classes: usize,
    /// Canonical predicate variables allocated by EIJ.
    pub pred_vars: usize,
    /// Transitivity clauses generated.
    pub trans_clauses: usize,
    /// Largest small-model range over classes (a §3 candidate feature).
    pub max_class_range: u64,
    /// Sum of small-model ranges (another §3 candidate feature).
    pub total_class_range: u64,
    /// Fraction of function applications classified as p-functions
    /// (another §3 candidate feature).
    pub p_fun_fraction: f64,
    /// Fresh constants introduced by function elimination.
    pub fresh_constants: usize,
}

impl DecideStats {
    /// Total wall time (translation + SAT).
    pub fn total_time(&self) -> Duration {
        self.translate_time + self.sat_time
    }

    /// Total time normalized by formula size, in seconds per thousand DAG
    /// nodes — the y-axis of the paper's Figure 3.
    pub fn normalized_time(&self) -> f64 {
        self.total_time().as_secs_f64() / (self.dag_size.max(1) as f64 / 1000.0)
    }
}

/// Outcome plus measurements of one [`decide`] run.
#[derive(Debug, Clone)]
pub struct Decision {
    /// The verdict.
    pub outcome: Outcome,
    /// The measurements.
    pub stats: DecideStats,
    /// Machine-checked evidence for the verdict, present when
    /// [`DecideOptions::certify`] was set and the run produced a
    /// definitive answer.
    pub certificate: Option<Certificate>,
}

/// Decides validity of the SUF formula `phi`.
///
/// Counterexamples are verified against the reference evaluator before
/// being returned.
///
/// # Examples
///
/// ```
/// use sufsat_core::{decide, DecideOptions};
/// use sufsat_suf::TermManager;
///
/// let mut tm = TermManager::new();
/// let f = tm.declare_fun("f", 1);
/// let x = tm.int_var("x");
/// let y = tm.int_var("y");
/// let fx = tm.mk_app(f, vec![x]);
/// let fy = tm.mk_app(f, vec![y]);
/// let hyp = tm.mk_eq(x, y);
/// let conc = tm.mk_eq(fx, fy);
/// let phi = tm.mk_implies(hyp, conc);
/// let decision = decide(&mut tm, phi, &DecideOptions::default());
/// assert!(decision.outcome.is_valid());
/// ```
///
/// # Panics
///
/// Panics if a counterexample fails verification (an internal soundness
/// bug, exercised heavily by the test suite).
pub fn decide(tm: &mut TermManager, phi: TermId, options: &DecideOptions) -> Decision {
    let translate_start = Instant::now();
    let dag_size = tm.dag_size(phi);

    // Step 1: eliminate applications (positive-equality aware).
    let elim = eliminate(tm, phi);

    // Step 2: structural analyses.
    let analysis = SepAnalysis::new(tm, elim.formula, &elim.p_vars);

    let mut stats = DecideStats {
        dag_size,
        sep_predicates: analysis.total_sep_predicates(),
        classes: analysis.classes.len(),
        max_class_range: analysis.classes.iter().map(|c| c.range).max().unwrap_or(0),
        total_class_range: analysis.classes.iter().map(|c| c.range).sum(),
        p_fun_fraction: elim.polarity.p_fun_app_fraction(tm, phi),
        fresh_constants: elim.num_fresh_int + elim.num_fresh_bool,
        ..DecideStats::default()
    };

    // Stage boundary: a lane cancelled during elimination/analysis should
    // not start the (possibly expensive) encoding.
    if cancel_requested(options) {
        stats.translate_time = translate_start.elapsed();
        return Decision {
            outcome: Outcome::Unknown(StopReason::Cancelled),
            stats,
            certificate: None,
        };
    }

    // Step 3: encode.
    let encode_options = EncodeOptions {
        mode: options.mode,
        cnf: options.cnf,
        trans_budget: options.trans_budget,
        deadline: options.timeout.map(|t| translate_start + t),
        cancel: options.cancel.clone(),
    };
    let encoded = match encode(tm, elim.formula, &analysis, &encode_options) {
        Ok(encoded) => encoded,
        Err(err) => {
            stats.translate_time = translate_start.elapsed();
            let reason = if err.cancelled {
                StopReason::Cancelled
            } else if err.timed_out {
                StopReason::Timeout
            } else {
                StopReason::TranslationBudget
            };
            return Decision {
                outcome: Outcome::Unknown(reason),
                stats,
                certificate: None,
            };
        }
    };
    stats.sd_classes = encoded.stats.sd_classes;
    stats.eij_classes = encoded.stats.eij_classes;
    stats.pred_vars = encoded.stats.pred_vars;
    stats.trans_clauses = encoded.stats.trans_clauses;

    // Step 4: check ¬F_bool = F_trans ∧ ¬F_bvar.
    let mut solver = Solver::new();
    if options.certify {
        solver.enable_proof();
    }
    let map = load_into_solver(
        &encoded.circuit,
        &[!encoded.formula],
        &encoded.trans_clauses,
        options.cnf,
        &mut solver,
    );
    stats.cnf_clauses = solver.stats().original_clauses;
    stats.translate_time = translate_start.elapsed();

    solver.set_conflict_budget(options.conflict_budget);
    solver.set_timeout(options.timeout);
    solver.set_cancel_token(options.cancel.clone());
    let result = solver.solve();
    stats.sat_time = solver.stats().solve_time;
    stats.conflict_clauses = solver.stats().conflicts;
    stats.decisions = solver.stats().decisions;
    stats.propagations = solver.stats().propagations;

    let mut certificate = None;
    let outcome = match result {
        SolveResult::Unsat => {
            if options.certify {
                certificate = Some(Certificate::Refutation {
                    steps: solver.proof().map_or(0, |p| p.steps().len()),
                    checked: solver.check_proof().unwrap_or(false),
                });
            }
            Outcome::Valid
        }
        SolveResult::Sat => match try_decode_model(&encoded, &map, &solver) {
            Ok(cex) => {
                let falsifies_separation = !cex.evaluate(tm, elim.formula);
                if options.certify {
                    certificate = Some(Certificate::Counterexample {
                        decoded: true,
                        falsifies_separation,
                        falsifies_original: counterexample_falsifies_original(
                            tm, phi, &elim, &cex,
                        ),
                    });
                } else {
                    assert!(
                        falsifies_separation,
                        "internal soundness bug: decoded counterexample does not \
                         falsify the separation formula: {cex:?}"
                    );
                    // Debug builds (and SUFSAT_CERTIFY=1 release runs)
                    // additionally replay the model against the original
                    // pre-elimination formula.
                    if cfg!(debug_assertions) || certify_env() {
                        assert!(
                            counterexample_falsifies_original(tm, phi, &elim, &cex),
                            "internal soundness bug: decoded counterexample does not \
                             falsify the original formula: {cex:?}"
                        );
                    }
                }
                Outcome::Invalid(cex)
            }
            Err(err) => {
                if options.certify {
                    certificate = Some(Certificate::Counterexample {
                        decoded: false,
                        falsifies_separation: false,
                        falsifies_original: false,
                    });
                    Outcome::Invalid(SepAssignment::default())
                } else {
                    panic!("{err}");
                }
            }
        },
        SolveResult::Unknown(Interrupt::ConflictBudget) => {
            Outcome::Unknown(StopReason::ConflictBudget)
        }
        SolveResult::Unknown(Interrupt::Timeout) => Outcome::Unknown(StopReason::Timeout),
        SolveResult::Unknown(Interrupt::Cancelled) => Outcome::Unknown(StopReason::Cancelled),
    };
    Decision {
        outcome,
        stats,
        certificate,
    }
}

fn cancel_requested(options: &DecideOptions) -> bool {
    options.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modes() -> Vec<EncodingMode> {
        vec![
            EncodingMode::Sd,
            EncodingMode::Eij,
            EncodingMode::Hybrid(0),
            EncodingMode::Hybrid(2),
            EncodingMode::Hybrid(DEFAULT_SEP_THOLD),
            EncodingMode::FixedHybrid,
        ]
    }

    #[test]
    fn functional_consistency_is_valid() {
        for mode in modes() {
            let mut tm = TermManager::new();
            let f = tm.declare_fun("f", 2);
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let z = tm.int_var("z");
            let fxy = tm.mk_app(f, vec![x, y]);
            let fxz = tm.mk_app(f, vec![x, z]);
            let hyp = tm.mk_eq(y, z);
            let conc = tm.mk_eq(fxy, fxz);
            let phi = tm.mk_implies(hyp, conc);
            let d = decide(&mut tm, phi, &DecideOptions::with_mode(mode));
            assert!(d.outcome.is_valid(), "{mode:?}");
            assert!(d.stats.fresh_constants >= 2);
        }
    }

    #[test]
    fn functional_consistency_converse_is_invalid() {
        for mode in modes() {
            let mut tm = TermManager::new();
            let f = tm.declare_fun("f", 1);
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let fx = tm.mk_app(f, vec![x]);
            let fy = tm.mk_app(f, vec![y]);
            let hyp = tm.mk_eq(fx, fy);
            let conc = tm.mk_eq(x, y);
            let phi = tm.mk_implies(hyp, conc);
            let d = decide(&mut tm, phi, &DecideOptions::with_mode(mode));
            assert!(matches!(d.outcome, Outcome::Invalid(_)), "{mode:?}");
        }
    }

    #[test]
    fn ordering_with_functions_and_arithmetic() {
        // (x < y ∧ f(y) <= z) => ... mixing g-functions and offsets;
        // validity: (x < y && y < z) => x+1 < z+1.
        for mode in modes() {
            let mut tm = TermManager::new();
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let z = tm.int_var("z");
            let xy = tm.mk_lt(x, y);
            let yz = tm.mk_lt(y, z);
            let hyp = tm.mk_and(xy, yz);
            let sx = tm.mk_succ(x);
            let sz = tm.mk_succ(z);
            let conc = tm.mk_lt(sx, sz);
            let phi = tm.mk_implies(hyp, conc);
            let d = decide(&mut tm, phi, &DecideOptions::with_mode(mode));
            assert!(d.outcome.is_valid(), "{mode:?}");
        }
    }

    #[test]
    fn predicate_consistency() {
        for mode in modes() {
            let mut tm = TermManager::new();
            let p = tm.declare_pred("p", 1);
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let px = tm.mk_papp(p, vec![x]);
            let py = tm.mk_papp(p, vec![y]);
            let hyp = tm.mk_eq(x, y);
            let conc = tm.mk_iff(px, py);
            let phi = tm.mk_implies(hyp, conc);
            let d = decide(&mut tm, phi, &DecideOptions::with_mode(mode));
            assert!(d.outcome.is_valid(), "{mode:?}");
        }
    }

    #[test]
    fn certified_valid_carries_checked_refutation() {
        for mode in modes() {
            let mut tm = TermManager::new();
            let f = tm.declare_fun("f", 1);
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let fx = tm.mk_app(f, vec![x]);
            let fy = tm.mk_app(f, vec![y]);
            let hyp = tm.mk_eq(x, y);
            let conc = tm.mk_eq(fx, fy);
            let phi = tm.mk_implies(hyp, conc);
            let mut options = DecideOptions::with_mode(mode);
            options.certify = true;
            let d = decide(&mut tm, phi, &options);
            assert!(d.outcome.is_valid(), "{mode:?}");
            let Some(cert @ Certificate::Refutation { .. }) = d.certificate else {
                panic!("{mode:?}: expected a refutation certificate, got {:?}", d.certificate);
            };
            assert!(cert.holds(), "{mode:?}");
        }
    }

    #[test]
    fn certified_invalid_carries_replayed_counterexample() {
        for mode in modes() {
            let mut tm = TermManager::new();
            let f = tm.declare_fun("f", 1);
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let fx = tm.mk_app(f, vec![x]);
            let fy = tm.mk_app(f, vec![y]);
            let hyp = tm.mk_eq(fx, fy);
            let conc = tm.mk_eq(x, y);
            let phi = tm.mk_implies(hyp, conc);
            let mut options = DecideOptions::with_mode(mode);
            options.certify = true;
            let d = decide(&mut tm, phi, &options);
            assert!(matches!(d.outcome, Outcome::Invalid(_)), "{mode:?}");
            let Some(cert @ Certificate::Counterexample { .. }) = d.certificate else {
                panic!("{mode:?}: expected a counterexample certificate, got {:?}", d.certificate);
            };
            assert!(cert.holds(), "{mode:?}");
        }
    }

    #[test]
    fn unknown_on_tiny_conflict_budget() {
        // A formula hard enough to need more than one conflict.
        let mut tm = TermManager::new();
        let vars: Vec<_> = (0..8).map(|i| tm.int_var(&format!("v{i}"))).collect();
        let mut atoms = Vec::new();
        for i in 0..vars.len() {
            for j in i + 1..vars.len() {
                atoms.push(tm.mk_lt(vars[i], vars[j]));
            }
        }
        let phi = tm.mk_or_many(&atoms);
        let mut options = DecideOptions::with_mode(EncodingMode::Sd);
        options.conflict_budget = Some(1);
        let d = decide(&mut tm, phi, &options);
        // Either it answers immediately (no conflicts needed) or reports
        // the budget; both must carry stats.
        match d.outcome {
            Outcome::Unknown(StopReason::ConflictBudget) => {}
            Outcome::Invalid(_) | Outcome::Valid => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(d.stats.cnf_clauses > 0);
    }

    #[test]
    fn translation_budget_reports_unknown() {
        // Dense inequality structure with many distinct constants makes
        // EIJ transitivity explode past a tiny budget.
        let mut tm = TermManager::new();
        let vars: Vec<_> = (0..8).map(|i| tm.int_var(&format!("v{i}"))).collect();
        let mut atoms = Vec::new();
        for i in 0..vars.len() {
            for j in 0..vars.len() {
                if i != j {
                    let off = tm.mk_offset(vars[j], (i as i64 % 3) - 1);
                    atoms.push(tm.mk_lt(vars[i], off));
                }
            }
        }
        let phi = tm.mk_or_many(&atoms);
        let mut options = DecideOptions::with_mode(EncodingMode::Eij);
        options.trans_budget = 5;
        let d = decide(&mut tm, phi, &options);
        assert_eq!(d.outcome, Outcome::Unknown(StopReason::TranslationBudget));
    }

    #[test]
    fn stats_report_figure2_columns() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let c1 = tm.mk_lt(x, y);
        let c2 = tm.mk_lt(y, z);
        let c3 = tm.mk_lt(z, x);
        let conj = tm.mk_and_many(&[c1, c2, c3]);
        let phi = tm.mk_not(conj);
        let d = decide(&mut tm, phi, &DecideOptions::with_mode(EncodingMode::Eij));
        assert!(d.outcome.is_valid());
        assert!(d.stats.cnf_clauses > 0);
        assert_eq!(d.stats.sep_predicates, 3);
        assert_eq!(d.stats.classes, 1);
        assert_eq!(d.stats.eij_classes, 1);
        assert!(d.stats.pred_vars >= 3);
        assert!(d.stats.normalized_time() >= 0.0);
    }

    #[test]
    fn hybrid_threshold_switches_methods() {
        // A class with 3 predicates: threshold 2 forces SD, threshold 3
        // keeps EIJ.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let c1 = tm.mk_lt(x, y);
        let c2 = tm.mk_lt(y, z);
        let c3 = tm.mk_lt(x, z);
        let conj = tm.mk_and_many(&[c1, c2, c3]);
        let phi = tm.mk_not(conj);

        let d_sd = decide(
            &mut tm,
            phi,
            &DecideOptions::with_mode(EncodingMode::Hybrid(2)),
        );
        assert_eq!(d_sd.stats.sd_classes, 1);
        assert_eq!(d_sd.stats.eij_classes, 0);

        let d_eij = decide(
            &mut tm,
            phi,
            &DecideOptions::with_mode(EncodingMode::Hybrid(3)),
        );
        assert_eq!(d_eij.stats.sd_classes, 0);
        assert_eq!(d_eij.stats.eij_classes, 1);
        // Conjunction of x<y, y<z, x<z is satisfiable, so ¬(...) invalid.
        assert!(matches!(d_sd.outcome, Outcome::Invalid(_)));
        assert!(matches!(d_eij.outcome, Outcome::Invalid(_)));
    }
}
