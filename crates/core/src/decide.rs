//! The end-to-end decision procedure (paper §2.1 pipeline + §4 hybrid).
//!
//! Validity of an SUF formula `F_suf` is decided by:
//!
//! 1. eliminating uninterpreted function/predicate applications with the
//!    positive-equality-aware nested-ITE method (`sufsat-suf`), yielding
//!    the separation formula `F_sep`;
//! 2. computing equivalence classes, small-model domain sizes and per-class
//!    `SepCnt` (`sufsat-seplog`);
//! 3. encoding each class with SD or EIJ according to the selected
//!    [`EncodingMode`] (`sufsat-encode`), producing `F_bool = F_trans ⇒
//!    F_bvar`;
//! 4. checking `¬F_bool` with the CDCL SAT solver (`sufsat-sat`): UNSAT
//!    means `F_suf` is valid; a model decodes into a counterexample.

use std::time::{Duration, Instant};

use sufsat_encode::{
    encode, load_into_solver, try_decode_model, CnfMode, EncodeOptions, EncodingMode,
};
use sufsat_sat::{CancelToken, Interrupt, ProgressHandle, SolveResult, Solver};
use sufsat_seplog::{SepAnalysis, SepAssignment};
use sufsat_suf::{eliminate, TermId, TermManager};

use crate::certify::{certify_env, counterexample_falsifies_original, Certificate};

/// Options controlling [`decide`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecideOptions {
    /// Per-class encoding selection (the paper's SD / EIJ / HYBRID /
    /// fixed-hybrid modes).
    pub mode: EncodingMode,
    /// CNF conversion style.
    pub cnf: CnfMode,
    /// Budget on generated transitivity constraints; exceeding it stops the
    /// run in the translation stage, like the paper's EIJ timeouts.
    pub trans_budget: usize,
    /// Optional conflict budget for the SAT search.
    pub conflict_budget: Option<u64>,
    /// Optional wall-clock timeout for the SAT search.
    pub timeout: Option<Duration>,
    /// Optional cooperative cancellation token, polled in the translation
    /// and SAT stages. Raising it from another thread stops the run with
    /// [`Outcome::Unknown`]`(`[`StopReason::Cancelled`]`)` — this is how
    /// the portfolio engine retires losing lanes.
    pub cancel: Option<CancelToken>,
    /// Optional live progress heartbeat: a clone of the handle is
    /// installed into the SAT solver ([`Solver::set_progress_handle`]),
    /// so another thread can watch conflicts, trail depth and learnt-DB
    /// growth while the search stage runs. Earlier pipeline stages do not
    /// publish (they are bounded by `trans_budget` instead).
    pub progress: Option<ProgressHandle>,
    /// Certify the answer: SAT models are replayed through the reference
    /// evaluator against both the separation formula and the original
    /// formula, and UNSAT answers log a DRAT proof that is replayed
    /// through the built-in RUP checker. The evidence is reported in
    /// [`Decision::certificate`]; certification failures are *reported*
    /// rather than panicked on, so a fuzzing oracle can shrink them.
    pub certify: bool,
    /// Run SatELite-style CNF preprocessing (subsumption, self-subsuming
    /// resolution, bounded variable elimination) on the loaded clause set
    /// before search. Sound in combination with `certify`: under proof
    /// logging the solver automatically restricts itself to the
    /// RUP-replayable subset, and `Sat` models are extended over
    /// eliminated variables before decoding.
    pub preprocess: bool,
    /// Optional result cache. When set, [`decide`] canonicalizes the
    /// formula, consults the cache before running the pipeline and
    /// stores definitive verdicts afterwards. Non-definitive outcomes
    /// are never cached, and certifying runs (`certify`) bypass the
    /// cache so every certificate attests to a real solve.
    pub cache: Option<crate::CacheHandle>,
}

impl Default for DecideOptions {
    fn default() -> DecideOptions {
        DecideOptions {
            mode: EncodingMode::Hybrid(DEFAULT_SEP_THOLD),
            cnf: CnfMode::default(),
            trans_budget: 2_000_000,
            conflict_budget: None,
            timeout: None,
            cancel: None,
            progress: None,
            certify: false,
            preprocess: false,
            cache: None,
        }
    }
}

impl DecideOptions {
    /// Options for one of the paper's encoding modes with other settings at
    /// their defaults.
    pub fn with_mode(mode: EncodingMode) -> DecideOptions {
        DecideOptions {
            mode,
            ..DecideOptions::default()
        }
    }
}

/// The paper's default `SEP_THOLD`, derived in §4.1 by clustering
/// normalized EIJ runtimes on a 16-benchmark training sample.
pub const DEFAULT_SEP_THOLD: usize = 700;

/// The answer of the decision procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The formula is valid (true under every interpretation).
    Valid,
    /// The formula is falsifiable; the assignment falsifies the separation
    /// formula obtained after function elimination (fresh `vf!…`/`vp!…`
    /// constants name the eliminated application instances).
    Invalid(SepAssignment),
    /// A resource budget stopped the run first.
    Unknown(StopReason),
}

impl Outcome {
    /// Whether the outcome is [`Outcome::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, Outcome::Valid)
    }
}

/// Why a run stopped without an answer.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// Transitivity-constraint generation exceeded its budget (the paper's
    /// EIJ translation-stage blow-up).
    TranslationBudget,
    /// The SAT conflict budget ran out.
    ConflictBudget,
    /// The SAT wall-clock timeout elapsed.
    Timeout,
    /// A [`CancelToken`] was raised from another thread (e.g. a portfolio
    /// lane losing the race).
    Cancelled,
}

/// Measurements of one run — the quantities the paper's evaluation reports
/// (Figure 2 columns, Figure 3 features, Figures 4–6 total times).
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct DecideStats {
    /// DAG node count of the input formula (the paper's size measure).
    pub dag_size: usize,
    /// Time spent translating to CNF (elimination + analysis + encoding).
    pub translate_time: Duration,
    /// Time spent in the SAT solver.
    pub sat_time: Duration,
    /// CNF clauses given to the solver (Figure 2, "# of CNF Clauses").
    pub cnf_clauses: u64,
    /// Conflict clauses the solver derived (Figure 2, "# of Conflict
    /// Clauses").
    pub conflict_clauses: u64,
    /// SAT decisions.
    pub decisions: u64,
    /// SAT propagations.
    pub propagations: u64,
    /// Total separation predicates across classes (Figure 3's feature).
    pub sep_predicates: usize,
    /// Number of `V_g` equivalence classes.
    pub classes: usize,
    /// Classes encoded with SD.
    pub sd_classes: usize,
    /// Classes encoded with EIJ.
    pub eij_classes: usize,
    /// Canonical predicate variables allocated by EIJ.
    pub pred_vars: usize,
    /// Transitivity clauses generated.
    pub trans_clauses: usize,
    /// Largest small-model range over classes (a §3 candidate feature).
    pub max_class_range: u64,
    /// Sum of small-model ranges (another §3 candidate feature).
    pub total_class_range: u64,
    /// Fraction of function applications classified as p-functions
    /// (another §3 candidate feature).
    pub p_fun_fraction: f64,
    /// Fresh constants introduced by function elimination.
    pub fresh_constants: usize,
}

impl DecideStats {
    /// Total wall time (translation + SAT).
    pub fn total_time(&self) -> Duration {
        self.translate_time + self.sat_time
    }

    /// Hand-rolled JSON serialization with a stable key set and order,
    /// consistent with the field names the `sufsat-obs` sink emits
    /// (durations as integral microseconds under `_us` keys).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"dag_size\":{},\"translate_us\":{},\"sat_us\":{},\"cnf_clauses\":{},\
             \"conflict_clauses\":{},\"decisions\":{},\"propagations\":{},\
             \"sep_predicates\":{},\"classes\":{},\"sd_classes\":{},\"eij_classes\":{},\
             \"pred_vars\":{},\"trans_clauses\":{},\"max_class_range\":{},\
             \"total_class_range\":{},\"p_fun_fraction\":{},\"fresh_constants\":{}}}",
            self.dag_size,
            self.translate_time.as_micros(),
            self.sat_time.as_micros(),
            self.cnf_clauses,
            self.conflict_clauses,
            self.decisions,
            self.propagations,
            self.sep_predicates,
            self.classes,
            self.sd_classes,
            self.eij_classes,
            self.pred_vars,
            self.trans_clauses,
            self.max_class_range,
            self.total_class_range,
            if self.p_fun_fraction.is_finite() {
                self.p_fun_fraction.to_string()
            } else {
                "null".to_owned()
            },
            self.fresh_constants,
        )
    }

    /// Folds another run's measurements into this one: additive counters
    /// and times are summed, structural quantities (DAG size, ranges,
    /// class counts, p-fraction) are kept at their maximum. Used to
    /// aggregate the total cost of a portfolio race across winner and
    /// cancelled loser lanes.
    pub fn absorb(&mut self, other: &DecideStats) {
        self.translate_time += other.translate_time;
        self.sat_time += other.sat_time;
        self.cnf_clauses += other.cnf_clauses;
        self.conflict_clauses += other.conflict_clauses;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.sd_classes += other.sd_classes;
        self.eij_classes += other.eij_classes;
        self.pred_vars += other.pred_vars;
        self.trans_clauses += other.trans_clauses;
        self.fresh_constants = self.fresh_constants.max(other.fresh_constants);
        self.dag_size = self.dag_size.max(other.dag_size);
        self.sep_predicates = self.sep_predicates.max(other.sep_predicates);
        self.classes = self.classes.max(other.classes);
        self.max_class_range = self.max_class_range.max(other.max_class_range);
        self.total_class_range = self.total_class_range.max(other.total_class_range);
        self.p_fun_fraction = self.p_fun_fraction.max(other.p_fun_fraction);
    }

    /// Total time normalized by formula size, in seconds per thousand DAG
    /// nodes — the y-axis of the paper's Figure 3.
    pub fn normalized_time(&self) -> f64 {
        self.total_time().as_secs_f64() / (self.dag_size.max(1) as f64 / 1000.0)
    }
}

/// Outcome plus measurements of one [`decide`] run.
#[derive(Debug, Clone)]
pub struct Decision {
    /// The verdict.
    pub outcome: Outcome,
    /// The measurements.
    pub stats: DecideStats,
    /// Machine-checked evidence for the verdict, present when
    /// [`DecideOptions::certify`] was set and the run produced a
    /// definitive answer.
    pub certificate: Option<Certificate>,
}

/// Decides validity of the SUF formula `phi`.
///
/// Counterexamples are verified against the reference evaluator before
/// being returned.
///
/// # Examples
///
/// ```
/// use sufsat_core::{decide, DecideOptions};
/// use sufsat_suf::TermManager;
///
/// let mut tm = TermManager::new();
/// let f = tm.declare_fun("f", 1);
/// let x = tm.int_var("x");
/// let y = tm.int_var("y");
/// let fx = tm.mk_app(f, vec![x]);
/// let fy = tm.mk_app(f, vec![y]);
/// let hyp = tm.mk_eq(x, y);
/// let conc = tm.mk_eq(fx, fy);
/// let phi = tm.mk_implies(hyp, conc);
/// let decision = decide(&mut tm, phi, &DecideOptions::default());
/// assert!(decision.outcome.is_valid());
/// ```
///
/// # Panics
///
/// Panics if a counterexample fails verification (an internal soundness
/// bug, exercised heavily by the test suite).
/// Short wire label for an encoding mode (`hybrid` thresholds travel in a
/// separate field).
pub(crate) fn mode_label(mode: EncodingMode) -> &'static str {
    match mode {
        EncodingMode::Sd => "sd",
        EncodingMode::Eij => "eij",
        EncodingMode::Hybrid(_) => "hybrid",
        EncodingMode::FixedHybrid => "fixed-hybrid",
    }
}

/// Short wire label for an outcome.
pub(crate) fn outcome_label(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Valid => "valid",
        Outcome::Invalid(_) => "invalid",
        Outcome::Unknown(StopReason::TranslationBudget) => "unknown:translation_budget",
        Outcome::Unknown(StopReason::ConflictBudget) => "unknown:conflict_budget",
        Outcome::Unknown(StopReason::Timeout) => "unknown:timeout",
        Outcome::Unknown(StopReason::Cancelled) => "unknown:cancelled",
    }
}

fn trace_decision(outcome: &Outcome, stats: &DecideStats) {
    if !sufsat_obs::enabled() {
        return;
    }
    static DECIDES: sufsat_obs::Counter = sufsat_obs::Counter::new("core.decides");
    DECIDES.incr();
    sufsat_obs::event!(
        "core.decide.result",
        outcome = outcome_label(outcome),
        dag_size = stats.dag_size,
        translate_us = stats.translate_time.as_micros() as u64,
        sat_us = stats.sat_time.as_micros() as u64,
        cnf_clauses = stats.cnf_clauses,
        conflict_clauses = stats.conflict_clauses,
        decisions = stats.decisions,
        propagations = stats.propagations,
        sep_predicates = stats.sep_predicates,
        classes = stats.classes,
        sd_classes = stats.sd_classes,
        eij_classes = stats.eij_classes,
        pred_vars = stats.pred_vars,
        trans_clauses = stats.trans_clauses,
        fresh_constants = stats.fresh_constants,
    );
}

/// Decides validity of the SUF formula `phi`.
///
/// Counterexamples are verified against the reference evaluator before
/// being returned.
///
/// # Examples
///
/// ```
/// use sufsat_core::{decide, DecideOptions};
/// use sufsat_suf::TermManager;
///
/// let mut tm = TermManager::new();
/// let f = tm.declare_fun("f", 1);
/// let x = tm.int_var("x");
/// let y = tm.int_var("y");
/// let fx = tm.mk_app(f, vec![x]);
/// let fy = tm.mk_app(f, vec![y]);
/// let hyp = tm.mk_eq(x, y);
/// let conc = tm.mk_eq(fx, fy);
/// let phi = tm.mk_implies(hyp, conc);
/// let decision = decide(&mut tm, phi, &DecideOptions::default());
/// assert!(decision.outcome.is_valid());
/// ```
///
/// # Panics
///
/// Panics if a counterexample fails verification (an internal soundness
/// bug, exercised heavily by the test suite).
pub fn decide(tm: &mut TermManager, phi: TermId, options: &DecideOptions) -> Decision {
    let translate_start = Instant::now();
    let dag_size = tm.dag_size(phi);
    let obs_span = sufsat_obs::span_with!(
        "core.decide",
        mode = mode_label(options.mode),
        threshold = match options.mode {
            EncodingMode::Hybrid(t) => t as i64,
            _ => -1,
        },
        dag = dag_size,
        certify = options.certify,
    );
    let decision = decide_with_cache(tm, phi, options, translate_start, dag_size);
    if obs_span.is_recording() {
        trace_decision(&decision.outcome, &decision.stats);
    }
    decision
}

/// Consults the result cache (when one is attached and the run is not
/// certifying) around [`decide_inner`].
fn decide_with_cache(
    tm: &mut TermManager,
    phi: TermId,
    options: &DecideOptions,
    translate_start: Instant,
    dag_size: usize,
) -> Decision {
    let handle = match &options.cache {
        Some(handle) if !options.certify => handle,
        _ => return decide_inner(tm, phi, options, translate_start, dag_size),
    };
    let canonical = sufsat_cache::canonicalize(tm, phi);
    if let Some(value) = handle.cache().lookup(canonical.fingerprint, &canonical.bytes) {
        return crate::cache::decision_from_value(&canonical, &value);
    }
    let decision = decide_inner(tm, phi, options, translate_start, dag_size);
    if let Some(value) = crate::cache::value_from_decision(&canonical, &decision) {
        handle
            .cache()
            .insert(canonical.fingerprint, &canonical.bytes, value);
    }
    decision
}

fn decide_inner(
    tm: &mut TermManager,
    phi: TermId,
    options: &DecideOptions,
    translate_start: Instant,
    dag_size: usize,
) -> Decision {

    // Step 1: eliminate applications (positive-equality aware).
    let elim = eliminate(tm, phi);

    // Step 2: structural analyses.
    let analysis = SepAnalysis::new(tm, elim.formula, &elim.p_vars);

    let mut stats = DecideStats {
        dag_size,
        sep_predicates: analysis.total_sep_predicates(),
        classes: analysis.classes.len(),
        max_class_range: analysis.classes.iter().map(|c| c.range).max().unwrap_or(0),
        total_class_range: analysis.classes.iter().map(|c| c.range).sum(),
        p_fun_fraction: elim.polarity.p_fun_app_fraction(tm, phi),
        fresh_constants: elim.num_fresh_int + elim.num_fresh_bool,
        ..DecideStats::default()
    };

    // Stage boundary: a lane cancelled during elimination/analysis should
    // not start the (possibly expensive) encoding.
    if cancel_requested(options) {
        stats.translate_time = translate_start.elapsed();
        return Decision {
            outcome: Outcome::Unknown(StopReason::Cancelled),
            stats,
            certificate: None,
        };
    }

    // Step 3: encode.
    let encode_options = EncodeOptions {
        mode: options.mode,
        cnf: options.cnf,
        trans_budget: options.trans_budget,
        deadline: options.timeout.map(|t| translate_start + t),
        cancel: options.cancel.clone(),
    };
    let encoded = match encode(tm, elim.formula, &analysis, &encode_options) {
        Ok(encoded) => encoded,
        Err(err) => {
            stats.translate_time = translate_start.elapsed();
            let reason = if err.cancelled {
                StopReason::Cancelled
            } else if err.timed_out {
                StopReason::Timeout
            } else {
                StopReason::TranslationBudget
            };
            return Decision {
                outcome: Outcome::Unknown(reason),
                stats,
                certificate: None,
            };
        }
    };
    stats.sd_classes = encoded.stats.sd_classes;
    stats.eij_classes = encoded.stats.eij_classes;
    stats.pred_vars = encoded.stats.pred_vars;
    stats.trans_clauses = encoded.stats.trans_clauses;

    // Step 4: check ¬F_bool = F_trans ∧ ¬F_bvar.
    let mut solver = Solver::new();
    if options.certify {
        solver.enable_proof();
    }
    let load_span = sufsat_obs::span_with!("core.load_cnf", gates = encoded.stats.gates);
    let map = load_into_solver(
        &encoded.circuit,
        &[!encoded.formula],
        &encoded.trans_clauses,
        options.cnf,
        &mut solver,
    );
    drop(load_span);
    stats.cnf_clauses = solver.stats().original_clauses;

    if options.preprocess {
        // Preprocess before search; under `certify` the solver restricts
        // itself to proof-compatible simplifications. An inconsistency
        // found here is a final Unsat answer, which `solve` then reports.
        solver.set_cancel_token(options.cancel.clone());
        let _ = solver.preprocess();
    }
    stats.translate_time = translate_start.elapsed();

    solver.set_conflict_budget(options.conflict_budget);
    solver.set_timeout(options.timeout);
    solver.set_cancel_token(options.cancel.clone());
    solver.set_progress_handle(options.progress.clone());
    let result = solver.solve();
    stats.sat_time = solver.stats().solve_time;
    stats.conflict_clauses = solver.stats().conflicts;
    stats.decisions = solver.stats().decisions;
    stats.propagations = solver.stats().propagations;

    let mut certificate = None;
    let outcome = match result {
        SolveResult::Unsat => {
            if options.certify {
                certificate = Some(Certificate::Refutation {
                    steps: solver.proof().map_or(0, |p| p.steps().len()),
                    checked: solver.check_proof().unwrap_or(false),
                });
            }
            Outcome::Valid
        }
        SolveResult::Sat => match try_decode_model(&encoded, &map, &solver) {
            Ok(cex) => {
                let falsifies_separation = !cex.evaluate(tm, elim.formula);
                if options.certify {
                    certificate = Some(Certificate::Counterexample {
                        decoded: true,
                        falsifies_separation,
                        falsifies_original: counterexample_falsifies_original(
                            tm, phi, &elim, &cex,
                        ),
                    });
                } else {
                    assert!(
                        falsifies_separation,
                        "internal soundness bug: decoded counterexample does not \
                         falsify the separation formula: {cex:?}"
                    );
                    // Debug builds (and SUFSAT_CERTIFY=1 release runs)
                    // additionally replay the model against the original
                    // pre-elimination formula.
                    if cfg!(debug_assertions) || certify_env() {
                        assert!(
                            counterexample_falsifies_original(tm, phi, &elim, &cex),
                            "internal soundness bug: decoded counterexample does not \
                             falsify the original formula: {cex:?}"
                        );
                    }
                }
                Outcome::Invalid(cex)
            }
            Err(err) => {
                if options.certify {
                    certificate = Some(Certificate::Counterexample {
                        decoded: false,
                        falsifies_separation: false,
                        falsifies_original: false,
                    });
                    Outcome::Invalid(SepAssignment::default())
                } else {
                    panic!("{err}");
                }
            }
        },
        SolveResult::Unknown(Interrupt::ConflictBudget) => {
            Outcome::Unknown(StopReason::ConflictBudget)
        }
        SolveResult::Unknown(Interrupt::Timeout) => Outcome::Unknown(StopReason::Timeout),
        SolveResult::Unknown(Interrupt::Cancelled) => Outcome::Unknown(StopReason::Cancelled),
    };
    Decision {
        outcome,
        stats,
        certificate,
    }
}

fn cancel_requested(options: &DecideOptions) -> bool {
    options.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modes() -> Vec<EncodingMode> {
        vec![
            EncodingMode::Sd,
            EncodingMode::Eij,
            EncodingMode::Hybrid(0),
            EncodingMode::Hybrid(2),
            EncodingMode::Hybrid(DEFAULT_SEP_THOLD),
            EncodingMode::FixedHybrid,
        ]
    }

    #[test]
    fn functional_consistency_is_valid() {
        for mode in modes() {
            let mut tm = TermManager::new();
            let f = tm.declare_fun("f", 2);
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let z = tm.int_var("z");
            let fxy = tm.mk_app(f, vec![x, y]);
            let fxz = tm.mk_app(f, vec![x, z]);
            let hyp = tm.mk_eq(y, z);
            let conc = tm.mk_eq(fxy, fxz);
            let phi = tm.mk_implies(hyp, conc);
            let d = decide(&mut tm, phi, &DecideOptions::with_mode(mode));
            assert!(d.outcome.is_valid(), "{mode:?}");
            assert!(d.stats.fresh_constants >= 2);
        }
    }

    #[test]
    fn functional_consistency_converse_is_invalid() {
        for mode in modes() {
            let mut tm = TermManager::new();
            let f = tm.declare_fun("f", 1);
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let fx = tm.mk_app(f, vec![x]);
            let fy = tm.mk_app(f, vec![y]);
            let hyp = tm.mk_eq(fx, fy);
            let conc = tm.mk_eq(x, y);
            let phi = tm.mk_implies(hyp, conc);
            let d = decide(&mut tm, phi, &DecideOptions::with_mode(mode));
            assert!(matches!(d.outcome, Outcome::Invalid(_)), "{mode:?}");
        }
    }

    #[test]
    fn ordering_with_functions_and_arithmetic() {
        // (x < y ∧ f(y) <= z) => ... mixing g-functions and offsets;
        // validity: (x < y && y < z) => x+1 < z+1.
        for mode in modes() {
            let mut tm = TermManager::new();
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let z = tm.int_var("z");
            let xy = tm.mk_lt(x, y);
            let yz = tm.mk_lt(y, z);
            let hyp = tm.mk_and(xy, yz);
            let sx = tm.mk_succ(x);
            let sz = tm.mk_succ(z);
            let conc = tm.mk_lt(sx, sz);
            let phi = tm.mk_implies(hyp, conc);
            let d = decide(&mut tm, phi, &DecideOptions::with_mode(mode));
            assert!(d.outcome.is_valid(), "{mode:?}");
        }
    }

    #[test]
    fn predicate_consistency() {
        for mode in modes() {
            let mut tm = TermManager::new();
            let p = tm.declare_pred("p", 1);
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let px = tm.mk_papp(p, vec![x]);
            let py = tm.mk_papp(p, vec![y]);
            let hyp = tm.mk_eq(x, y);
            let conc = tm.mk_iff(px, py);
            let phi = tm.mk_implies(hyp, conc);
            let d = decide(&mut tm, phi, &DecideOptions::with_mode(mode));
            assert!(d.outcome.is_valid(), "{mode:?}");
        }
    }

    #[test]
    fn certified_valid_carries_checked_refutation() {
        for mode in modes() {
            let mut tm = TermManager::new();
            let f = tm.declare_fun("f", 1);
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let fx = tm.mk_app(f, vec![x]);
            let fy = tm.mk_app(f, vec![y]);
            let hyp = tm.mk_eq(x, y);
            let conc = tm.mk_eq(fx, fy);
            let phi = tm.mk_implies(hyp, conc);
            let mut options = DecideOptions::with_mode(mode);
            options.certify = true;
            let d = decide(&mut tm, phi, &options);
            assert!(d.outcome.is_valid(), "{mode:?}");
            let Some(cert @ Certificate::Refutation { .. }) = d.certificate else {
                panic!("{mode:?}: expected a refutation certificate, got {:?}", d.certificate);
            };
            assert!(cert.holds(), "{mode:?}");
        }
    }

    #[test]
    fn certified_invalid_carries_replayed_counterexample() {
        for mode in modes() {
            let mut tm = TermManager::new();
            let f = tm.declare_fun("f", 1);
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let fx = tm.mk_app(f, vec![x]);
            let fy = tm.mk_app(f, vec![y]);
            let hyp = tm.mk_eq(fx, fy);
            let conc = tm.mk_eq(x, y);
            let phi = tm.mk_implies(hyp, conc);
            let mut options = DecideOptions::with_mode(mode);
            options.certify = true;
            let d = decide(&mut tm, phi, &options);
            assert!(matches!(d.outcome, Outcome::Invalid(_)), "{mode:?}");
            let Some(cert @ Certificate::Counterexample { .. }) = d.certificate else {
                panic!("{mode:?}: expected a counterexample certificate, got {:?}", d.certificate);
            };
            assert!(cert.holds(), "{mode:?}");
        }
    }

    #[test]
    fn unknown_on_tiny_conflict_budget() {
        // A formula hard enough to need more than one conflict.
        let mut tm = TermManager::new();
        let vars: Vec<_> = (0..8).map(|i| tm.int_var(&format!("v{i}"))).collect();
        let mut atoms = Vec::new();
        for i in 0..vars.len() {
            for j in i + 1..vars.len() {
                atoms.push(tm.mk_lt(vars[i], vars[j]));
            }
        }
        let phi = tm.mk_or_many(&atoms);
        let mut options = DecideOptions::with_mode(EncodingMode::Sd);
        options.conflict_budget = Some(1);
        let d = decide(&mut tm, phi, &options);
        // Either it answers immediately (no conflicts needed) or reports
        // the budget; both must carry stats.
        match d.outcome {
            Outcome::Unknown(StopReason::ConflictBudget) => {}
            Outcome::Invalid(_) | Outcome::Valid => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(d.stats.cnf_clauses > 0);
    }

    #[test]
    fn translation_budget_reports_unknown() {
        // Dense inequality structure with many distinct constants makes
        // EIJ transitivity explode past a tiny budget.
        let mut tm = TermManager::new();
        let vars: Vec<_> = (0..8).map(|i| tm.int_var(&format!("v{i}"))).collect();
        let mut atoms = Vec::new();
        for i in 0..vars.len() {
            for j in 0..vars.len() {
                if i != j {
                    let off = tm.mk_offset(vars[j], (i as i64 % 3) - 1);
                    atoms.push(tm.mk_lt(vars[i], off));
                }
            }
        }
        let phi = tm.mk_or_many(&atoms);
        let mut options = DecideOptions::with_mode(EncodingMode::Eij);
        options.trans_budget = 5;
        let d = decide(&mut tm, phi, &options);
        assert_eq!(d.outcome, Outcome::Unknown(StopReason::TranslationBudget));
    }

    #[test]
    fn stats_report_figure2_columns() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let c1 = tm.mk_lt(x, y);
        let c2 = tm.mk_lt(y, z);
        let c3 = tm.mk_lt(z, x);
        let conj = tm.mk_and_many(&[c1, c2, c3]);
        let phi = tm.mk_not(conj);
        let d = decide(&mut tm, phi, &DecideOptions::with_mode(EncodingMode::Eij));
        assert!(d.outcome.is_valid());
        assert!(d.stats.cnf_clauses > 0);
        assert_eq!(d.stats.sep_predicates, 3);
        assert_eq!(d.stats.classes, 1);
        assert_eq!(d.stats.eij_classes, 1);
        assert!(d.stats.pred_vars >= 3);
        assert!(d.stats.normalized_time() >= 0.0);
    }

    #[test]
    fn hybrid_threshold_switches_methods() {
        // A class with 3 predicates: threshold 2 forces SD, threshold 3
        // keeps EIJ.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let c1 = tm.mk_lt(x, y);
        let c2 = tm.mk_lt(y, z);
        let c3 = tm.mk_lt(x, z);
        let conj = tm.mk_and_many(&[c1, c2, c3]);
        let phi = tm.mk_not(conj);

        let d_sd = decide(
            &mut tm,
            phi,
            &DecideOptions::with_mode(EncodingMode::Hybrid(2)),
        );
        assert_eq!(d_sd.stats.sd_classes, 1);
        assert_eq!(d_sd.stats.eij_classes, 0);

        let d_eij = decide(
            &mut tm,
            phi,
            &DecideOptions::with_mode(EncodingMode::Hybrid(3)),
        );
        assert_eq!(d_eij.stats.sd_classes, 0);
        assert_eq!(d_eij.stats.eij_classes, 1);
        // Conjunction of x<y, y<z, x<z is satisfiable, so ¬(...) invalid.
        assert!(matches!(d_sd.outcome, Outcome::Invalid(_)));
        assert!(matches!(d_eij.outcome, Outcome::Invalid(_)));
    }

    #[test]
    fn stats_to_json_parses_and_round_trips_counters() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let sx = tm.mk_succ(x);
        let phi = tm.mk_lt(x, sx); // valid
        let d = decide(&mut tm, phi, &DecideOptions::default());
        let json = sufsat_obs::json::parse(&d.stats.to_json()).expect("to_json is valid JSON");
        assert_eq!(
            json.get("dag_size").and_then(|v| v.as_u64()),
            Some(d.stats.dag_size as u64)
        );
        assert_eq!(
            json.get("cnf_clauses").and_then(|v| v.as_u64()),
            Some(d.stats.cnf_clauses as u64)
        );
        assert_eq!(
            json.get("conflict_clauses").and_then(|v| v.as_u64()),
            Some(d.stats.conflict_clauses as u64)
        );
        assert_eq!(
            json.get("translate_us").and_then(|v| v.as_u64()),
            Some(d.stats.translate_time.as_micros() as u64)
        );
        // Every documented key is present.
        for key in [
            "dag_size",
            "translate_us",
            "sat_us",
            "cnf_clauses",
            "conflict_clauses",
            "decisions",
            "propagations",
            "sep_predicates",
            "classes",
            "sd_classes",
            "eij_classes",
            "pred_vars",
            "trans_clauses",
            "max_class_range",
            "total_class_range",
            "p_fun_fraction",
            "fresh_constants",
        ] {
            assert!(json.get(key).is_some(), "missing key {key}");
        }
    }

    #[test]
    fn stats_to_json_null_for_non_finite_fraction() {
        let mut stats = DecideStats::default();
        stats.p_fun_fraction = f64::NAN;
        let json = sufsat_obs::json::parse(&stats.to_json()).expect("valid JSON");
        assert!(matches!(
            json.get("p_fun_fraction"),
            Some(sufsat_obs::json::Json::Null)
        ));
    }

    #[test]
    fn absorb_sums_additive_and_maxes_structural() {
        let mut a = DecideStats::default();
        a.cnf_clauses = 10;
        a.conflict_clauses = 3;
        a.decisions = 7;
        a.dag_size = 40;
        a.classes = 2;
        a.max_class_range = 5;
        a.translate_time = Duration::from_micros(100);
        let mut b = DecideStats::default();
        b.cnf_clauses = 5;
        b.conflict_clauses = 4;
        b.decisions = 1;
        b.dag_size = 60;
        b.classes = 1;
        b.max_class_range = 9;
        b.translate_time = Duration::from_micros(50);
        a.absorb(&b);
        assert_eq!(a.cnf_clauses, 15);
        assert_eq!(a.conflict_clauses, 7);
        assert_eq!(a.decisions, 8);
        assert_eq!(a.translate_time, Duration::from_micros(150));
        assert_eq!(a.dag_size, 60);
        assert_eq!(a.classes, 2);
        assert_eq!(a.max_class_range, 9);
    }
}
