//! A parallel portfolio over the paper's encoding modes.
//!
//! The paper's central observation is that SD and EIJ dominate each other
//! on different formulas, and its HYBRID threshold is a *prediction* of the
//! winner. A portfolio sidesteps prediction: [`decide_portfolio`] races one
//! [`decide`] lane per encoding mode on its own thread, takes the first
//! definitive answer (all lanes are sound, so any definitive answer is the
//! answer), and retires the losing lanes through their [`CancelToken`]s —
//! cancellation reaches both a running SAT search and a blowing-up EIJ
//! transitivity generation, so a lost race never keeps burning a core.
//!
//! [`decide_many`] amortizes the same idea over batch workloads with a
//! bounded worker pool and deterministic result ordering.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use sufsat_sat::CancelToken;
use sufsat_suf::{TermId, TermManager};

use crate::certify::Certificate;
use crate::decide::{
    decide, mode_label, outcome_label, DecideOptions, DecideStats, Decision, Outcome,
    DEFAULT_SEP_THOLD,
};
use crate::EncodingMode;

/// Options controlling [`decide_portfolio`].
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioOptions {
    /// The encoding modes raced against each other, in priority order:
    /// if every lane returns `Unknown`, the first lane's stop reason is
    /// reported.
    pub lanes: Vec<EncodingMode>,
    /// Settings shared by every lane (mode and cancellation token are
    /// overridden per lane).
    pub base: DecideOptions,
}

impl Default for PortfolioOptions {
    fn default() -> PortfolioOptions {
        PortfolioOptions {
            lanes: vec![
                EncodingMode::Hybrid(DEFAULT_SEP_THOLD),
                EncodingMode::Sd,
                EncodingMode::Eij,
            ],
            base: DecideOptions::default(),
        }
    }
}

impl PortfolioOptions {
    /// A portfolio over the given lanes with default base options.
    pub fn with_lanes(lanes: Vec<EncodingMode>) -> PortfolioOptions {
        PortfolioOptions {
            lanes,
            ..PortfolioOptions::default()
        }
    }
}

/// Telemetry of one portfolio lane.
#[derive(Debug, Clone)]
pub struct LaneReport {
    /// The lane's encoding mode.
    pub mode: EncodingMode,
    /// The lane's own outcome. Losing lanes typically report
    /// [`Outcome::Unknown`]`(`[`StopReason::Cancelled`]`)`, but a lane that
    /// crossed the finish line before observing the cancellation reports
    /// its genuine answer.
    ///
    /// [`StopReason::Cancelled`]: crate::StopReason::Cancelled
    pub outcome: Outcome,
    /// The lane's measurements (conflicts, clauses, stage times, …).
    pub stats: DecideStats,
    /// Wall-clock time the lane ran before returning.
    pub wall_time: Duration,
    /// Whether this lane's answer was adopted as the portfolio's answer.
    pub won: bool,
    /// How long after the race-ending cancellation this lane took to
    /// return. `None` for the winner and for lanes that finished before
    /// any cancellation was issued; losing lanes that observed the token
    /// cooperatively report their observed retirement latency here.
    pub cancel_latency: Option<Duration>,
}

/// The result of a portfolio race: the adopted outcome plus per-lane
/// telemetry.
#[derive(Debug, Clone)]
pub struct PortfolioDecision {
    /// The adopted verdict (the first definitive lane answer, or the first
    /// lane's `Unknown` if no lane answered).
    pub outcome: Outcome,
    /// Index into [`PortfolioDecision::lanes`] of the winning lane, if any
    /// lane produced a definitive answer.
    pub winner: Option<usize>,
    /// The winning lane's measurements (the first lane's if nobody won).
    pub stats: DecideStats,
    /// The whole race's measurements: every lane's stats folded together
    /// with [`DecideStats::absorb`], so the work burnt by cancelled losers
    /// is accounted for rather than dropped. Additive counters (times,
    /// clauses, conflicts, …) sum across lanes; structural quantities
    /// (DAG size, classes, …) take the maximum.
    pub aggregate_stats: DecideStats,
    /// Per-lane telemetry, in the order of [`PortfolioOptions::lanes`].
    pub lanes: Vec<LaneReport>,
    /// Wall-clock time of the whole race.
    pub wall_time: Duration,
    /// The winning lane's certificate, when
    /// [`DecideOptions::certify`](crate::DecideOptions::certify) is set on
    /// the base options and a lane produced a definitive answer.
    pub certificate: Option<Certificate>,
}

impl PortfolioDecision {
    /// The winning lane's encoding mode, if any lane won.
    pub fn winner_mode(&self) -> Option<EncodingMode> {
        self.winner.map(|i| self.lanes[i].mode)
    }
}

/// Races one [`decide`] lane per encoding mode in
/// [`PortfolioOptions::lanes`] and adopts the first definitive answer.
///
/// Every lane works on its own clone of `tm`, so the lanes cannot contend;
/// when a lane wins, `tm` is replaced by the winner's manager, which names
/// the fresh constants a counterexample assignment refers to — exactly as
/// if [`decide`] had been called directly with the winning mode. If no lane
/// answers, `tm` keeps its original contents.
///
/// Losing lanes are cancelled cooperatively and their partial measurements
/// are still reported in [`PortfolioDecision::lanes`].
///
/// # Examples
///
/// ```
/// use sufsat_core::{decide_portfolio, PortfolioOptions};
/// use sufsat_suf::TermManager;
///
/// let mut tm = TermManager::new();
/// let x = tm.int_var("x");
/// let y = tm.int_var("y");
/// let lt = tm.mk_lt(x, y);
/// let ge = tm.mk_ge(x, y);
/// let phi = tm.mk_or(lt, ge); // totality of the order: valid
/// let d = decide_portfolio(&mut tm, phi, &PortfolioOptions::default());
/// assert!(d.outcome.is_valid());
/// assert!(d.winner.is_some());
/// ```
///
/// # Panics
///
/// Panics if [`PortfolioOptions::lanes`] is empty.
pub fn decide_portfolio(
    tm: &mut TermManager,
    phi: TermId,
    options: &PortfolioOptions,
) -> PortfolioDecision {
    assert!(
        !options.lanes.is_empty(),
        "portfolio needs at least one lane"
    );
    let race_span = sufsat_obs::span_with!("core.portfolio", lanes = options.lanes.len());
    let start = Instant::now();
    let tokens: Vec<CancelToken> = options.lanes.iter().map(|_| CancelToken::new()).collect();

    let (mut slots, winner, latencies) = {
        let tm_ref: &TermManager = tm;
        thread::scope(|scope| {
            let (tx, rx) = mpsc::channel();
            for (i, (&mode, token)) in options.lanes.iter().zip(&tokens).enumerate() {
                let tx = tx.clone();
                let token = token.clone();
                let base = &options.base;
                scope.spawn(move || {
                    // Lane threads have their own span stacks, so the lane
                    // span is a root; the `lane` field ties it back to the
                    // `core.portfolio` span in the trace.
                    let lane_span =
                        sufsat_obs::span_with!("portfolio.lane", lane = i, mode = mode_label(mode));
                    let mut lane_tm = tm_ref.clone();
                    let mut lane_options = base.clone();
                    lane_options.mode = mode;
                    lane_options.cancel = Some(token);
                    let lane_start = Instant::now();
                    let decision = decide(&mut lane_tm, phi, &lane_options);
                    let wall = lane_start.elapsed();
                    if lane_span.is_recording() {
                        sufsat_obs::event!(
                            "portfolio.lane.done",
                            lane = i,
                            mode = mode_label(mode),
                            outcome = outcome_label(&decision.outcome),
                            wall_us = wall.as_micros() as u64,
                            sat_us = decision.stats.sat_time.as_micros() as u64,
                            conflict_clauses = decision.stats.conflict_clauses
                        );
                    }
                    drop(lane_span);
                    // The receiver hanging up (it never does) is not an
                    // error worth unwinding over.
                    let _ = tx.send((i, decision, lane_tm, wall));
                });
            }
            drop(tx);

            let mut slots: Vec<Option<(Decision, TermManager, Duration)>> =
                options.lanes.iter().map(|_| None).collect();
            let mut latencies: Vec<Option<Duration>> =
                options.lanes.iter().map(|_| None).collect();
            let mut winner: Option<usize> = None;
            let mut cancel_at: Option<Instant> = None;
            for (i, decision, lane_tm, wall) in rx {
                let definitive = !matches!(decision.outcome, Outcome::Unknown(_));
                if let Some(at) = cancel_at {
                    // Retirement latency of a loser: from the moment the
                    // winner's cancellation was broadcast to this lane
                    // reporting back.
                    let latency = at.elapsed();
                    latencies[i] = Some(latency);
                    if race_span.is_recording() {
                        sufsat_obs::event!(
                            "portfolio.cancel_latency",
                            lane = i,
                            latency_us = latency.as_micros() as u64
                        );
                    }
                }
                slots[i] = Some((decision, lane_tm, wall));
                if definitive && winner.is_none() {
                    winner = Some(i);
                    for (j, other) in tokens.iter().enumerate() {
                        if j != i {
                            other.cancel();
                        }
                    }
                    cancel_at = Some(Instant::now());
                }
            }
            (slots, winner, latencies)
        })
    };

    let mut lanes: Vec<LaneReport> = Vec::with_capacity(options.lanes.len());
    let mut aggregate_stats = DecideStats::default();
    for (i, slot) in slots.iter().enumerate() {
        let (decision, _, wall) = slot.as_ref().expect("every lane reports");
        aggregate_stats.absorb(&decision.stats);
        lanes.push(LaneReport {
            mode: options.lanes[i],
            outcome: decision.outcome.clone(),
            stats: decision.stats.clone(),
            wall_time: *wall,
            won: winner == Some(i),
            cancel_latency: latencies[i],
        });
    }

    let adopted = winner.unwrap_or(0);
    let (decision, lane_tm, _) = slots[adopted].take().expect("every lane reports");
    if winner.is_some() {
        // Adopt the winner's manager so counterexample symbols resolve.
        *tm = lane_tm;
    }
    if race_span.is_recording() {
        sufsat_obs::event!(
            "portfolio.winner",
            winner = winner.map_or(-1, |i| i as i64),
            mode = winner.map_or("none", |i| mode_label(options.lanes[i])),
            outcome = outcome_label(&decision.outcome),
            wall_us = start.elapsed().as_micros() as u64
        );
    }
    PortfolioDecision {
        outcome: decision.outcome,
        winner,
        stats: decision.stats,
        aggregate_stats,
        lanes,
        wall_time: start.elapsed(),
        certificate: decision.certificate,
    }
}

/// Decides a batch of formulas with a bounded worker pool, each item
/// through [`decide_portfolio`].
///
/// Results come back in input order regardless of completion order. Each
/// item runs against its own clone of `tm`; counterexample assignments in
/// the results refer to fresh constants of those internal clones (original
/// symbols of `tm` keep their identity in every clone).
///
/// Duplicate formulas — identical after canonicalization, which covers
/// α-renaming and commutative reordering as well as byte-identical
/// repeats — are solved once: each group's representative runs through
/// the portfolio and the result is fanned back out to the duplicates,
/// with counterexample assignments remapped onto each duplicate's own
/// symbols (restricted to the original formula's variables).
///
/// `jobs` is clamped to at least 1. With `jobs == 1` items run strictly
/// sequentially (though each item still races its lanes).
pub fn decide_many(
    tm: &TermManager,
    formulas: &[TermId],
    options: &PortfolioOptions,
    jobs: usize,
) -> Vec<PortfolioDecision> {
    // Group duplicates by canonical form; the first index of each group
    // is its representative.
    let mut canons = Vec::with_capacity(formulas.len());
    let mut rep_of = Vec::with_capacity(formulas.len());
    let mut first_by_canon: HashMap<sufsat_cache::Fingerprint, Vec<usize>> = HashMap::new();
    for (i, &phi) in formulas.iter().enumerate() {
        let canonical = sufsat_cache::canonicalize(tm, phi);
        let bucket = first_by_canon.entry(canonical.fingerprint).or_default();
        let rep = bucket
            .iter()
            .copied()
            .find(|&j| canons[j] == canonical.bytes)
            .unwrap_or(i);
        if rep == i {
            bucket.push(i);
        }
        rep_of.push(rep);
        canons.push(canonical.bytes);
    }
    let reps: Vec<usize> = (0..formulas.len()).filter(|&i| rep_of[i] == i).collect();

    let workers = jobs.max(1).min(reps.len().max(1));
    let batch_span = sufsat_obs::span_with!(
        "core.decide_many",
        items = formulas.len(),
        unique = reps.len(),
        workers = workers
    );
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<PortfolioDecision>> = formulas.iter().map(|_| None).collect();
    thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let reps = &reps;
            scope.spawn(move || loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = reps.get(k) else { break };
                let mut item_tm = tm.clone();
                let decision = decide_portfolio(&mut item_tm, formulas[i], options);
                if tx.send((i, decision)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, decision) in rx {
            results[i] = Some(decision);
        }
    });

    // Fan the representatives' results back out to their duplicates.
    for i in 0..formulas.len() {
        let rep = rep_of[i];
        if rep == i {
            continue;
        }
        let mut decision = results[rep].clone().expect("representative decided");
        if formulas[i] != formulas[rep] {
            // An α-variant: same canonical form, different symbols.
            // Re-canonicalize both sides to build the index bijection.
            let canon_rep = sufsat_cache::canonicalize(tm, formulas[rep]);
            let canon_dup = sufsat_cache::canonicalize(tm, formulas[i]);
            remap_portfolio_models(&mut decision, &canon_rep, &canon_dup);
        }
        results[i] = Some(decision);
    }

    if batch_span.is_recording() {
        let decided = results
            .iter()
            .filter(|r| {
                r.as_ref()
                    .is_some_and(|d| !matches!(d.outcome, Outcome::Unknown(_)))
            })
            .count();
        sufsat_obs::event!(
            "decide_many.done",
            items = formulas.len(),
            unique = reps.len(),
            decided = decided
        );
    }
    drop(batch_span);
    results
        .into_iter()
        .map(|r| r.expect("every item decided"))
        .collect()
}

/// Remaps every counterexample in `decision` from the representative's
/// symbols onto the duplicate's, through their shared canonical index
/// space. Symbols without a canonical index (fresh constants introduced
/// by the representative's function elimination) are dropped — the
/// remapped model is a best-effort witness over the duplicate's own
/// variables; the verdict is the contract.
fn remap_portfolio_models(
    decision: &mut PortfolioDecision,
    canon_rep: &sufsat_cache::Canonical,
    canon_dup: &sufsat_cache::Canonical,
) {
    let remap = |outcome: &mut Outcome| {
        let Outcome::Invalid(cex) = outcome else {
            return;
        };
        let mut remapped = sufsat_seplog::SepAssignment::default();
        for (&var, &val) in &cex.ints {
            if let Some(idx) = canon_rep.int_var_index(var) {
                if let Some(&dup_var) = canon_dup.int_vars.get(idx as usize) {
                    remapped.ints.insert(dup_var, val);
                }
            }
        }
        for (&var, &val) in &cex.bools {
            if let Some(idx) = canon_rep.bool_var_index(var) {
                if let Some(&dup_var) = canon_dup.bool_vars.get(idx as usize) {
                    remapped.bools.insert(dup_var, val);
                }
            }
        }
        *cex = remapped;
    };
    remap(&mut decision.outcome);
    for lane in &mut decision.lanes {
        remap(&mut lane.outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StopReason;

    fn paper_example(tm: &mut TermManager) -> TermId {
        // ¬(x ≥ y ∧ y ≥ z ∧ z ≥ succ(x)) — valid.
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let a = tm.mk_ge(x, y);
        let b = tm.mk_ge(y, z);
        let sx = tm.mk_succ(x);
        let c = tm.mk_ge(z, sx);
        let conj = tm.mk_and_many(&[a, b, c]);
        tm.mk_not(conj)
    }

    fn invalid_uf(tm: &mut TermManager) -> TermId {
        // f(x) = f(y) ⇒ x = y — invalid (no injectivity).
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let hyp = tm.mk_eq(fx, fy);
        let conc = tm.mk_eq(x, y);
        tm.mk_implies(hyp, conc)
    }

    #[test]
    fn portfolio_agrees_with_single_lane_on_valid_formula() {
        let mut tm = TermManager::new();
        let phi = paper_example(&mut tm);
        let d = decide_portfolio(&mut tm, phi, &PortfolioOptions::default());
        assert!(d.outcome.is_valid());
        let winner = d.winner.expect("someone wins");
        assert!(d.lanes[winner].won);
        assert!(d.lanes[winner].outcome.is_valid());
        assert_eq!(d.lanes.len(), 3);
        assert_eq!(d.winner_mode(), Some(d.lanes[winner].mode));
    }

    #[test]
    fn portfolio_counterexample_resolves_in_callers_manager() {
        let mut tm = TermManager::new();
        let phi = invalid_uf(&mut tm);
        let d = decide_portfolio(&mut tm, phi, &PortfolioOptions::default());
        let Outcome::Invalid(cex) = d.outcome else {
            panic!("formula is invalid, got {:?}", d.outcome);
        };
        // The adopted manager names the eliminated-application constants,
        // so the assignment falsifies the eliminated formula.
        let elim = sufsat_suf::eliminate(&mut tm, phi);
        assert!(!cex.evaluate(&tm, elim.formula));
    }

    #[test]
    fn losing_lanes_are_retired() {
        // A dense instance whose EIJ translation is far slower than SD:
        // the SD lane wins and the EIJ lane is cancelled (either in
        // translation or in the SAT search).
        let mut tm = TermManager::new();
        let vars: Vec<_> = (0..9).map(|i| tm.int_var(&format!("v{i}"))).collect();
        let mut atoms = Vec::new();
        for i in 0..vars.len() {
            for j in 0..vars.len() {
                if i != j {
                    let off = tm.mk_offset(vars[j], (i as i64 % 3) - 1);
                    atoms.push(tm.mk_lt(vars[i], off));
                }
            }
        }
        let phi = tm.mk_or_many(&atoms);
        let options = PortfolioOptions::with_lanes(vec![EncodingMode::Sd, EncodingMode::Eij]);
        let d = decide_portfolio(&mut tm, phi, &options);
        assert!(!matches!(d.outcome, Outcome::Unknown(_)));
        // The EIJ lane must not have produced a conflicting verdict; it
        // either got cancelled or finished with the same answer.
        match &d.lanes[1].outcome {
            Outcome::Unknown(StopReason::Cancelled) => {}
            other => assert_eq!(other.is_valid(), d.outcome.is_valid()),
        }
    }

    #[test]
    fn no_winner_reports_first_lane_reason() {
        let mut tm = TermManager::new();
        let vars: Vec<_> = (0..8).map(|i| tm.int_var(&format!("v{i}"))).collect();
        let mut atoms = Vec::new();
        for i in 0..vars.len() {
            for j in 0..vars.len() {
                if i != j {
                    let off = tm.mk_offset(vars[j], (i as i64 % 3) - 1);
                    atoms.push(tm.mk_lt(vars[i], off));
                }
            }
        }
        let phi = tm.mk_or_many(&atoms);
        let mut options = PortfolioOptions::with_lanes(vec![EncodingMode::Eij]);
        options.base.trans_budget = 5;
        let d = decide_portfolio(&mut tm, phi, &options);
        assert_eq!(d.winner, None);
        assert_eq!(d.outcome, Outcome::Unknown(StopReason::TranslationBudget));
    }

    #[test]
    fn decide_many_preserves_input_order() {
        let mut tm = TermManager::new();
        let valid = paper_example(&mut tm);
        let invalid = invalid_uf(&mut tm);
        let formulas = [valid, invalid, valid, invalid, valid];
        let options = PortfolioOptions::default();
        for jobs in [1, 2, 4] {
            let results = decide_many(&tm, &formulas, &options, jobs);
            assert_eq!(results.len(), formulas.len());
            for (i, d) in results.iter().enumerate() {
                let expect_valid = i % 2 == 0;
                assert_eq!(d.outcome.is_valid(), expect_valid, "item {i}, jobs {jobs}");
                assert!(matches!(
                    d.outcome,
                    Outcome::Valid | Outcome::Invalid(_)
                ));
            }
        }
    }

    #[test]
    fn decide_many_solves_each_unique_formula_once() {
        let mut tm = TermManager::new();
        let phi = invalid_uf(&mut tm);
        // An α-renamed spelling: same canonical form, different TermId.
        let g = tm.declare_fun("g", 1);
        let a = tm.int_var("a");
        let b = tm.int_var("b");
        let ga = tm.mk_app(g, vec![a]);
        let gb = tm.mk_app(g, vec![b]);
        let hyp = tm.mk_eq(ga, gb);
        let conc = tm.mk_eq(a, b);
        let psi = tm.mk_implies(hyp, conc);
        assert_ne!(phi, psi);

        let formulas = [phi, phi, psi, phi];
        let results = decide_many(&tm, &formulas, &PortfolioOptions::default(), 2);
        assert_eq!(results.len(), 4);
        for d in &results {
            assert!(matches!(d.outcome, Outcome::Invalid(_)));
        }
        // Byte-identical duplicates carry the representative's exact
        // measurements — down to the Duration fields, which two
        // independent solves would never reproduce.
        assert_eq!(results[0].stats.sat_time, results[1].stats.sat_time);
        assert_eq!(results[0].stats.translate_time, results[3].stats.translate_time);
        assert_eq!(results[0].wall_time, results[1].wall_time);
        assert_eq!(results[2].stats.sat_time, results[0].stats.sat_time);
        // The α-variant's counterexample was remapped onto its own
        // symbols: it talks about a/b, never about x/y.
        let Outcome::Invalid(cex) = &results[2].outcome else {
            unreachable!()
        };
        let x = tm.find_int_var("x").unwrap();
        let y = tm.find_int_var("y").unwrap();
        assert!(!cex.ints.contains_key(&x) && !cex.ints.contains_key(&y));
        let a_sym = tm.find_int_var("a").unwrap();
        let b_sym = tm.find_int_var("b").unwrap();
        assert!(cex.ints.keys().all(|v| *v == a_sym || *v == b_sym));
    }

    #[test]
    fn decide_many_remapped_model_falsifies_the_duplicate() {
        // UF-free invalid formulas: the counterexample is total over the
        // original variables, so the remapped model must falsify the
        // α-variant outright.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let phi = tm.mk_lt(x, y); // invalid as a validity claim
        let a = tm.int_var("a");
        let b = tm.int_var("b");
        let psi = tm.mk_lt(a, b);
        assert_ne!(phi, psi);

        let results = decide_many(&tm, &[phi, psi], &PortfolioOptions::default(), 2);
        let Outcome::Invalid(cex) = &results[1].outcome else {
            panic!("x < y is falsifiable");
        };
        let mut check_tm = tm.clone();
        let elim = sufsat_suf::eliminate(&mut check_tm, psi);
        assert!(!cex.evaluate(&check_tm, elim.formula));
    }

    #[test]
    fn aggregate_stats_fold_every_lane() {
        let mut tm = TermManager::new();
        let phi = paper_example(&mut tm);
        let d = decide_portfolio(&mut tm, phi, &PortfolioOptions::default());
        // Additive counters sum across all lanes (loser work is not
        // dropped), so the aggregate covers each individual lane...
        let lane_clauses: u64 = d.lanes.iter().map(|l| l.stats.cnf_clauses).sum();
        assert_eq!(d.aggregate_stats.cnf_clauses, lane_clauses);
        let lane_conflicts: u64 = d.lanes.iter().map(|l| l.stats.conflict_clauses).sum();
        assert_eq!(d.aggregate_stats.conflict_clauses, lane_conflicts);
        // ...and at least the adopted stats.
        assert!(d.aggregate_stats.cnf_clauses >= d.stats.cnf_clauses);
        assert!(d.aggregate_stats.sat_time >= d.stats.sat_time);
        assert_eq!(d.aggregate_stats.dag_size, d.stats.dag_size);
        // The winner finished before any cancellation was issued.
        let winner = d.winner.expect("someone wins");
        assert_eq!(d.lanes[winner].cancel_latency, None);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_lane_list_panics() {
        let mut tm = TermManager::new();
        let t = tm.mk_true();
        let _ = decide_portfolio(&mut tm, t, &PortfolioOptions::with_lanes(Vec::new()));
    }
}
