//! Persistent incremental solving sessions.
//!
//! The one-shot pipeline ([`sufsat_core::decide`]) rebuilds everything —
//! elimination tables, separation analysis, encoding, CNF, solver — for
//! every query. Clients that ask many *related* queries (bounded model
//! checking unrolls one system to increasing depths; lazy refinement
//! re-solves one abstraction under growing constraint sets) throw away
//! nearly all of that work, and with it the SAT solver's learnt clauses.
//!
//! A [`Session`] keeps the whole stack alive across queries:
//!
//! * one persistent [`sufsat_suf::TermManager`] and
//!   [`sufsat_suf::IncrementalElim`], so function applications eliminate
//!   once and stay functionally consistent across assertions;
//! * one [`sufsat_encode::IncrementalEncoder`] that encodes only terms and
//!   atoms not seen before, extending committed small domains and
//!   transitivity tables monotonically — with a sound fallback to full
//!   re-encoding when a new assertion cannot be hosted under the committed
//!   decisions;
//! * one persistent [`sufsat_sat::Solver`], with assertion scoping via
//!   activation literals over `solve_with_assumptions`, so conflict
//!   clauses survive [`Session::push`]/[`Session::pop`].
//!
//! [`Session::check`] answers with the same [`Outcome`]/[`Certificate`]
//! surface as [`sufsat_core::decide`], plus an unsat core of
//! [`AssertionId`]s extracted (and optionally minimized) from the solver's
//! failed assumptions.
//!
//! The [`bmc`] module rewires bounded model checking on top of a session:
//! one solver across all depths, each depth's obligation pushed under an
//! assumption and popped afterwards.
//!
//! # Examples
//!
//! ```
//! use sufsat_core::Outcome;
//! use sufsat_incremental::Session;
//!
//! let mut session = Session::default();
//! let (x, y, z) = {
//!     let tm = session.term_manager_mut();
//!     (tm.int_var("x"), tm.int_var("y"), tm.int_var("z"))
//! };
//! let xy = session.term_manager_mut().mk_lt(x, y);
//! let yz = session.term_manager_mut().mk_lt(y, z);
//! let zx = session.term_manager_mut().mk_lt(z, x);
//! session.assert(xy);
//! session.assert(yz);
//! assert!(matches!(session.check().outcome, Outcome::Invalid(_))); // satisfiable
//! session.push();
//! session.assert(zx); // closes the cycle
//! assert!(session.check().outcome.is_valid()); // unsatisfiable
//! session.pop();
//! assert!(matches!(session.check().outcome, Outcome::Invalid(_))); // retracted
//! ```

#![warn(missing_docs)]

pub mod bmc;
mod session;

pub use bmc::{check_bounded_incremental, check_bounded_incremental_report, IncrementalBmcReport};
pub use session::{conjuncts_of, AssertionId, CheckResult, Session, SessionStats};

// Re-exported so session clients can name the answer surface without
// depending on the core crate directly.
pub use sufsat_core::{Certificate, DecideOptions, Outcome, StopReason};
pub use sufsat_encode::ReencodeReason;
