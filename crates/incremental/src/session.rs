//! The persistent solving session.
//!
//! A session decides *satisfiability of the asserted conjunction*, which
//! is the refutation dual of [`sufsat_core::decide`]'s validity question:
//! `check()` on assertions `A₁ … Aₙ` answers exactly like
//! `decide(¬(A₁ ∧ … ∧ Aₙ))` — [`Outcome::Valid`] means the conjunction is
//! unsatisfiable (its negation is valid), [`Outcome::Invalid`] carries an
//! assignment satisfying every live assertion. Keeping `decide`'s outcome
//! surface means every existing consumer (portfolio, fuzz oracle, BMC)
//! can compare the two paths verbatim.
//!
//! Scoping is implemented with activation literals: each live assertion's
//! encoded top literal is guarded by one fresh solver variable asserted
//! only as a `solve_with_assumptions` assumption. [`Session::pop`] retires
//! the scope's activation literals with level-0 units and simplifies, so
//! the guarded clauses leave the clause database while every learnt
//! clause (which can only resolve on *unguarded* consequences plus `¬act`
//! literals, all still valid) survives for later checks.

use std::collections::HashMap;
use std::time::Instant;

use sufsat_core::{
    decide, interpretation_from_instances, Certificate, DecideOptions, DecideStats, Outcome,
    StopReason,
};
use sufsat_encode::{
    try_decode_model_parts, EncodeOptions, IncrementalEncoder, IncrementalLoader, ReencodeReason,
};
use sufsat_sat::{minimize_assumptions, Interrupt, Lit, SolveResult, Solver};
use sufsat_seplog::{SepAnalysis, SepAssignment};
use sufsat_suf::{analyze_polarity, eval, IncrementalElim, Sort, Term, TermId, TermManager, Value};

/// Stable handle of one [`Session::assert`] call, usable to interpret the
/// unsat cores returned by [`Session::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AssertionId(usize);

impl AssertionId {
    /// The assertion's position in the session-global assert order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One live assertion of the stack.
#[derive(Debug)]
struct Assertion {
    id: AssertionId,
    original: TermId,
    eliminated: TermId,
    /// Activation literal guarding the encoded assertion, valid for
    /// `generation` only (re-encoding rebuilds the solver).
    act: Option<Lit>,
    generation: u64,
}

/// Session-lifetime counters (cumulative across checks, including work in
/// solvers discarded by re-encoding fallbacks).
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct SessionStats {
    /// `check()` calls answered.
    pub checks: u64,
    /// Full re-encoding fallbacks taken (encoder + solver rebuilt).
    pub reencodes: u64,
    /// Assertions whose encoding and activation literal were reused from
    /// an earlier check.
    pub reused_roots: u64,
    /// Assertions encoded and guarded fresh at some check.
    pub fresh_roots: u64,
    /// `pop()` calls.
    pub pops: u64,
    /// Assertions retired by pops (activation literal permanently
    /// disabled).
    pub retired_assertions: u64,
    /// Conflicts across the session, including discarded solvers.
    pub conflicts: u64,
    /// Decisions across the session, including discarded solvers.
    pub decisions: u64,
    /// Propagations across the session, including discarded solvers.
    pub propagations: u64,
    /// Extra solves spent minimizing unsat cores.
    pub core_solves: u64,
}

/// The answer of one [`Session::check`] call.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// The verdict, with [`sufsat_core::decide`]'s meaning for the
    /// *negated* conjunction: `Valid` ⇔ the asserted conjunction is
    /// unsatisfiable; `Invalid` carries an assignment satisfying every
    /// live assertion.
    pub outcome: Outcome,
    /// Per-check measurements in [`DecideStats`] shape. Solver counters
    /// (`conflict_clauses`, `decisions`, `propagations`, `sat_time`) are
    /// this check's deltas; `cnf_clauses` is the persistent solver's
    /// cumulative clause count; structural fields describe the live
    /// conjunction.
    pub stats: DecideStats,
    /// Machine-checked evidence, present when
    /// [`DecideOptions::certify`] was set and the check produced a
    /// definitive answer. Unsat answers are certified by a one-shot
    /// certified replay of the (minimized) core, so the evidence is
    /// independent of the incremental machinery.
    pub certificate: Option<Certificate>,
    /// For unsat answers: a sufficient subset of the live assertions,
    /// extracted from the solver's failed assumptions and minimized
    /// within [`Session::set_core_minimize_budget`].
    pub unsat_core: Option<Vec<AssertionId>>,
    /// Whether this check had to fall back to full re-encoding, and why.
    pub reencoded: Option<ReencodeReason>,
}

/// Default solve budget for per-check unsat-core minimization.
const DEFAULT_CORE_MINIMIZE_BUDGET: u64 = 24;

/// A persistent incremental solving session (see the crate docs).
#[derive(Debug)]
pub struct Session {
    tm: TermManager,
    options: DecideOptions,
    core_minimize_budget: u64,
    elim: IncrementalElim,
    solver: Solver,
    loader: IncrementalLoader,
    enc: IncrementalEncoder,
    assertions: Vec<Assertion>,
    /// Stack of `assertions.len()` marks, one per open `push`.
    frames: Vec<usize>,
    next_id: usize,
    generation: u64,
    /// `original_clauses` count after the last `preprocess()` run on the
    /// current solver, so unchanged clause sets skip re-preprocessing.
    preprocessed_at: Option<u64>,
    stats: SessionStats,
    /// Solver counters accumulated from generations discarded by
    /// re-encoding (conflicts, decisions, propagations).
    discarded: (u64, u64, u64),
}

impl Default for Session {
    fn default() -> Session {
        Session::new(DecideOptions::default())
    }
}

impl Session {
    /// A fresh session with its own term manager.
    pub fn new(options: DecideOptions) -> Session {
        Session::with_term_manager(TermManager::new(), options)
    }

    /// A fresh session taking ownership of an existing term manager (terms
    /// built in it beforehand stay assertable).
    pub fn with_term_manager(tm: TermManager, options: DecideOptions) -> Session {
        Session {
            tm,
            loader: IncrementalLoader::new(options.cnf),
            options,
            core_minimize_budget: DEFAULT_CORE_MINIMIZE_BUDGET,
            elim: IncrementalElim::new(),
            solver: Solver::new(),
            enc: IncrementalEncoder::new(),
            assertions: Vec::new(),
            frames: Vec::new(),
            next_id: 0,
            generation: 0,
            preprocessed_at: None,
            stats: SessionStats::default(),
            discarded: (0, 0, 0),
        }
    }

    /// Releases the term manager (terms survive the session).
    pub fn into_term_manager(self) -> TermManager {
        self.tm
    }

    /// The session's term manager.
    pub fn term_manager(&self) -> &TermManager {
        &self.tm
    }

    /// Mutable access to the term manager, for building formulas to
    /// assert. Creating terms never disturbs session state.
    pub fn term_manager_mut(&mut self) -> &mut TermManager {
        &mut self.tm
    }

    /// Session-lifetime counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Caps the re-solves spent minimizing each unsat core (0 disables
    /// minimization; the raw failed-assumption core is still returned).
    pub fn set_core_minimize_budget(&mut self, solves: u64) {
        self.core_minimize_budget = solves;
    }

    /// Sets (or clears) the wall-clock budget applied to each subsequent
    /// [`check`](Session::check). Lets a long-lived session vary the
    /// deadline per query instead of fixing it at construction.
    pub fn set_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.options.timeout = timeout;
    }

    /// Sets (or clears) the cancellation token polled by subsequent
    /// [`check`](Session::check) calls, so an external party (e.g. a
    /// server noticing a client disconnect) can abort a running solve.
    pub fn set_cancel_token(&mut self, cancel: Option<sufsat_sat::CancelToken>) {
        self.options.cancel = cancel;
    }

    /// Sets (or clears) the progress heartbeat handle installed into the
    /// solver by subsequent [`check`](Session::check) calls, so an
    /// external thread can watch a long search live (see
    /// [`sufsat_sat::ProgressHandle`]).
    pub fn set_progress_handle(&mut self, progress: Option<sufsat_sat::ProgressHandle>) {
        self.options.progress = progress;
    }

    /// Number of open scopes.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Number of live assertions across all scopes.
    pub fn num_assertions(&self) -> usize {
        self.assertions.len()
    }

    /// Opens a scope: assertions made until the matching [`Session::pop`]
    /// are retracted by it.
    pub fn push(&mut self) {
        self.frames.push(self.assertions.len());
    }

    /// Closes the innermost scope, retracting its assertions. Their
    /// activation literals are retired with level-0 units and the clause
    /// database is simplified, so the retracted content leaves the solver
    /// while learnt clauses survive.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop(&mut self) {
        let mark = self.frames.pop().expect("pop without a matching push");
        let mut retired = 0usize;
        for assertion in self.assertions.drain(mark..) {
            if assertion.generation == self.generation {
                if let Some(act) = assertion.act {
                    self.solver.add_clause([!act]);
                    retired += 1;
                }
            }
        }
        if retired > 0 {
            self.solver.simplify();
        }
        self.stats.pops += 1;
        self.stats.retired_assertions += retired as u64;
        sufsat_obs::event!(
            "session.pop",
            retired = retired,
            live = self.assertions.len(),
            depth = self.frames.len(),
        );
    }

    /// Asserts a Boolean formula in the current scope. Uninterpreted
    /// applications are eliminated immediately against the session's
    /// persistent instance tables; encoding is deferred to the next
    /// [`Session::check`].
    ///
    /// # Panics
    ///
    /// Panics if `t` is not Boolean-sorted.
    pub fn assert(&mut self, t: TermId) -> AssertionId {
        assert_eq!(self.tm.sort(t), Sort::Bool, "assertions must be Boolean");
        let eliminated = self.elim.eliminate(&mut self.tm, t);
        let id = AssertionId(self.next_id);
        self.next_id += 1;
        self.assertions.push(Assertion {
            id,
            original: t,
            eliminated,
            act: None,
            generation: self.generation,
        });
        id
    }

    /// Discards the current encoder and solver, keeping elimination state
    /// (which is purely structural and stays valid); every live assertion
    /// will be encoded and guarded afresh at the next check.
    fn rebuild(&mut self, reason: ReencodeReason) {
        let s = self.solver.stats();
        self.discarded.0 += s.conflicts;
        self.discarded.1 += s.decisions;
        self.discarded.2 += s.propagations;
        self.solver = Solver::new();
        self.loader = IncrementalLoader::new(self.options.cnf);
        self.enc = IncrementalEncoder::new();
        self.preprocessed_at = None;
        for a in &mut self.assertions {
            a.act = None;
        }
        self.generation += 1;
        self.stats.reencodes += 1;
        sufsat_obs::event!(
            "session.reencode",
            reason = reencode_label(reason),
            generation = self.generation,
            live = self.assertions.len(),
        );
    }

    /// Decides satisfiability of the live conjunction (see the module
    /// docs for the outcome mapping).
    ///
    /// # Panics
    ///
    /// Panics if a satisfying assignment fails replay against the live
    /// separation formulas (an internal soundness bug) and certification
    /// was not requested.
    pub fn check(&mut self) -> CheckResult {
        let translate_start = Instant::now();
        self.stats.checks += 1;
        let span = sufsat_obs::span_with!(
            "session.check",
            live = self.assertions.len(),
            depth = self.frames.len(),
            generation = self.generation,
        );

        // The implicit validity query is ¬(A₁ ∧ … ∧ Aₙ); its eliminated,
        // application-free dual ¬(E₁ ∧ … ∧ Eₙ) is what gets analyzed and
        // encoded. The positive-equality classification is recomputed per
        // check on that dual: classifying the original query instead would
        // leave elimination-fresh constants from earlier checks
        // unclassified (they never occur in original terms), silently
        // carrying stale `V_p` memberships across polarity changes.
        let originals: Vec<TermId> = self.assertions.iter().map(|a| a.original).collect();
        let elim_roots: Vec<TermId> = self.assertions.iter().map(|a| a.eliminated).collect();
        let conj = self.tm.mk_and_many(&originals);
        let query = self.tm.mk_not(conj);
        let dag_size = self.tm.dag_size(query);
        let e_conj = self.tm.mk_and_many(&elim_roots);

        let mut stats = DecideStats::default();
        stats.dag_size = dag_size;
        stats.fresh_constants = self.elim.num_fresh_int() + self.elim.num_fresh_bool();

        // The live conjunction can constant-fold to ⊥ outright (an
        // assertion pushed against its own negation): there is nothing to
        // encode, and the ground analysis below would not cover the
        // folded-away roots. Folding to ⊥ is the only `mk_and` rule that
        // drops a distinct subterm, so past this point every root is
        // covered by the analyzed dual.
        if e_conj == self.tm.mk_false() {
            stats.translate_time = translate_start.elapsed();
            let core: Vec<AssertionId> = self.assertions.iter().map(|a| a.id).collect();
            let certificate = if self.options.certify {
                Some(self.certify_unsat(&core))
            } else {
                None
            };
            if span.is_recording() {
                sufsat_obs::event!(
                    "session.check.done",
                    outcome = "valid",
                    live = self.assertions.len(),
                    folded = true,
                );
            }
            return CheckResult {
                outcome: Outcome::Valid,
                stats,
                certificate,
                unsat_core: Some(core),
                reencoded: None,
            };
        }

        let neg = self.tm.mk_not(e_conj);
        let polarity = analyze_polarity(&self.tm, neg);
        let analysis = SepAnalysis::new(&self.tm, neg, polarity.p_vars());
        stats.sep_predicates = analysis.total_sep_predicates();
        stats.classes = analysis.classes.len();
        stats.max_class_range = analysis.classes.iter().map(|c| c.range).max().unwrap_or(0);
        stats.total_class_range = analysis.classes.iter().map(|c| c.range).sum();
        stats.p_fun_fraction =
            analyze_polarity(&self.tm, query).p_fun_app_fraction(&self.tm, query);

        // Sound fallback: live conjunction not hostable under the
        // committed encoding decisions → rebuild from scratch.
        let mut reencoded = None;
        if let Err(reason) = self.enc.check_compatible(&analysis) {
            self.rebuild(reason);
            reencoded = Some(reason);
        }

        let encode_options = EncodeOptions {
            mode: self.options.mode,
            cnf: self.options.cnf,
            trans_budget: self.options.trans_budget,
            deadline: self.options.timeout.map(|t| translate_start + t),
            cancel: self.options.cancel.clone(),
        };
        let delta = match self.enc.extend(&self.tm, &analysis, &elim_roots, &encode_options) {
            Ok(delta) => delta,
            Err(err) => {
                stats.translate_time = translate_start.elapsed();
                let reason = if err.cancelled {
                    StopReason::Cancelled
                } else if err.timed_out {
                    StopReason::Timeout
                } else {
                    StopReason::TranslationBudget
                };
                return CheckResult {
                    outcome: Outcome::Unknown(reason),
                    stats,
                    certificate: None,
                    unsat_core: None,
                    reencoded,
                };
            }
        };
        stats.sd_classes = delta.stats.sd_classes;
        stats.eij_classes = delta.stats.eij_classes;
        stats.pred_vars = delta.stats.pred_vars;
        stats.trans_clauses = delta.stats.new_trans;

        // Transitivity clauses are universally valid: load them
        // permanently, unguarded, exactly once.
        self.loader
            .load(self.enc.circuit(), &[], &delta.new_trans, &mut self.solver);

        // Guard every live assertion not yet guarded in this generation.
        let mut acts: Vec<Lit> = Vec::with_capacity(self.assertions.len());
        let mut fresh_roots = 0usize;
        for (i, assertion) in self.assertions.iter_mut().enumerate() {
            let reusable = assertion.generation == self.generation && assertion.act.is_some();
            let act = if reusable {
                self.stats.reused_roots += 1;
                assertion.act.expect("checked above")
            } else {
                let act = self.solver.new_var().positive();
                // Activation literals are assumed on every check and retired
                // by a unit clause on pop: they must survive preprocessing.
                self.solver.set_frozen(act.var(), true);
                self.loader
                    .load_guarded(self.enc.circuit(), act, delta.roots[i], &mut self.solver);
                assertion.act = Some(act);
                assertion.generation = self.generation;
                self.stats.fresh_roots += 1;
                fresh_roots += 1;
                act
            };
            acts.push(act);
        }
        stats.cnf_clauses = self.solver.stats().original_clauses;

        // Preprocess only on the base frame: push/pop guards clauses with
        // activation literals whose eventual retirement would invalidate
        // elimination bookkeeping wholesale, so scoped sessions skip it.
        if self.options.preprocess && self.frames.is_empty() {
            // Re-running occurrence-list construction and subsumption over
            // an unchanged clause arena is pure overhead: only preprocess
            // when clauses were loaded since the last pass.
            let loaded = self.solver.stats().original_clauses;
            if self.preprocessed_at != Some(loaded) {
                self.solver.set_cancel_token(self.options.cancel.clone());
                let _ = self.solver.preprocess();
                self.preprocessed_at = Some(self.solver.stats().original_clauses);
            }
        }
        stats.translate_time = translate_start.elapsed();

        let before = self.solver.stats().clone();
        self.solver.set_conflict_budget(self.options.conflict_budget);
        self.solver.set_timeout(self.options.timeout);
        self.solver.set_cancel_token(self.options.cancel.clone());
        self.solver.set_progress_handle(self.options.progress.clone());
        let result = self.solver.solve_with_assumptions(&acts);
        let after = self.solver.stats().clone();
        stats.sat_time = after.solve_time - before.solve_time;
        stats.conflict_clauses = after.conflicts - before.conflicts;
        stats.decisions = after.decisions - before.decisions;
        stats.propagations = after.propagations - before.propagations;
        self.stats.conflicts = self.discarded.0 + after.conflicts;
        self.stats.decisions = self.discarded.1 + after.decisions;
        self.stats.propagations = self.discarded.2 + after.propagations;

        let mut certificate = None;
        let mut unsat_core = None;
        let outcome = match result {
            SolveResult::Unsat => {
                let core = self.extract_core(&acts);
                if self.options.certify {
                    certificate = Some(self.certify_unsat(&core));
                }
                unsat_core = Some(core);
                Outcome::Valid
            }
            SolveResult::Sat => {
                match try_decode_model_parts(&delta.decode, self.loader.map(), &self.solver) {
                    Ok(cex) => self.confirm_model(cex, &originals, &elim_roots, &mut certificate),
                    Err(err) => {
                        if self.options.certify {
                            certificate = Some(Certificate::Counterexample {
                                decoded: false,
                                falsifies_separation: false,
                                falsifies_original: false,
                            });
                            Outcome::Invalid(SepAssignment::default())
                        } else {
                            panic!("{err}");
                        }
                    }
                }
            }
            SolveResult::Unknown(Interrupt::ConflictBudget) => {
                Outcome::Unknown(StopReason::ConflictBudget)
            }
            SolveResult::Unknown(Interrupt::Timeout) => Outcome::Unknown(StopReason::Timeout),
            SolveResult::Unknown(Interrupt::Cancelled) => Outcome::Unknown(StopReason::Cancelled),
        };
        // Budgets are per-check: clear them so core minimization and later
        // checks start fresh.
        self.solver.set_conflict_budget(None);
        self.solver.set_timeout(None);
        self.solver.set_cancel_token(None);

        if span.is_recording() {
            sufsat_obs::event!(
                "session.check.done",
                outcome = outcome_label(&outcome),
                live = self.assertions.len(),
                fresh_roots = fresh_roots,
                reused_roots = self.assertions.len() - fresh_roots,
                reencoded = reencoded.is_some(),
                new_trans = delta.stats.new_trans,
                dedup_trans = delta.stats.dedup_trans,
                conflicts = stats.conflict_clauses,
                core = unsat_core.as_ref().map_or(0, Vec::len),
            );
        }
        CheckResult {
            outcome,
            stats,
            certificate,
            unsat_core,
            reencoded,
        }
    }

    /// Maps the solver's failed assumptions back to assertion ids,
    /// minimizing within the configured budget first.
    fn extract_core(&mut self, acts: &[Lit]) -> Vec<AssertionId> {
        let mut failed = self.solver.failed_assumptions().to_vec();
        if self.core_minimize_budget > 0 && failed.len() > 1 {
            let (minimal, ms) =
                minimize_assumptions(&mut self.solver, &failed, self.core_minimize_budget);
            self.stats.core_solves += ms.solves;
            failed = minimal;
        }
        let by_act: HashMap<Lit, AssertionId> = acts
            .iter()
            .zip(&self.assertions)
            .map(|(&act, a)| (act, a.id))
            .collect();
        let mut core: Vec<AssertionId> = failed
            .iter()
            .filter_map(|l| by_act.get(l).copied())
            .collect();
        core.sort_unstable();
        core.dedup();
        core
    }

    /// Certifies an unsat answer by a one-shot certified replay of the
    /// core: `decide(¬(core conjunction))` with proof logging. Evidence is
    /// thereby independent of the activation-literal machinery (and
    /// validates the extracted core as genuinely sufficient).
    fn certify_unsat(&mut self, core: &[AssertionId]) -> Certificate {
        let core_terms: Vec<TermId> = self
            .assertions
            .iter()
            .filter(|a| core.contains(&a.id))
            .map(|a| a.original)
            .collect();
        let core_conj = self.tm.mk_and_many(&core_terms);
        let replay_query = self.tm.mk_not(core_conj);
        let mut opts = self.options.clone();
        opts.certify = true;
        let replay = decide(&mut self.tm, replay_query, &opts);
        match replay.certificate {
            Some(cert) if replay.outcome.is_valid() => cert,
            // Replay disagreed or was inconclusive: report non-holding
            // evidence rather than panicking, so fuzzers can shrink it.
            _ => Certificate::Refutation {
                steps: 0,
                checked: false,
            },
        }
    }

    /// Replays a decoded model against the live assertions, mirroring
    /// `decide`'s soundness checks for the negated-conjunction query.
    fn confirm_model(
        &mut self,
        cex: SepAssignment,
        originals: &[TermId],
        elim_roots: &[TermId],
        certificate: &mut Option<Certificate>,
    ) -> Outcome {
        let satisfies_separation = elim_roots.iter().all(|&e| cex.evaluate(&self.tm, e));
        if self.options.certify {
            let interp = interpretation_from_instances(
                &self.tm,
                self.elim.fun_instances(),
                self.elim.pred_instances(),
                &cex,
            );
            let satisfies_original = originals
                .iter()
                .all(|&o| eval(&self.tm, o, &interp) == Value::Bool(true));
            // "Falsifies" speaks about the implicit query ¬conjunction:
            // satisfying every assertion falsifies its negation.
            *certificate = Some(Certificate::Counterexample {
                decoded: true,
                falsifies_separation: satisfies_separation,
                falsifies_original: satisfies_original,
            });
        } else {
            assert!(
                satisfies_separation,
                "internal soundness bug: decoded model does not satisfy every live \
                 separation formula: {cex:?}"
            );
            if cfg!(debug_assertions) {
                let interp = interpretation_from_instances(
                    &self.tm,
                    self.elim.fun_instances(),
                    self.elim.pred_instances(),
                    &cex,
                );
                assert!(
                    originals
                        .iter()
                        .all(|&o| eval(&self.tm, o, &interp) == Value::Bool(true)),
                    "internal soundness bug: decoded model does not satisfy every live \
                     original assertion: {cex:?}"
                );
            }
        }
        Outcome::Invalid(cex)
    }
}

/// Splits `t` into conjuncts by negation normal form at the Boolean top:
/// `a ∧ b` yields both sides, `¬(a ∨ b)` yields `¬a` and `¬b`, `¬(a ⇒ b)`
/// yields `a` and `¬b`, and double negations cancel. Everything else is a
/// single conjunct. Asserting the result set is equivalent to asserting
/// `t`; clients use this to feed one formula into a [`Session`] as
/// separately retractable (and separately core-attributable) assertions.
pub fn conjuncts_of(tm: &mut TermManager, t: TermId) -> Vec<TermId> {
    let mut out = Vec::new();
    let mut stack = vec![t];
    while let Some(cur) = stack.pop() {
        match tm.term(cur).clone() {
            Term::And(a, b) => {
                stack.push(b);
                stack.push(a);
            }
            Term::Not(inner) => match tm.term(inner).clone() {
                Term::Or(a, b) => {
                    let (na, nb) = (tm.mk_not(a), tm.mk_not(b));
                    stack.push(nb);
                    stack.push(na);
                }
                Term::Implies(a, b) => {
                    let nb = tm.mk_not(b);
                    stack.push(nb);
                    stack.push(a);
                }
                Term::Not(x) => stack.push(x),
                _ => out.push(cur),
            },
            _ => out.push(cur),
        }
    }
    out
}

fn reencode_label(reason: ReencodeReason) -> &'static str {
    match reason {
        ReencodeReason::DomainMerge => "domain_merge",
        ReencodeReason::EqOnlyLost => "eq_only_lost",
        ReencodeReason::RangeOverflow => "range_overflow",
        ReencodeReason::PolarityFlip => "polarity_flip",
        ReencodeReason::OffsetOverflow => "offset_overflow",
        ReencodeReason::PLaneOverflow => "p_lane_overflow",
    }
}

fn outcome_label(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Valid => "valid",
        Outcome::Invalid(_) => "invalid",
        Outcome::Unknown(StopReason::TranslationBudget) => "unknown:translation_budget",
        Outcome::Unknown(StopReason::ConflictBudget) => "unknown:conflict_budget",
        Outcome::Unknown(StopReason::Timeout) => "unknown:timeout",
        Outcome::Unknown(StopReason::Cancelled) => "unknown:cancelled",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_core::EncodingMode;

    fn modes() -> Vec<EncodingMode> {
        vec![
            EncodingMode::Sd,
            EncodingMode::Eij,
            EncodingMode::Hybrid(0),
            EncodingMode::Hybrid(700),
            EncodingMode::FixedHybrid,
        ]
    }

    /// The session's verdict on the conjunction must equal
    /// `decide(¬conjunction)` — the agreement the fuzz oracle enforces.
    fn agrees_with_decide(session: &mut Session, label: &str) {
        let originals: Vec<TermId> = session.assertions.iter().map(|a| a.original).collect();
        let conj = session.tm.mk_and_many(&originals);
        let query = session.tm.mk_not(conj);
        let reference = decide(&mut session.tm, query, &session.options.clone());
        let incremental = session.check();
        assert_eq!(
            incremental.outcome.is_valid(),
            reference.outcome.is_valid(),
            "{label}: session and decide disagree"
        );
        assert_eq!(
            matches!(incremental.outcome, Outcome::Invalid(_)),
            matches!(reference.outcome, Outcome::Invalid(_)),
            "{label}: session and decide disagree on satisfiability"
        );
    }

    #[test]
    fn empty_session_is_satisfiable() {
        let mut session = Session::default();
        assert!(matches!(session.check().outcome, Outcome::Invalid(_)));
    }

    #[test]
    fn push_pop_retracts_unsat_to_sat() {
        for mode in modes() {
            let mut session = Session::new(DecideOptions::with_mode(mode));
            let tm = session.term_manager_mut();
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let xy = tm.mk_lt(x, y);
            let yx = tm.mk_lt(y, x);
            session.assert(xy);
            assert!(
                matches!(session.check().outcome, Outcome::Invalid(_)),
                "{mode:?}"
            );
            session.push();
            session.assert(yx);
            let r = session.check();
            assert!(r.outcome.is_valid(), "{mode:?}");
            session.pop();
            assert!(
                matches!(session.check().outcome, Outcome::Invalid(_)),
                "{mode:?}: pop must retract the contradiction"
            );
        }
    }

    #[test]
    fn functional_consistency_across_assertions() {
        // f(x) ≠ f(y) in one frame, x = y in a later one: unsat only
        // because the elimination chains the instances across assertions.
        let mut session = Session::default();
        let tm = session.term_manager_mut();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let eq_f = tm.mk_eq(fx, fy);
        let neq_f = tm.mk_not(eq_f);
        let eq_xy = tm.mk_eq(x, y);
        session.assert(neq_f);
        assert!(matches!(session.check().outcome, Outcome::Invalid(_)));
        session.push();
        session.assert(eq_xy);
        assert!(session.check().outcome.is_valid());
        session.pop();
        assert!(matches!(session.check().outcome, Outcome::Invalid(_)));
    }

    #[test]
    fn unsat_core_names_the_contradiction() {
        let mut session = Session::default();
        let tm = session.term_manager_mut();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let xy = tm.mk_lt(x, y);
        let yx = tm.mk_lt(y, x);
        let zz = tm.mk_le(z, z);
        let a_irrelevant = session.assert(zz);
        let a_xy = session.assert(xy);
        let a_yx = session.assert(yx);
        let r = session.check();
        assert!(r.outcome.is_valid());
        let core = r.unsat_core.expect("unsat answers carry a core");
        assert!(core.contains(&a_xy) && core.contains(&a_yx), "{core:?}");
        assert!(!core.contains(&a_irrelevant), "minimized core: {core:?}");
    }

    #[test]
    fn certification_covers_both_directions() {
        let mut options = DecideOptions::default();
        options.certify = true;
        let mut session = Session::new(options);
        let tm = session.term_manager_mut();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let eq_xy = tm.mk_eq(x, y);
        let fneq = tm.mk_ne(fx, fy);
        session.assert(fneq);
        let sat = session.check();
        assert!(matches!(sat.outcome, Outcome::Invalid(_)));
        assert!(sat.certificate.expect("certify requested").holds());
        session.push();
        session.assert(eq_xy);
        let unsat = session.check();
        assert!(unsat.outcome.is_valid());
        assert!(unsat.certificate.expect("certify requested").holds());
    }

    #[test]
    fn repeated_checks_reuse_encodings() {
        let mut session = Session::default();
        let tm = session.term_manager_mut();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let xy = tm.mk_lt(x, y);
        let yz = tm.mk_lt(y, z);
        session.assert(xy);
        let first = session.check();
        assert!(matches!(first.outcome, Outcome::Invalid(_)));
        session.push();
        session.assert(yz);
        let second = session.check();
        assert!(matches!(second.outcome, Outcome::Invalid(_)));
        assert_eq!(session.stats().reencodes, 0, "no fallback needed");
        // Third check re-solves without any new roots.
        let third = session.check();
        assert!(matches!(third.outcome, Outcome::Invalid(_)));
        assert_eq!(session.stats().fresh_roots, 2);
        assert!(session.stats().reused_roots >= 2);
    }

    #[test]
    fn polarity_flip_falls_back_to_reencode_soundly() {
        // Asserting f(x) ≠ f(y) makes the equation *positive* in the
        // analyzed dual, so f's instances land in V_p on the first check;
        // the later inequality over f's instance flips the classification
        // and must force a re-encode, not a wrong answer.
        let mut session = Session::default();
        let tm = session.term_manager_mut();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let peq = tm.mk_eq(fx, fy);
        let pne = tm.mk_not(peq);
        session.assert(pne);
        assert!(matches!(session.check().outcome, Outcome::Invalid(_)));
        let tm = session.term_manager_mut();
        let flt = tm.mk_lt(fx, y);
        session.assert(flt);
        let r = session.check();
        assert!(matches!(r.outcome, Outcome::Invalid(_)));
        assert!(r.reencoded.is_some(), "polarity flip must trigger fallback");
        agrees_with_decide(&mut session, "after polarity flip");
    }

    #[test]
    fn mixed_interleavings_agree_with_decide() {
        for mode in modes() {
            let mut session = Session::new(DecideOptions::with_mode(mode));
            let tm = session.term_manager_mut();
            let p = tm.declare_pred("p", 1);
            let x = tm.int_var("x");
            let y = tm.int_var("y");
            let z = tm.int_var("z");
            let px = tm.mk_papp(p, vec![x]);
            let py = tm.mk_papp(p, vec![y]);
            let eq_xy = tm.mk_eq(x, y);
            let not_iff = {
                let iff = tm.mk_iff(px, py);
                tm.mk_not(iff)
            };
            let yz = tm.mk_lt(y, z);
            session.assert(eq_xy);
            agrees_with_decide(&mut session, "eq only");
            session.push();
            session.assert(not_iff);
            agrees_with_decide(&mut session, "predicate inconsistency");
            session.pop();
            session.assert(yz);
            agrees_with_decide(&mut session, "after pop, new ordering");
        }
    }
}
