//! Incremental bounded model checking on one persistent session.
//!
//! [`sufsat_core::check_bounded`] discharges every depth's obligation
//! `init(s₀) ⇒ property(sₖ)` with an independent [`sufsat_core::decide`]
//! call, rebuilding encoder and solver each time although consecutive
//! obligations share the initial-state constraint and most of the
//! unrolled datapath. The incremental mode here asserts `init` once,
//! then per depth pushes `¬property(sₖ)` in its own scope, checks, and
//! pops — so the session's committed encodings, transitivity clauses and
//! the solver's learnt clauses carry across depths. The per-depth
//! verdicts are the same ([`Outcome::Valid`] ⇔ `init ∧ ¬propₖ` unsat ⇔
//! the obligation is valid), and the obligations themselves are built by
//! the *same* [`substitute_state`] unroller the from-scratch path uses.

use std::collections::HashMap;
use std::time::Duration;

use sufsat_core::{
    substitute_state, BmcResult, DecideOptions, Outcome, TransitionSystem,
};
use sufsat_suf::{Sort, TermId, TermManager};

use crate::session::Session;

/// Measurements of one incremental BMC run.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct IncrementalBmcReport {
    /// Depth checks performed (≤ bound + 1).
    pub checks: u64,
    /// Total SAT conflicts across all depths, including any solvers
    /// discarded by re-encoding fallbacks.
    pub conflicts: u64,
    /// Total SAT decisions across all depths.
    pub decisions: u64,
    /// Total SAT propagations across all depths.
    pub propagations: u64,
    /// Re-encoding fallbacks taken.
    pub reencodes: u64,
    /// Assertion encodings reused from earlier depths.
    pub reused_roots: u64,
    /// Assertion encodings built fresh.
    pub fresh_roots: u64,
    /// Total translation time (elimination, analysis, encoding, loading).
    pub translate_time: Duration,
    /// Total SAT time.
    pub sat_time: Duration,
    /// CNF clauses in the persistent solver after the last depth.
    pub cnf_clauses: u64,
}

/// [`sufsat_core::check_bounded`] on a persistent session (see the module
/// docs). Verdict-equivalent to the from-scratch path.
///
/// # Panics
///
/// Panics under the same conditions as [`sufsat_core::check_bounded`]
/// (misaligned or mis-sorted system components).
pub fn check_bounded_incremental(
    tm: &mut TermManager,
    system: &TransitionSystem,
    bound: usize,
    options: &DecideOptions,
) -> BmcResult {
    check_bounded_incremental_report(tm, system, bound, options).0
}

/// [`check_bounded_incremental`], additionally reporting the run's cost
/// counters for comparison against
/// [`sufsat_core::check_bounded_with_stats`].
pub fn check_bounded_incremental_report(
    tm: &mut TermManager,
    system: &TransitionSystem,
    bound: usize,
    options: &DecideOptions,
) -> (BmcResult, IncrementalBmcReport) {
    assert_eq!(
        system.state.len(),
        system.next.len(),
        "state and next must align"
    );
    for &s in system.state.iter().chain(&system.inputs) {
        assert_eq!(tm.sort(s), Sort::Int, "state and inputs must be integers");
    }
    assert_eq!(tm.sort(system.init), Sort::Bool, "init must be Boolean");
    assert_eq!(
        tm.sort(system.property),
        Sort::Bool,
        "property must be Boolean"
    );

    let span = sufsat_obs::span_with!("bmc.incremental", bound = bound);
    let owned = std::mem::replace(tm, TermManager::new());
    let mut session = Session::with_term_manager(owned, options.clone());
    session.assert(system.init);

    let mut current: HashMap<TermId, TermId> =
        system.state.iter().map(|&s| (s, s)).collect();
    let mut report = IncrementalBmcReport::default();
    let mut result = BmcResult::Bounded(bound);

    for step in 0..=bound {
        // Obligation init(s₀) ⇒ property(s_step), refuted as
        // init ∧ ¬property(s_step) in a scope of its own.
        let prop_now =
            substitute_state(session.term_manager_mut(), system.property, system, &current, step);
        let neg_prop = session.term_manager_mut().mk_not(prop_now);
        session.push();
        session.assert(neg_prop);
        let check = session.check();
        session.pop();

        report.checks += 1;
        report.translate_time += check.stats.translate_time;
        report.sat_time += check.stats.sat_time;
        report.cnf_clauses = check.stats.cnf_clauses;
        sufsat_obs::event!(
            "bmc.incremental.depth",
            step = step,
            conflicts = check.stats.conflict_clauses,
            reencoded = check.reencoded.is_some(),
        );
        match check.outcome {
            Outcome::Valid => {}
            Outcome::Invalid(assignment) => {
                result = BmcResult::CounterexampleAt { step, assignment };
                break;
            }
            Outcome::Unknown(reason) => {
                result = BmcResult::Unknown { step, reason };
                break;
            }
        }
        if step == bound {
            break;
        }
        // Advance: s_{k+1} = next(s_k, fresh inputs).
        let next_state: Vec<TermId> = system
            .next
            .iter()
            .map(|&n| substitute_state(session.term_manager_mut(), n, system, &current, step))
            .collect();
        for (s, n) in system.state.iter().zip(next_state) {
            current.insert(*s, n);
        }
    }

    let stats = session.stats();
    report.conflicts = stats.conflicts;
    report.decisions = stats.decisions;
    report.propagations = stats.propagations;
    report.reencodes = stats.reencodes;
    report.reused_roots = stats.reused_roots;
    report.fresh_roots = stats.fresh_roots;
    if span.is_recording() {
        sufsat_obs::event!(
            "bmc.incremental.done",
            checks = report.checks,
            conflicts = report.conflicts,
            reencodes = report.reencodes,
            reused_roots = report.reused_roots,
            fresh_roots = report.fresh_roots,
        );
    }
    *tm = session.into_term_manager();
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_core::check_bounded;

    fn verdicts_match(a: &BmcResult, b: &BmcResult) -> bool {
        match (a, b) {
            (BmcResult::Bounded(x), BmcResult::Bounded(y)) => x == y,
            (
                BmcResult::CounterexampleAt { step: x, .. },
                BmcResult::CounterexampleAt { step: y, .. },
            ) => x == y,
            (BmcResult::Unknown { step: x, .. }, BmcResult::Unknown { step: y, .. }) => x == y,
            _ => false,
        }
    }

    #[test]
    fn matches_from_scratch_on_a_safe_system() {
        // Saturating toggle between lo and hi: property holds at every
        // depth; verdicts must match check_bounded exactly.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let lo = tm.int_var("lo");
        let hi = tm.int_var("hi");
        let at_lo = tm.mk_eq(x, lo);
        let next = tm.mk_ite_int(at_lo, hi, lo);
        let at_hi = tm.mk_eq(x, hi);
        let property = tm.mk_or(at_lo, at_hi);
        let system = TransitionSystem {
            state: vec![x],
            next: vec![next],
            inputs: vec![],
            init: at_lo,
            property,
        };
        let options = DecideOptions::default();
        let reference = check_bounded(&mut tm.clone(), &system, 5, &options);
        let (incremental, report) =
            check_bounded_incremental_report(&mut tm, &system, 5, &options);
        assert!(verdicts_match(&reference, &incremental));
        assert_eq!(report.checks, 6);
    }

    #[test]
    fn counterexample_depth_matches_from_scratch() {
        // x' = x + 1 from x = base; x < base + 3 fails exactly at step 3.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let base = tm.int_var("base");
        let next = tm.mk_succ(x);
        let init = tm.mk_eq(x, base);
        let limit = tm.mk_offset(base, 3);
        let property = tm.mk_lt(x, limit);
        let system = TransitionSystem {
            state: vec![x],
            next: vec![next],
            inputs: vec![],
            init,
            property,
        };
        let options = DecideOptions::default();
        let reference = check_bounded(&mut tm.clone(), &system, 10, &options);
        let incremental = check_bounded_incremental(&mut tm, &system, 10, &options);
        assert!(verdicts_match(&reference, &incremental));
        assert!(matches!(
            incremental,
            BmcResult::CounterexampleAt { step: 3, .. }
        ));
    }

    #[test]
    fn uf_datapath_matches_from_scratch() {
        // State through an uninterpreted ALU; the unsound property is
        // refuted at step 1 on both paths.
        let mut tm = TermManager::new();
        let alu = tm.declare_fun("alu", 1);
        let x = tm.int_var("x");
        let seed = tm.int_var("seed");
        let next = tm.mk_app(alu, vec![x]);
        let init = tm.mk_eq(x, seed);
        let property = tm.mk_eq(x, seed);
        let system = TransitionSystem {
            state: vec![x],
            next: vec![next],
            inputs: vec![],
            init,
            property,
        };
        let options = DecideOptions::default();
        let reference = check_bounded(&mut tm.clone(), &system, 4, &options);
        let incremental = check_bounded_incremental(&mut tm, &system, 4, &options);
        assert!(verdicts_match(&reference, &incremental));
    }

    #[test]
    fn inputs_are_freshened_per_step() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let floor = tm.int_var("floor");
        let inp = tm.int_var("inp");
        let grow = tm.mk_lt(floor, inp);
        let inc = tm.mk_succ(x);
        let next = tm.mk_ite_int(grow, inc, x);
        let init = tm.mk_eq(x, floor);
        let property = tm.mk_le(floor, x);
        let system = TransitionSystem {
            state: vec![x],
            next: vec![next],
            inputs: vec![inp],
            init,
            property,
        };
        let options = DecideOptions::default();
        let (result, report) =
            check_bounded_incremental_report(&mut tm, &system, 5, &options);
        assert!(matches!(result, BmcResult::Bounded(5)));
        assert!(report.reused_roots > 0, "init must be reused across depths");
    }
}
