//! Append-only persistent cache log.
//!
//! # On-disk format
//!
//! ```text
//! magic: b"SUFCACH1"            (8 bytes)
//! record*:
//!   len   u32 LE                payload length
//!   crc   u32 LE                CRC-32 (IEEE) of the payload
//!   payload:
//!     fingerprint               16 bytes (two u64 LE)
//!     canon_len  u32 LE
//!     canon      [u8; canon_len]
//!     verdict    u8              0 = valid, 1 = invalid
//!     int_count  u32 LE
//!     (idx u32 LE, value i64 LE) * int_count
//!     bool_count u32 LE
//!     (idx u32 LE, value u8)    * bool_count
//!     digest     8 * u64 LE      (see [`StatsDigest`])
//! ```
//!
//! The log is append-only: a later record for the same fingerprint wins.
//! Loading stops at the first damaged record (length overruns the file,
//! or CRC mismatch) and truncates the file back to the last good offset,
//! so a crash mid-append costs at most the torn record. Compaction
//! rewrites the log keeping only the last record per fingerprint, via a
//! temp file + atomic rename.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::canon::Fingerprint;
use crate::{CacheValue, CachedVerdict, StatsDigest};

const MAGIC: &[u8; 8] = b"SUFCACH1";

/// One decoded log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    pub fingerprint: Fingerprint,
    pub canon: Vec<u8>,
    pub value: CacheValue,
}

/// Outcome of loading a log file.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Records decoded (before last-wins dedup).
    pub records: usize,
    /// Distinct fingerprints after last-wins dedup.
    pub unique: usize,
    /// Bytes dropped from a torn or corrupt tail (0 for a clean log).
    pub truncated_bytes: u64,
    /// File size after any truncation.
    pub file_bytes: u64,
}

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn encode_payload(fp: Fingerprint, canon: &[u8], value: &CacheValue) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 4 + canon.len() + 1 + 8 + 64);
    out.extend_from_slice(&fp.to_bytes());
    out.extend_from_slice(&(canon.len() as u32).to_le_bytes());
    out.extend_from_slice(canon);
    out.push(match value.verdict {
        CachedVerdict::Valid => 0,
        CachedVerdict::Invalid => 1,
    });
    out.extend_from_slice(&(value.int_model.len() as u32).to_le_bytes());
    for &(idx, v) in &value.int_model {
        out.extend_from_slice(&idx.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(value.bool_model.len() as u32).to_le_bytes());
    for &(idx, v) in &value.bool_model {
        out.extend_from_slice(&idx.to_le_bytes());
        out.push(v as u8);
    }
    for field in value.digest.as_fields() {
        out.extend_from_slice(&field.to_le_bytes());
    }
    out
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode_payload(payload: &[u8]) -> Option<LogRecord> {
    let mut cur = Cursor { data: payload, pos: 0 };
    let fingerprint = Fingerprint::from_bytes(cur.take(16)?.try_into().unwrap());
    let canon_len = cur.u32()? as usize;
    let canon = cur.take(canon_len)?.to_vec();
    let verdict = match cur.u8()? {
        0 => CachedVerdict::Valid,
        1 => CachedVerdict::Invalid,
        _ => return None,
    };
    let int_count = cur.u32()? as usize;
    // Guard against absurd counts from a corrupt-but-CRC-lucky record.
    if int_count > payload.len() {
        return None;
    }
    let mut int_model = Vec::with_capacity(int_count);
    for _ in 0..int_count {
        int_model.push((cur.u32()?, cur.i64()?));
    }
    let bool_count = cur.u32()? as usize;
    if bool_count > payload.len() {
        return None;
    }
    let mut bool_model = Vec::with_capacity(bool_count);
    for _ in 0..bool_count {
        bool_model.push((cur.u32()?, cur.u8()? != 0));
    }
    let mut fields = [0u64; StatsDigest::FIELDS];
    for field in fields.iter_mut() {
        *field = cur.u64()?;
    }
    if cur.pos != payload.len() {
        return None;
    }
    Some(LogRecord {
        fingerprint,
        canon,
        value: CacheValue {
            verdict,
            int_model,
            bool_model,
            digest: StatsDigest::from_fields(fields),
        },
    })
}

/// The append handle plus load/compact entry points.
pub struct CacheLog {
    path: PathBuf,
    file: File,
}

impl CacheLog {
    /// Opens (creating if absent) the log at `path` for appending. The
    /// existing contents are scanned, a damaged tail is truncated away,
    /// and the surviving records are returned last-wins deduped.
    pub fn open(path: &Path) -> std::io::Result<(CacheLog, Vec<LogRecord>, LoadReport)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        let mut report = LoadReport::default();
        let mut records = Vec::new();
        let mut good_end: u64;

        if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
            // Empty or unrecognized: start fresh.
            report.truncated_bytes = data.len() as u64;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            good_end = MAGIC.len() as u64;
        } else {
            let mut pos = MAGIC.len();
            good_end = pos as u64;
            while pos + 8 <= data.len() {
                let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
                let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
                let Some(end) = pos.checked_add(8).and_then(|p| p.checked_add(len)) else {
                    break;
                };
                if end > data.len() {
                    break;
                }
                let payload = &data[pos + 8..end];
                if crc32(payload) != crc {
                    break;
                }
                let Some(record) = decode_payload(payload) else {
                    break;
                };
                records.push(record);
                pos = end;
                good_end = pos as u64;
            }
            report.truncated_bytes = data.len() as u64 - good_end;
            if report.truncated_bytes > 0 {
                file.set_len(good_end)?;
            }
        }

        file.seek(SeekFrom::Start(good_end))?;
        report.records = records.len();

        // Last record per fingerprint wins; preserve first-seen order.
        let mut last: HashMap<Fingerprint, usize> = HashMap::new();
        for (i, record) in records.iter().enumerate() {
            last.insert(record.fingerprint, i);
        }
        let mut deduped = Vec::with_capacity(last.len());
        for (i, record) in records.into_iter().enumerate() {
            if last[&record.fingerprint] == i {
                deduped.push(record);
            }
        }
        report.unique = deduped.len();
        report.file_bytes = good_end;

        Ok((CacheLog { path: path.to_path_buf(), file }, deduped, report))
    }

    /// Appends one record and flushes it to the OS.
    pub fn append(
        &mut self,
        fp: Fingerprint,
        canon: &[u8],
        value: &CacheValue,
    ) -> std::io::Result<()> {
        let payload = encode_payload(fp, canon, value);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.file.flush()
    }

    /// Rewrites the log keeping only `records`, via temp file + rename.
    /// Returns the compacted size in bytes.
    pub fn compact(&mut self, records: &[LogRecord]) -> std::io::Result<u64> {
        let tmp_path = self.path.with_extension("tmp");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(MAGIC)?;
        for record in records {
            let payload = encode_payload(record.fingerprint, &record.canon, &record.value);
            tmp.write_all(&(payload.len() as u32).to_le_bytes())?;
            tmp.write_all(&crc32(&payload).to_le_bytes())?;
            tmp.write_all(&payload)?;
        }
        tmp.sync_all()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path)?;
        // Reopen so future appends go to the new file.
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        let size = self.file.seek(SeekFrom::End(0))?;
        Ok(size)
    }

    /// Current size of the log file in bytes.
    pub fn size(&mut self) -> std::io::Result<u64> {
        self.file.seek(SeekFrom::End(0))
    }

    /// The path this log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read-only scan of a log file (for `sufsat cache inspect`): returns
/// the deduped records and a report, without opening for append or
/// truncating a damaged tail.
pub fn scan(path: &Path) -> std::io::Result<(Vec<LogRecord>, LoadReport)> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let mut report = LoadReport {
        file_bytes: data.len() as u64,
        ..LoadReport::default()
    };
    let mut records = Vec::new();
    if data.len() >= MAGIC.len() && &data[..MAGIC.len()] == MAGIC {
        let mut pos = MAGIC.len();
        let mut good_end = pos;
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            let Some(end) = pos.checked_add(8).and_then(|p| p.checked_add(len)) else {
                break;
            };
            if end > data.len() || crc32(&data[pos + 8..end]) != crc {
                break;
            }
            let Some(record) = decode_payload(&data[pos + 8..end]) else {
                break;
            };
            records.push(record);
            pos = end;
            good_end = pos;
        }
        report.truncated_bytes = (data.len() - good_end) as u64;
    } else {
        report.truncated_bytes = data.len() as u64;
    }
    report.records = records.len();
    let mut last: HashMap<Fingerprint, usize> = HashMap::new();
    for (i, record) in records.iter().enumerate() {
        last.insert(record.fingerprint, i);
    }
    let mut deduped = Vec::with_capacity(last.len());
    for (i, record) in records.into_iter().enumerate() {
        if last[&record.fingerprint] == i {
            deduped.push(record);
        }
    }
    report.unique = deduped.len();
    Ok((deduped, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(n: i64) -> CacheValue {
        CacheValue {
            verdict: if n % 2 == 0 { CachedVerdict::Valid } else { CachedVerdict::Invalid },
            int_model: vec![(0, n), (1, -n)],
            bool_model: vec![(0, n % 2 == 0)],
            digest: StatsDigest::default(),
        }
    }

    fn fp(n: u64) -> Fingerprint {
        Fingerprint(n, n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    #[test]
    fn records_round_trip() {
        let dir = std::env::temp_dir().join(format!("sufsat-cache-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.log");
        let _ = std::fs::remove_file(&path);

        {
            let (mut log, records, report) = CacheLog::open(&path).unwrap();
            assert!(records.is_empty());
            assert_eq!(report.truncated_bytes, 0);
            for n in 0..5 {
                log.append(fp(n), format!("canon-{n}").as_bytes(), &value(n as i64)).unwrap();
            }
            // Overwrite fingerprint 2: the later record must win.
            log.append(fp(2), b"canon-2", &value(99)).unwrap();
        }

        let (_log, records, report) = CacheLog::open(&path).unwrap();
        assert_eq!(report.records, 6);
        assert_eq!(report.unique, 5);
        assert_eq!(report.truncated_bytes, 0);
        let rec2 = records.iter().find(|r| r.fingerprint == fp(2)).unwrap();
        assert_eq!(rec2.value, value(99));
        let rec0 = records.iter().find(|r| r.fingerprint == fp(0)).unwrap();
        assert_eq!(rec0.canon, b"canon-0");
        assert_eq!(rec0.value, value(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_loads_cleanly() {
        let dir = std::env::temp_dir().join(format!("sufsat-cache-tt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.log");
        let _ = std::fs::remove_file(&path);

        {
            let (mut log, _, _) = CacheLog::open(&path).unwrap();
            for n in 0..4 {
                log.append(fp(n), b"payload", &value(n as i64)).unwrap();
            }
        }
        // Tear the tail: chop 5 bytes off the final record.
        let len = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(len - 5).unwrap();
        drop(file);

        let (mut log, records, report) = CacheLog::open(&path).unwrap();
        assert_eq!(records.len(), 3, "only the torn record is lost");
        assert!(report.truncated_bytes > 0);
        // The log stays appendable after recovery.
        log.append(fp(9), b"after", &value(9)).unwrap();
        drop(log);
        let (_, records, report) = CacheLog::open(&path).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(report.truncated_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flipped_tail_is_dropped() {
        let dir = std::env::temp_dir().join(format!("sufsat-cache-bf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.log");
        let _ = std::fs::remove_file(&path);

        let second_starts;
        {
            let (mut log, _, _) = CacheLog::open(&path).unwrap();
            log.append(fp(1), b"first", &value(1)).unwrap();
            second_starts = log.size().unwrap();
            log.append(fp(2), b"second", &value(2)).unwrap();
        }
        // Flip one payload bit inside the second record.
        let mut data = std::fs::read(&path).unwrap();
        let idx = second_starts as usize + 8 + 3;
        data[idx] ^= 0x40;
        std::fs::write(&path, &data).unwrap();

        let (_, records, report) = CacheLog::open(&path).unwrap();
        assert_eq!(records.len(), 1, "crc catches the flip");
        assert_eq!(records[0].fingerprint, fp(1));
        assert!(report.truncated_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_keeps_one_record_per_fingerprint() {
        let dir = std::env::temp_dir().join(format!("sufsat-cache-cp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.log");
        let _ = std::fs::remove_file(&path);

        {
            let (mut log, _, _) = CacheLog::open(&path).unwrap();
            for round in 0..10 {
                for n in 0..3 {
                    log.append(fp(n), b"same", &value(round)).unwrap();
                }
            }
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let (mut log, records, report) = CacheLog::open(&path).unwrap();
        assert_eq!(report.records, 30);
        assert_eq!(records.len(), 3);
        let after = log.compact(&records).unwrap();
        assert!(after < before, "compaction shrinks ({after} vs {before})");
        drop(log);
        let (_, records, report) = CacheLog::open(&path).unwrap();
        assert_eq!(report.records, 3);
        assert_eq!(records.len(), 3);
        for record in &records {
            assert_eq!(record.value, value(9), "last round's value survived");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unrecognized_file_is_reset() {
        let dir = std::env::temp_dir().join(format!("sufsat-cache-ur-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.log");
        std::fs::write(&path, b"not a cache log at all").unwrap();
        let (mut log, records, report) = CacheLog::open(&path).unwrap();
        assert!(records.is_empty());
        assert!(report.truncated_bytes > 0);
        log.append(fp(1), b"x", &value(1)).unwrap();
        drop(log);
        let (_, records, _) = CacheLog::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
