//! The canonicalizer: a deterministic normal form for SUF formulas.
//!
//! Two formulas that differ only by symbol names (α-renaming) or by the
//! order of commutative connective arguments should land on the same
//! cache key. The canonical form achieves that with three passes over
//! the term DAG:
//!
//! 1. **Structural hashing** (bottom-up): every node gets a
//!    symbol-insensitive hash — symbols contribute only their kind, and
//!    the children of commutative connectives (`And`/`Or`/`Iff`/`Eq`)
//!    are combined in sorted order. Subtree size rides along as a
//!    tie-break strengthener.
//! 2. **Canonical traversal** (top-down): an iterative pre-order walk
//!    from the root that visits commutative children in structural-key
//!    order and numbers every *symbol* by first occurrence. Ties between
//!    structurally identical siblings fall back to intern order — that
//!    can only cost a cache hit, never soundness.
//! 3. **Serialization**: the DAG (not the tree — shared subterms are
//!    emitted once and referenced by node index, so canonical bytes stay
//!    linear in the DAG size) is written as a flat record stream in
//!    visit order.
//!
//! The 128-bit [`fingerprint`] is an in-tree hash of the canonical
//! bytes. Fingerprint quality only affects shard distribution and false
//! sharing: the store compares full canonical bytes on lookup, so a
//! colliding fingerprint is a forced miss, never a wrong answer.
//!
//! **Property**: canonically-equal formulas are equisatisfiable by
//! construction — the normal form only renames symbols (a bijection)
//! and reorders arguments of commutative connectives (a logical
//! no-op). The fuzz oracle's `cached` procedure cross-checks this on
//! every generated case.

use std::collections::HashMap;

use sufsat_suf::{BoolSym, FunSym, PredSym, Term, TermId, TermManager, VarSym};

/// A stable 128-bit cache key.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64, pub u64);

impl Fingerprint {
    /// Hex rendering, used in trace events and `cache inspect`.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }

    /// Little-endian byte rendering for the persistent log.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.0.to_le_bytes());
        out[8..].copy_from_slice(&self.1.to_le_bytes());
        out
    }

    /// Inverse of [`Fingerprint::to_bytes`].
    pub fn from_bytes(b: &[u8; 16]) -> Fingerprint {
        let lo = u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
        let hi = u64::from_le_bytes(b[8..].try_into().expect("8 bytes"));
        Fingerprint(lo, hi)
    }
}

/// The canonical form of one formula, plus the symbol bijection needed
/// to translate models between the original symbols and canonical
/// indices (in both directions).
#[derive(Debug, Clone)]
pub struct Canonical {
    /// The serialized normal form. Two formulas with equal `bytes` are
    /// equisatisfiable; the store compares these exactly on lookup.
    pub bytes: Vec<u8>,
    /// 128-bit hash of `bytes`.
    pub fingerprint: Fingerprint,
    /// Canonical integer-variable index → original symbol.
    pub int_vars: Vec<VarSym>,
    /// Canonical Boolean-variable index → original symbol.
    pub bool_vars: Vec<BoolSym>,
    /// Canonical function index → original symbol.
    pub funs: Vec<FunSym>,
    /// Canonical predicate index → original symbol.
    pub preds: Vec<PredSym>,
}

impl Canonical {
    /// Canonical index of `v`, when it occurs in the formula.
    pub fn int_var_index(&self, v: VarSym) -> Option<u32> {
        self.int_vars.iter().position(|&x| x == v).map(|i| i as u32)
    }

    /// Canonical index of `b`, when it occurs in the formula.
    pub fn bool_var_index(&self, b: BoolSym) -> Option<u32> {
        self.bool_vars.iter().position(|&x| x == b).map(|i| i as u32)
    }
}

// Per-variant tags for the serialized records. Frozen: changing any of
// these invalidates every persisted cache log (bump the log magic too).
const TAG_TRUE: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_NOT: u8 = 2;
const TAG_AND: u8 = 3;
const TAG_OR: u8 = 4;
const TAG_IMPLIES: u8 = 5;
const TAG_IFF: u8 = 6;
const TAG_ITE_BOOL: u8 = 7;
const TAG_EQ: u8 = 8;
const TAG_LT: u8 = 9;
const TAG_BOOL_VAR: u8 = 10;
const TAG_PAPP: u8 = 11;
const TAG_INT_VAR: u8 = 12;
const TAG_SUCC: u8 = 13;
const TAG_PRED: u8 = 14;
const TAG_ITE_INT: u8 = 15;
const TAG_APP: u8 = 16;

fn tag_of(term: &Term) -> u8 {
    match term {
        Term::True => TAG_TRUE,
        Term::False => TAG_FALSE,
        Term::Not(_) => TAG_NOT,
        Term::And(_, _) => TAG_AND,
        Term::Or(_, _) => TAG_OR,
        Term::Implies(_, _) => TAG_IMPLIES,
        Term::Iff(_, _) => TAG_IFF,
        Term::IteBool(_, _, _) => TAG_ITE_BOOL,
        Term::Eq(_, _) => TAG_EQ,
        Term::Lt(_, _) => TAG_LT,
        Term::BoolVar(_) => TAG_BOOL_VAR,
        Term::PApp(_, _) => TAG_PAPP,
        Term::IntVar(_) => TAG_INT_VAR,
        Term::Succ(_) => TAG_SUCC,
        Term::Pred(_) => TAG_PRED,
        Term::IteInt(_, _, _) => TAG_ITE_INT,
        Term::App(_, _) => TAG_APP,
    }
}

fn commutative(term: &Term) -> bool {
    matches!(
        term,
        Term::And(_, _) | Term::Or(_, _) | Term::Iff(_, _) | Term::Eq(_, _)
    )
}

/// splitmix64 finalizer — the workspace's standard bit mixer.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Symbol-insensitive structural key: `(hash, subtree size)`. Sorting
/// commutative children by this key (original `TermId` as the final
/// tie-break) makes the traversal order independent of argument order.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct StructKey {
    hash: u64,
    size: u32,
}

fn struct_keys(tm: &TermManager, order: &[TermId]) -> Vec<StructKey> {
    let max_index = order.iter().map(|t| t.index()).max().unwrap_or(0);
    let mut keys = vec![StructKey { hash: 0, size: 0 }; max_index + 1];
    for &t in order {
        let term = tm.term(t);
        let mut h = mix(0x5354_5255_4354 ^ u64::from(tag_of(term)));
        let mut size = 1u32;
        let children = tm.children(t);
        if commutative(term) {
            let mut child_keys: Vec<StructKey> =
                children.iter().map(|c| keys[c.index()]).collect();
            child_keys.sort_unstable();
            for k in child_keys {
                h = mix(h ^ k.hash);
                size = size.saturating_add(k.size);
            }
        } else {
            for c in &children {
                let k = keys[c.index()];
                h = mix(h.rotate_left(7) ^ k.hash);
                size = size.saturating_add(k.size);
            }
        }
        // Variable-arity applications fold the arity in; symbols
        // deliberately contribute nothing beyond the tag.
        if let Term::App(_, args) | Term::PApp(_, args) = term {
            h = mix(h ^ (args.len() as u64) << 32);
        }
        keys[t.index()] = StructKey { hash: h, size };
    }
    keys
}

struct Numbering {
    int_vars: Vec<VarSym>,
    bool_vars: Vec<BoolSym>,
    funs: Vec<FunSym>,
    preds: Vec<PredSym>,
    int_map: HashMap<VarSym, u32>,
    bool_map: HashMap<BoolSym, u32>,
    fun_map: HashMap<FunSym, u32>,
    pred_map: HashMap<PredSym, u32>,
}

impl Numbering {
    fn new() -> Numbering {
        Numbering {
            int_vars: Vec::new(),
            bool_vars: Vec::new(),
            funs: Vec::new(),
            preds: Vec::new(),
            int_map: HashMap::new(),
            bool_map: HashMap::new(),
            fun_map: HashMap::new(),
            pred_map: HashMap::new(),
        }
    }

    fn int_var(&mut self, v: VarSym) -> u32 {
        *self.int_map.entry(v).or_insert_with(|| {
            self.int_vars.push(v);
            (self.int_vars.len() - 1) as u32
        })
    }

    fn bool_var(&mut self, b: BoolSym) -> u32 {
        *self.bool_map.entry(b).or_insert_with(|| {
            self.bool_vars.push(b);
            (self.bool_vars.len() - 1) as u32
        })
    }

    fn fun(&mut self, f: FunSym) -> u32 {
        *self.fun_map.entry(f).or_insert_with(|| {
            self.funs.push(f);
            (self.funs.len() - 1) as u32
        })
    }

    fn pred(&mut self, p: PredSym) -> u32 {
        *self.pred_map.entry(p).or_insert_with(|| {
            self.preds.push(p);
            (self.preds.len() - 1) as u32
        })
    }
}

/// Children of `t` in canonical visit order: structural-key order for
/// commutative connectives, natural order otherwise.
fn ordered_children(tm: &TermManager, keys: &[StructKey], t: TermId) -> Vec<TermId> {
    let mut children = tm.children(t);
    if commutative(tm.term(t)) {
        children.sort_by_key(|c| (keys[c.index()], c.index()));
    }
    children
}

/// Computes the canonical form of `root`.
pub fn canonicalize(tm: &TermManager, root: TermId) -> Canonical {
    let postorder = tm.postorder(root);
    let keys = struct_keys(tm, &postorder);

    // Pass 2a: iterative pre-order DFS assigning canonical node indices
    // in visit order (first visit wins — shared subterms keep one index).
    let mut node_index: HashMap<TermId, u32> = HashMap::new();
    let mut visit_order: Vec<TermId> = Vec::new();
    let mut stack = vec![root];
    while let Some(t) = stack.pop() {
        if node_index.contains_key(&t) {
            continue;
        }
        node_index.insert(t, visit_order.len() as u32);
        visit_order.push(t);
        let children = ordered_children(tm, &keys, t);
        // Reverse push so the first canonical child is visited first.
        for &c in children.iter().rev() {
            stack.push(c);
        }
    }

    // Pass 2b/3: emit records in visit order, numbering symbols by
    // first occurrence as we go.
    let mut numbering = Numbering::new();
    let mut bytes: Vec<u8> = Vec::with_capacity(visit_order.len() * 8);
    for &t in &visit_order {
        let term = tm.term(t);
        bytes.push(tag_of(term));
        match term {
            Term::BoolVar(b) => {
                bytes.extend_from_slice(&numbering.bool_var(*b).to_le_bytes());
            }
            Term::IntVar(v) => {
                bytes.extend_from_slice(&numbering.int_var(*v).to_le_bytes());
            }
            Term::App(f, _) => {
                bytes.extend_from_slice(&numbering.fun(*f).to_le_bytes());
            }
            Term::PApp(p, _) => {
                bytes.extend_from_slice(&numbering.pred(*p).to_le_bytes());
            }
            _ => {}
        }
        let children = ordered_children(tm, &keys, t);
        // Fixed-arity tags imply their child count; only applications
        // need it spelled out.
        if matches!(term, Term::App(_, _) | Term::PApp(_, _)) {
            bytes.extend_from_slice(&(children.len() as u16).to_le_bytes());
        }
        for c in children {
            bytes.extend_from_slice(&node_index[&c].to_le_bytes());
        }
    }

    let fingerprint = fingerprint(&bytes);
    Canonical {
        bytes,
        fingerprint,
        int_vars: numbering.int_vars,
        bool_vars: numbering.bool_vars,
        funs: numbering.funs,
        preds: numbering.preds,
    }
}

/// 128-bit in-tree hash of `bytes`: two independent 64-bit streams (an
/// FNV-1a variant and a rotate-multiply stream), each finalized with
/// splitmix64.
pub fn fingerprint(bytes: &[u8]) -> Fingerprint {
    let mut a = 0xcbf2_9ce4_8422_2325u64;
    let mut b = 0x9e37_79b9_7f4a_7c15u64;
    for &x in bytes {
        a = (a ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_01b3);
        b = (b.rotate_left(5) ^ u64::from(x)).wrapping_mul(0x2545_f491_4f6c_dd1d);
    }
    a = mix(a ^ (bytes.len() as u64));
    b = mix(b ^ (bytes.len() as u64).rotate_left(32));
    Fingerprint(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_suf::parse_problem;

    fn canon_of(text: &str) -> Canonical {
        let mut tm = TermManager::new();
        let phi = parse_problem(&mut tm, text).expect("parses");
        canonicalize(&tm, phi)
    }

    #[test]
    fn alpha_renamed_formulas_share_a_fingerprint() {
        let a = canon_of(
            "(vars x y) (funs (f 1)) (formula (=> (= x y) (= (f x) (f y))))",
        );
        let b = canon_of(
            "(vars p q) (funs (g 1)) (formula (=> (= p q) (= (g p) (g q))))",
        );
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn declaration_order_does_not_matter() {
        // Same formula, but the unused declarations come in a different
        // order, shifting every symbol's intern index.
        let a = canon_of("(vars x y z) (formula (= x y))");
        let b = canon_of("(vars z y x) (formula (= y x))");
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn shuffled_conjuncts_share_a_fingerprint() {
        let a = canon_of("(vars x y z) (formula (and (= x y) (< y z)))");
        let b = canon_of("(vars x y z) (formula (and (< y z) (= x y)))");
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.fingerprint, b.fingerprint);

        let c = canon_of("(vars a b c) (formula (and (< b c) (= a b)))");
        assert_eq!(a.bytes, c.bytes);
    }

    #[test]
    fn sat_and_unsat_pair_get_distinct_fingerprints() {
        // A classic valid/invalid pair: congruence and its converse.
        let valid = canon_of(
            "(vars x y) (funs (f 1)) (formula (=> (= x y) (= (f x) (f y))))",
        );
        let invalid = canon_of(
            "(vars x y) (funs (f 1)) (formula (=> (= (f x) (f y)) (= x y)))",
        );
        assert_ne!(valid.bytes, invalid.bytes);
        assert_ne!(valid.fingerprint, invalid.fingerprint);
    }

    #[test]
    fn non_commutative_order_is_preserved() {
        let a = canon_of("(vars x y) (formula (< x y))");
        let b = canon_of("(vars x y) (formula (< y x))");
        // Both canonicalize to "first-seen var < second-seen var", which
        // is the *same* normal form — they are indeed α-equivalent.
        assert_eq!(a.bytes, b.bytes);
        let c = canon_of("(vars x) (formula (< x (succ x)))");
        let d = canon_of("(vars x) (formula (< (succ x) x))");
        assert_ne!(c.bytes, d.bytes);
    }

    #[test]
    fn symbol_maps_expose_first_occurrence_order() {
        let mut tm = TermManager::new();
        let phi = parse_problem(&mut tm, "(vars x y) (formula (< y x))").expect("parses");
        let canon = canonicalize(&tm, phi);
        // `y` occurs first in the canonical traversal.
        let y = tm.find_int_var("y").expect("declared");
        let x = tm.find_int_var("x").expect("declared");
        assert_eq!(canon.int_var_index(y), Some(0));
        assert_eq!(canon.int_var_index(x), Some(1));
        assert_eq!(canon.int_vars.len(), 2);
    }

    #[test]
    fn dag_sharing_keeps_bytes_linear() {
        // A tower of shared conjunctions would explode as a tree.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let mut t = tm.mk_eq(x, y);
        for i in 0..40 {
            // Each level references `t` twice, so the tree doubles while
            // the DAG grows by two nodes (the folding in `mk_and` never
            // fires: the operands are always distinct).
            let b = tm.bool_var(&format!("b{i}"));
            let left = tm.mk_or(t, b);
            t = tm.mk_and(left, t);
        }
        let canon = canonicalize(&tm, t);
        assert!(canon.bytes.len() < 4096, "{} bytes", canon.bytes.len());
    }

    #[test]
    fn fingerprint_bytes_round_trip() {
        let fp = fingerprint(b"sufsat");
        assert_eq!(Fingerprint::from_bytes(&fp.to_bytes()), fp);
        assert_eq!(fp.to_hex().len(), 32);
    }
}
