//! `sufsat-cache`: canonicalizing result cache for SUF decision results.
//!
//! The eager decision procedure is a pure function of formula structure:
//! the same SUF formula always yields the same verdict. That makes
//! results perfectly memoizable — *if* trivially-different spellings of
//! the same query can be made to collide. This crate provides the four
//! layers that turn that observation into a cache:
//!
//! * [`canon`] — a deterministic normal form over `suf` formulas plus a
//!   128-bit fingerprint, so α-renamed and reordered queries share a key;
//! * [`store`] — a sharded, byte-budgeted LRU map from fingerprint to
//!   cached verdict;
//! * [`singleflight`] — dedup of concurrent identical requests, with
//!   leader-cancellation handoff;
//! * [`log`] — an append-only checksummed on-disk log so a restarted
//!   daemon starts warm.
//!
//! [`ResultCache`] is the façade gluing them together; `core` consults
//! it through an opt-in handle on `DecideOptions`, and `sufsat-serve`
//! owns one per daemon.
//!
//! # What is (and is not) cached
//!
//! Only definitive verdicts are stored: `valid` and `invalid`. Timeouts,
//! budget exhaustion and cancellations are circumstances of one run, not
//! properties of the formula, and are never cached. For `invalid`
//! results the store keeps a best-effort counterexample restricted to
//! the *original* formula's symbols (auxiliary constants introduced by
//! elimination are dropped), remapped through the canonical symbol
//! numbering so an α-renamed cache hit gets a model over its own names.
//! The verdict is the contract; the model is a convenience witness.

pub mod canon;
pub mod log;
pub mod singleflight;
pub mod store;

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

pub use canon::{canonicalize, Canonical, Fingerprint};
pub use log::{scan, CacheLog, LoadReport, LogRecord};
pub use singleflight::{Joined, LeaderGuard, SingleFlight};
pub use store::{Store, StoreStats, NUM_SHARDS};

/// The definitive verdicts a cache entry can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachedVerdict {
    /// The formula is valid (its negation is unsatisfiable).
    Valid,
    /// The formula is invalid; a counterexample may accompany it.
    Invalid,
}

impl CachedVerdict {
    /// Stable lowercase name, used in trace events and `cache inspect`.
    pub fn name(self) -> &'static str {
        match self {
            CachedVerdict::Valid => "valid",
            CachedVerdict::Invalid => "invalid",
        }
    }
}

/// A fixed-width digest of the solve that produced a cached entry,
/// preserved so warm hits can still report how expensive the original
/// computation was.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsDigest {
    /// Term-DAG nodes in the original formula.
    pub dag_size: u64,
    /// CNF clauses after encoding.
    pub cnf_clauses: u64,
    /// Conflict clauses the solver derived.
    pub conflict_clauses: u64,
    /// CDCL decisions.
    pub decisions: u64,
    /// Unit propagations.
    pub propagations: u64,
    /// Total separation predicates across classes.
    pub sep_predicates: u64,
    /// Microseconds spent translating (eliminate + encode).
    pub translate_time_us: u64,
    /// Microseconds spent in SAT search.
    pub solve_time_us: u64,
}

impl StatsDigest {
    /// Number of `u64` fields in the on-disk encoding. Bump the log
    /// magic if this ever changes.
    pub const FIELDS: usize = 8;

    /// The fields in on-disk order.
    pub fn as_fields(&self) -> [u64; StatsDigest::FIELDS] {
        [
            self.dag_size,
            self.cnf_clauses,
            self.conflict_clauses,
            self.decisions,
            self.propagations,
            self.sep_predicates,
            self.translate_time_us,
            self.solve_time_us,
        ]
    }

    /// Inverse of [`as_fields`](StatsDigest::as_fields).
    pub fn from_fields(fields: [u64; StatsDigest::FIELDS]) -> StatsDigest {
        StatsDigest {
            dag_size: fields[0],
            cnf_clauses: fields[1],
            conflict_clauses: fields[2],
            decisions: fields[3],
            propagations: fields[4],
            sep_predicates: fields[5],
            translate_time_us: fields[6],
            solve_time_us: fields[7],
        }
    }
}

/// One cached result: the verdict, a best-effort counterexample over
/// canonical symbol indices, and the original solve's stats digest.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheValue {
    /// The definitive verdict.
    pub verdict: CachedVerdict,
    /// `(canonical int-var index, value)` pairs of the counterexample
    /// (empty for `Valid`, possibly partial for `Invalid`).
    pub int_model: Vec<(u32, i64)>,
    /// `(canonical bool-var index, value)` pairs of the counterexample.
    pub bool_model: Vec<(u32, bool)>,
    /// Cost of the solve that produced this entry.
    pub digest: StatsDigest,
}

/// The assembled cache: store + single-flight + optional persistence.
///
/// Lookups and inserts are cheap and lock only one shard; the optional
/// log append serializes on its own mutex. All methods take `&self`, so
/// one `Arc<ResultCache>` serves any number of threads.
pub struct ResultCache {
    store: Store,
    flights: SingleFlight<Option<CacheValue>>,
    log: Option<Mutex<CacheLog>>,
    path: Option<PathBuf>,
}

impl ResultCache {
    /// An in-memory cache holding at most `byte_budget` accounted bytes.
    pub fn new(byte_budget: usize) -> ResultCache {
        ResultCache {
            store: Store::new(byte_budget),
            flights: SingleFlight::new(),
            log: None,
            path: None,
        }
    }

    /// A cache backed by the append-only log at `path`: existing records
    /// are loaded (warming the store), a torn tail is truncated away, and
    /// every future insert is appended. Returns the load report so
    /// callers can surface `records loaded / bytes recovered`.
    pub fn with_persistence(
        byte_budget: usize,
        path: &Path,
    ) -> std::io::Result<(ResultCache, LoadReport)> {
        let (log, records, report) = CacheLog::open(path)?;
        let cache = ResultCache {
            store: Store::new(byte_budget),
            flights: SingleFlight::new(),
            log: Some(Mutex::new(log)),
            path: Some(path.to_path_buf()),
        };
        for record in records {
            // Warming is not an insert event and must not re-append.
            cache
                .store
                .insert(record.fingerprint, &record.canon, record.value);
        }
        Ok((cache, report))
    }

    /// The persistence path, if any.
    pub fn persist_path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Looks up a canonicalized formula. Emits `cache.hit` / `cache.miss`
    /// trace events when tracing is enabled.
    pub fn lookup(&self, fp: Fingerprint, canon: &[u8]) -> Option<CacheValue> {
        let result = self.store.lookup(fp, canon);
        if sufsat_obs::enabled() {
            let hex = fp.to_hex();
            match &result {
                Some(_) => {
                    sufsat_obs::event!("cache.hit", fingerprint = &hex, bytes = canon.len())
                }
                None => sufsat_obs::event!("cache.miss", fingerprint = &hex),
            }
        }
        result
    }

    /// Inserts a definitive result, appending to the persistent log when
    /// one is attached. Emits `cache.insert` (and `cache.evict` when the
    /// insert pushed entries out) trace events.
    pub fn insert(&self, fp: Fingerprint, canon: &[u8], value: CacheValue) {
        if let Some(log) = &self.log {
            let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
            // A failed append degrades persistence, not correctness.
            let _ = log.append(fp, canon, &value);
        }
        let verdict = value.verdict;
        let evicted = self.store.insert(fp, canon, value);
        if sufsat_obs::enabled() {
            let hex = fp.to_hex();
            let stats = self.store.stats();
            sufsat_obs::event!(
                "cache.insert",
                fingerprint = &hex,
                verdict = verdict.name(),
                bytes = stats.bytes,
                entries = stats.entries,
            );
            if evicted > 0 {
                sufsat_obs::event!(
                    "cache.evict",
                    fingerprint = &hex,
                    bytes = stats.bytes,
                    entries = stats.entries,
                );
            }
        }
    }

    /// Joins the single-flight for `fp`: the first caller becomes the
    /// leader (solve, then [`LeaderGuard::complete`]); concurrent callers
    /// block until the leader publishes, their own `deadline` expires, or
    /// an abandoned flight promotes them. The flight value is `None` when
    /// the leader finished without a definitive verdict — followers then
    /// solve for themselves.
    pub fn join(
        &self,
        fp: Fingerprint,
        deadline: Option<Instant>,
    ) -> Joined<Option<CacheValue>> {
        self.flights.join(fp, deadline)
    }

    /// Flights currently in progress.
    pub fn in_flight(&self) -> usize {
        self.flights.in_flight()
    }

    /// Store counters and gauges.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Logically drops every entry (generation bump; lazy reclamation).
    pub fn invalidate_all(&self) {
        self.store.invalidate_all();
    }

    /// Every live entry, sorted by fingerprint.
    pub fn snapshot_entries(&self) -> Vec<(Fingerprint, Vec<u8>, CacheValue)> {
        self.store.snapshot_entries()
    }

    /// Compacts the persistent log down to the live store contents.
    /// Returns the compacted size, or `None` when no log is attached.
    pub fn compact_log(&self) -> std::io::Result<Option<u64>> {
        let Some(log) = &self.log else {
            return Ok(None);
        };
        let records: Vec<LogRecord> = self
            .snapshot_entries()
            .into_iter()
            .map(|(fingerprint, canon, value)| LogRecord {
                fingerprint,
                canon,
                value,
            })
            .collect();
        let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
        log.compact(&records).map(Some)
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.store.stats();
        f.debug_struct("ResultCache")
            .field("entries", &stats.entries)
            .field("bytes", &stats.bytes)
            .field("persisted", &self.path.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(verdict: CachedVerdict) -> CacheValue {
        CacheValue {
            verdict,
            int_model: vec![(0, 3)],
            bool_model: vec![(1, true)],
            digest: StatsDigest {
                conflict_clauses: 12,
                solve_time_us: 340,
                ..StatsDigest::default()
            },
        }
    }

    #[test]
    fn persistent_cache_restarts_warm() {
        let dir = std::env::temp_dir().join(format!("sufsat-cache-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.log");
        let _ = std::fs::remove_file(&path);

        let fp = Fingerprint(0xABCD, 0x1234);
        {
            let (cache, report) = ResultCache::with_persistence(1 << 20, &path).unwrap();
            assert_eq!(report.unique, 0);
            assert!(cache.lookup(fp, b"formula").is_none());
            cache.insert(fp, b"formula", value(CachedVerdict::Invalid));
            assert!(cache.lookup(fp, b"formula").is_some());
        }
        // "Restart": a fresh cache over the same path answers warm.
        let (cache, report) = ResultCache::with_persistence(1 << 20, &path).unwrap();
        assert_eq!(report.unique, 1);
        let hit = cache.lookup(fp, b"formula").expect("warm hit after restart");
        assert_eq!(hit, value(CachedVerdict::Invalid));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_log_drops_superseded_records() {
        let dir = std::env::temp_dir().join(format!("sufsat-cache-clib-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.log");
        let _ = std::fs::remove_file(&path);

        let fp = Fingerprint(5, 6);
        let (cache, _) = ResultCache::with_persistence(1 << 20, &path).unwrap();
        for _ in 0..20 {
            cache.insert(fp, b"same", value(CachedVerdict::Valid));
        }
        let compacted = cache.compact_log().unwrap().unwrap();
        drop(cache);
        let (_, report) = log::scan(&path).map(|(r, rep)| (r, rep)).unwrap();
        assert_eq!(report.records, 1);
        assert!(compacted > 8);
    }

    #[test]
    fn digest_fields_round_trip() {
        let digest = StatsDigest {
            dag_size: 1,
            cnf_clauses: 2,
            conflict_clauses: 3,
            decisions: 4,
            propagations: 5,
            sep_predicates: 6,
            translate_time_us: 7,
            solve_time_us: 8,
        };
        assert_eq!(StatsDigest::from_fields(digest.as_fields()), digest);
    }
}
