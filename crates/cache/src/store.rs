//! The sharded in-memory store: fingerprint → cached result, with
//! byte-accounted LRU eviction per shard and a generation counter for
//! whole-cache invalidation.
//!
//! Sharding keeps lock hold times short under concurrent lookups: the
//! fingerprint's low bits pick one of N independently mutexed shards.
//! Each shard tracks recency with a monotonic tick and a `BTreeMap`
//! keyed by tick, so touch and evict are both `O(log n)` without any
//! intrusive-list unsafe code.
//!
//! Soundness does not rest on the 128-bit fingerprint: every entry
//! stores its full canonical bytes and a lookup compares them exactly,
//! so a fingerprint collision degrades to a miss, never a wrong answer.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::canon::Fingerprint;
use crate::{CacheValue, StatsDigest};

/// Fixed shard count (a power of two; the fingerprint's low bits index
/// into it).
pub const NUM_SHARDS: usize = 16;

/// Fixed per-entry bookkeeping charge on top of the payload bytes, so a
/// flood of tiny entries still respects the budget.
const ENTRY_OVERHEAD: usize = 96;

struct Entry {
    canon: Vec<u8>,
    value: CacheValue,
    bytes: usize,
    tick: u64,
    generation: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<Fingerprint, Entry>,
    /// Recency index: tick → fingerprint. The smallest tick is the LRU
    /// candidate. Ticks are unique within a shard.
    recency: BTreeMap<u64, Fingerprint>,
    next_tick: u64,
    bytes: usize,
}

impl Shard {
    fn touch(&mut self, fp: Fingerprint) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(entry) = self.entries.get_mut(&fp) {
            self.recency.remove(&entry.tick);
            entry.tick = tick;
            self.recency.insert(tick, fp);
        }
    }

    fn remove(&mut self, fp: Fingerprint) -> Option<Entry> {
        let entry = self.entries.remove(&fp)?;
        self.recency.remove(&entry.tick);
        self.bytes -= entry.bytes;
        Some(entry)
    }
}

/// Aggregated store statistics, as exposed by `metrics` and `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that returned a value.
    pub hits: u64,
    /// Lookups that found nothing (or a stale generation / colliding
    /// fingerprint).
    pub misses: u64,
    /// Values inserted.
    pub inserts: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Live entries.
    pub entries: u64,
    /// Accounted bytes of the live entries.
    pub bytes: u64,
}

/// The sharded, byte-budgeted LRU map.
pub struct Store {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total budget / shard count).
    shard_budget: usize,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl Store {
    /// A store that holds at most `byte_budget` accounted bytes.
    pub fn new(byte_budget: usize) -> Store {
        Store {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: (byte_budget / NUM_SHARDS).max(1),
            generation: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<Shard> {
        &self.shards[(fp.0 as usize) & (NUM_SHARDS - 1)]
    }

    /// Accounted size of an entry with this payload.
    pub fn entry_bytes(canon: &[u8], value: &CacheValue) -> usize {
        ENTRY_OVERHEAD
            + canon.len()
            + value.int_model.len() * 12
            + value.bool_model.len() * 5
            + std::mem::size_of::<StatsDigest>()
    }

    /// Looks up `fp`, verifying the canonical bytes match exactly.
    pub fn lookup(&self, fp: Fingerprint, canon: &[u8]) -> Option<CacheValue> {
        let generation = self.generation.load(Ordering::Acquire);
        let mut shard = self.shard(fp).lock().unwrap_or_else(|e| e.into_inner());
        let stale = match shard.entries.get(&fp) {
            Some(entry) if entry.generation == generation && entry.canon == canon => {
                let value = entry.value.clone();
                shard.touch(fp);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(value);
            }
            Some(entry) if entry.generation != generation => true,
            _ => false,
        };
        if stale {
            shard.remove(fp);
        }
        drop(shard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts (or replaces) the entry for `fp`, evicting LRU entries
    /// from the shard until the byte budget holds. Returns the number of
    /// evictions this insert caused.
    pub fn insert(&self, fp: Fingerprint, canon: &[u8], value: CacheValue) -> u64 {
        let bytes = Store::entry_bytes(canon, &value);
        let generation = self.generation.load(Ordering::Acquire);
        let mut evicted = 0u64;
        let mut shard = self.shard(fp).lock().unwrap_or_else(|e| e.into_inner());
        shard.remove(fp);
        // An entry larger than a whole shard can never fit; skip it
        // rather than evicting everything for nothing.
        if bytes > self.shard_budget {
            return 0;
        }
        while shard.bytes + bytes > self.shard_budget {
            let Some((&tick, &victim)) = shard.recency.iter().next() else {
                break;
            };
            debug_assert!(shard.entries.contains_key(&victim), "tick {tick} dangling");
            shard.remove(victim);
            evicted += 1;
        }
        let tick = shard.next_tick;
        shard.next_tick += 1;
        shard.entries.insert(
            fp,
            Entry {
                canon: canon.to_vec(),
                value,
                bytes,
                tick,
                generation,
            },
        );
        shard.recency.insert(tick, fp);
        shard.bytes += bytes;
        drop(shard);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Drops every entry logically by bumping the generation counter;
    /// stale entries are reclaimed lazily as lookups touch them.
    pub fn invalidate_all(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// The current generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Counters plus live-entry gauges.
    pub fn stats(&self) -> StoreStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            entries += shard.entries.len() as u64;
            bytes += shard.bytes as u64;
        }
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }

    /// Every live entry, for persistence compaction and `cache inspect`.
    pub fn snapshot_entries(&self) -> Vec<(Fingerprint, Vec<u8>, CacheValue)> {
        let generation = self.generation.load(Ordering::Acquire);
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (fp, entry) in &shard.entries {
                if entry.generation == generation {
                    out.push((*fp, entry.canon.clone(), entry.value.clone()));
                }
            }
        }
        out.sort_by_key(|(fp, _, _)| *fp);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CachedVerdict;

    fn fp(n: u64) -> Fingerprint {
        // Spread across shards via the low bits.
        Fingerprint(n, n.wrapping_mul(31))
    }

    fn value() -> CacheValue {
        CacheValue {
            verdict: CachedVerdict::Valid,
            int_model: Vec::new(),
            bool_model: Vec::new(),
            digest: StatsDigest::default(),
        }
    }

    #[test]
    fn lookup_requires_exact_canonical_bytes() {
        let store = Store::new(1 << 20);
        store.insert(fp(1), b"aaaa", value());
        assert!(store.lookup(fp(1), b"aaaa").is_some());
        // Same fingerprint, different canonical bytes: a collision is a
        // miss, never a wrong answer.
        assert!(store.lookup(fp(1), b"bbbb").is_none());
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        // All keys in one shard (same low bits) so the budget math is
        // deterministic.
        let shard_key = |n: u64| Fingerprint(n << 4, n);
        let payload = vec![0u8; 100];
        let eb = Store::entry_bytes(&payload, &value());
        let budget = eb * 4 * NUM_SHARDS;
        let store = Store::new(budget);
        for n in 0..4 {
            let mut canon = payload.clone();
            canon[0] = n as u8;
            store.insert(shard_key(n), &canon, value());
        }
        assert_eq!(store.stats().entries, 4);
        // Touch entry 0 so entry 1 becomes the LRU victim.
        let mut canon0 = payload.clone();
        canon0[0] = 0;
        assert!(store.lookup(shard_key(0), &canon0).is_some());
        let mut canon4 = payload.clone();
        canon4[0] = 4;
        let evicted = store.insert(shard_key(4), &canon4, value());
        assert_eq!(evicted, 1);
        let stats = store.stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.evictions, 1);
        // Entry 1 was evicted; 0 survived its touch.
        let mut canon1 = payload.clone();
        canon1[0] = 1;
        assert!(store.lookup(shard_key(1), &canon1).is_none());
        assert!(store.lookup(shard_key(0), &canon0).is_some());
        // The budget holds at all times.
        assert!(stats.bytes <= budget as u64);
    }

    #[test]
    fn oversized_entries_are_refused_without_mass_eviction() {
        let store = Store::new(NUM_SHARDS * 256);
        store.insert(fp(1), b"ok", value());
        let huge = vec![0u8; 10_000];
        let evicted = store.insert(fp(2), &huge, value());
        assert_eq!(evicted, 0);
        assert!(store.lookup(fp(2), &huge).is_none());
        assert!(store.lookup(fp(1), b"ok").is_some());
    }

    #[test]
    fn generation_bump_invalidates_everything() {
        let store = Store::new(1 << 20);
        store.insert(fp(7), b"x", value());
        assert!(store.lookup(fp(7), b"x").is_some());
        store.invalidate_all();
        assert!(store.lookup(fp(7), b"x").is_none());
        // Re-insert under the new generation works.
        store.insert(fp(7), b"x", value());
        assert!(store.lookup(fp(7), b"x").is_some());
    }
}
