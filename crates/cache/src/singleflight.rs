//! Single-flight dedup: concurrent identical requests coalesce onto one
//! in-flight computation.
//!
//! # The state machine
//!
//! A *flight* is keyed by fingerprint. The first joiner becomes the
//! **leader** and receives a [`LeaderGuard`]; everyone else becomes a
//! **follower** and blocks — with its *own* deadline — until one of:
//!
//! * the leader [`LeaderGuard::complete`]s → the follower gets the
//!   value (`Joined::Done`);
//! * the leader's guard is dropped without completing (its connection
//!   died, it panicked, its solve was cancelled) → the flight is
//!   *abandoned* and exactly one waiting follower is **promoted**: its
//!   `join` returns `Joined::Leader` and it computes the result itself,
//!   while the remaining followers keep waiting on the new leader.
//!   Without promotion a dropped leader would strand every follower;
//!   with it, one client disconnect costs one re-election, nothing more;
//! * the follower's deadline expires → `Joined::TimedOut`, and the
//!   caller decides (typically: answer `unknown:timeout`, exactly as if
//!   it had run the solve itself).
//!
//! ```text
//!            join (first)                    complete(v)
//!   (none) ───────────────→ Running ──────────────────────→ Done(v)
//!                             │  ▲                            │
//!                 guard drop  │  │ a follower claims          │ followers
//!                             ▼  │ leadership                 ▼ drain
//!                          Abandoned ──(no waiters)──→ flight removed
//! ```
//!
//! Flights never cache: a completed flight is removed from the map, so
//! the *store* (with its LRU policy) remains the only layer that holds
//! results. Values are `Clone`d out to each follower.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::canon::Fingerprint;

enum State<V> {
    /// A leader is computing.
    Running,
    /// The leader finished; followers drain this value.
    Done(V),
    /// The leader gave up without a value; leadership is up for grabs.
    Abandoned,
}

struct FlightInner<V> {
    state: State<V>,
    /// Followers currently blocked in `join`.
    waiters: usize,
}

struct Flight<V> {
    inner: Mutex<FlightInner<V>>,
    cv: Condvar,
}

/// How a `join` resolved.
pub enum Joined<V> {
    /// You are the leader: compute the result, then call
    /// [`LeaderGuard::complete`] (or drop the guard to abandon).
    Leader(LeaderGuard<V>),
    /// Another request already computed the value.
    Done(V),
    /// The deadline expired while a leader was still computing.
    TimedOut,
}

/// Leadership of one flight. Dropping the guard without calling
/// [`complete`](LeaderGuard::complete) abandons the flight, promoting a
/// waiting follower (if any) to leader.
pub struct LeaderGuard<V> {
    sf: Arc<SingleFlightInner<V>>,
    key: Fingerprint,
    flight: Arc<Flight<V>>,
    completed: bool,
}

impl<V: Clone> LeaderGuard<V> {
    /// Publishes the value to every waiting follower and retires the
    /// flight.
    pub fn complete(mut self, value: V) {
        {
            let mut inner = self.flight.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.state = State::Done(value);
            self.flight.cv.notify_all();
        }
        self.completed = true;
        self.sf.remove_if_current(self.key, &self.flight);
    }
}

impl<V> Drop for LeaderGuard<V> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        let waiters = {
            let mut inner = self.flight.inner.lock().unwrap_or_else(|e| e.into_inner());
            // A promoted follower may already have re-claimed leadership
            // through this same guard type; only a Running flight can be
            // abandoned by its leader.
            if matches!(inner.state, State::Running) {
                inner.state = State::Abandoned;
                self.flight.cv.notify_all();
            }
            inner.waiters
        };
        if waiters == 0 {
            self.sf.remove_if_current(self.key, &self.flight);
        }
    }
}

struct SingleFlightInner<V> {
    flights: Mutex<HashMap<Fingerprint, Arc<Flight<V>>>>,
}

impl<V> SingleFlightInner<V> {
    /// Removes `key` from the map, but only while it still maps to this
    /// exact flight — a successor flight under the same key stays.
    fn remove_if_current(&self, key: Fingerprint, flight: &Arc<Flight<V>>) {
        let mut map = self.flights.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(current) = map.get(&key) {
            if Arc::ptr_eq(current, flight) {
                map.remove(&key);
            }
        }
    }
}

/// The single-flight table.
pub struct SingleFlight<V> {
    inner: Arc<SingleFlightInner<V>>,
}

impl<V: Clone> Default for SingleFlight<V> {
    fn default() -> SingleFlight<V> {
        SingleFlight::new()
    }
}

impl<V: Clone> SingleFlight<V> {
    /// An empty table.
    pub fn new() -> SingleFlight<V> {
        SingleFlight {
            inner: Arc::new(SingleFlightInner {
                flights: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Flights currently in the map (leaders computing or followers
    /// draining an abandonment).
    pub fn in_flight(&self) -> usize {
        self.inner
            .flights
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Joins the flight for `key`. `deadline` bounds how long a follower
    /// may wait (`None` = unbounded).
    pub fn join(&self, key: Fingerprint, deadline: Option<Instant>) -> Joined<V> {
        let flight = {
            let mut map = self.inner.flights.lock().unwrap_or_else(|e| e.into_inner());
            match map.get(&key) {
                Some(flight) => Arc::clone(flight),
                None => {
                    let flight = Arc::new(Flight {
                        inner: Mutex::new(FlightInner {
                            state: State::Running,
                            waiters: 0,
                        }),
                        cv: Condvar::new(),
                    });
                    map.insert(key, Arc::clone(&flight));
                    return Joined::Leader(LeaderGuard {
                        sf: Arc::clone(&self.inner),
                        key,
                        flight,
                        completed: false,
                    });
                }
            }
        };

        let mut inner = flight.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.waiters += 1;
        loop {
            match &inner.state {
                State::Done(v) => {
                    let value = v.clone();
                    inner.waiters -= 1;
                    return Joined::Done(value);
                }
                State::Abandoned => {
                    // Promotion: this follower claims leadership and
                    // computes the result itself.
                    inner.state = State::Running;
                    inner.waiters -= 1;
                    drop(inner);
                    return Joined::Leader(LeaderGuard {
                        sf: Arc::clone(&self.inner),
                        key,
                        flight: Arc::clone(&flight),
                        completed: false,
                    });
                }
                State::Running => {}
            }
            match deadline {
                None => {
                    inner = flight.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        inner.waiters -= 1;
                        let orphaned =
                            matches!(inner.state, State::Abandoned) && inner.waiters == 0;
                        drop(inner);
                        if orphaned {
                            // Last one out retires an unclaimed flight.
                            self.inner.remove_if_current(key, &flight);
                        }
                        return Joined::TimedOut;
                    }
                    let (guard, _) = flight
                        .cv
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    inner = guard;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn key(n: u64) -> Fingerprint {
        Fingerprint(n, n)
    }

    #[test]
    fn followers_coalesce_onto_one_leader() {
        let sf = Arc::new(SingleFlight::<u64>::new());
        let solves = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            let mut joins = Vec::new();
            for _ in 0..8 {
                let sf = Arc::clone(&sf);
                let solves = Arc::clone(&solves);
                joins.push(s.spawn(move || {
                    match sf.join(key(1), Some(Instant::now() + Duration::from_secs(10))) {
                        Joined::Leader(guard) => {
                            solves.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(20));
                            guard.complete(42);
                            42
                        }
                        Joined::Done(v) => v,
                        Joined::TimedOut => panic!("unexpected timeout"),
                    }
                }));
            }
            for j in joins {
                assert_eq!(j.join().unwrap(), 42);
            }
        });
        assert_eq!(solves.load(Ordering::Relaxed), 1, "exactly one solve");
        assert_eq!(sf.in_flight(), 0, "flight retired");
    }

    #[test]
    fn abandoned_leader_promotes_a_follower() {
        let sf = Arc::new(SingleFlight::<u64>::new());
        let leader = match sf.join(key(2), None) {
            Joined::Leader(g) => g,
            _ => panic!("first joiner must lead"),
        };
        let sf2 = Arc::clone(&sf);
        let follower = std::thread::spawn(move || {
            match sf2.join(key(2), Some(Instant::now() + Duration::from_secs(10))) {
                Joined::Leader(guard) => {
                    // Promoted: compute and publish.
                    guard.complete(7);
                    "promoted"
                }
                Joined::Done(_) => "done",
                Joined::TimedOut => "timeout",
            }
        });
        // Let the follower block, then kill the leader without a value.
        std::thread::sleep(Duration::from_millis(30));
        drop(leader);
        assert_eq!(follower.join().unwrap(), "promoted");
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn remaining_followers_drain_the_promoted_leader() {
        let sf = Arc::new(SingleFlight::<u64>::new());
        let leader = match sf.join(key(3), None) {
            Joined::Leader(g) => g,
            _ => panic!("first joiner must lead"),
        };
        std::thread::scope(|s| {
            let mut followers = Vec::new();
            for _ in 0..4 {
                let sf = Arc::clone(&sf);
                followers.push(s.spawn(move || {
                    match sf.join(key(3), Some(Instant::now() + Duration::from_secs(10))) {
                        Joined::Leader(guard) => {
                            std::thread::sleep(Duration::from_millis(10));
                            guard.complete(9);
                            9
                        }
                        Joined::Done(v) => v,
                        Joined::TimedOut => 0,
                    }
                }));
            }
            std::thread::sleep(Duration::from_millis(30));
            drop(leader);
            for f in followers {
                assert_eq!(f.join().unwrap(), 9);
            }
        });
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn follower_deadlines_are_respected() {
        let sf = SingleFlight::<u64>::new();
        let _leader = match sf.join(key(4), None) {
            Joined::Leader(g) => g,
            _ => panic!("first joiner must lead"),
        };
        let started = Instant::now();
        match sf.join(key(4), Some(Instant::now() + Duration::from_millis(40))) {
            Joined::TimedOut => {}
            _ => panic!("follower must time out while the leader stalls"),
        }
        let waited = started.elapsed();
        assert!(waited >= Duration::from_millis(35), "{waited:?}");
        assert!(waited < Duration::from_secs(5), "{waited:?}");
    }

    #[test]
    fn abandonment_without_waiters_retires_the_flight() {
        let sf = SingleFlight::<u64>::new();
        let leader = match sf.join(key(5), None) {
            Joined::Leader(g) => g,
            _ => panic!("lead"),
        };
        assert_eq!(sf.in_flight(), 1);
        drop(leader);
        assert_eq!(sf.in_flight(), 0);
        // The key is reusable immediately.
        assert!(matches!(sf.join(key(5), None), Joined::Leader(_)));
    }
}
