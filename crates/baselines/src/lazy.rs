//! A lazy SAT-based decision procedure (the paper's CVC comparison point,
//! Figure 6).
//!
//! Unlike the eager encodings, the lazy approach abstracts every atom with
//! a fresh Boolean variable and enforces theory consistency *lazily*:
//! the SAT solver proposes an assignment to the abstraction variables, a
//! first-order theory solver (difference logic with disequality splitting)
//! checks it, and inconsistent assignments are ruled out by adding conflict
//! clauses built from minimal negative-cycle explanations. The process
//! iterates until the SAT solver reports unsatisfiability (the formula is
//! valid) or the theory accepts an assignment (a counterexample).
//!
//! Like CVC, this procedure does not exploit positive equality.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use sufsat_core::{Outcome, StopReason};
use sufsat_encode::{load_into_solver, Circuit, CnfMode, Signal};
use sufsat_sat::{SolveResult, Solver};
use sufsat_seplog::{
    solve_with_disequalities_budgeted, Bound, DiffResult, Disequality, GroundTerm,
    SepAssignment,
};
use sufsat_suf::{eliminate, Term, TermId, TermManager, VarSym};

/// Options for the lazy procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct LazyOptions {
    /// Maximum lazy refinement iterations before giving up.
    pub max_iterations: usize,
    /// Wall-clock timeout across all iterations.
    pub timeout: Option<Duration>,
    /// Refinement rounds between solver `simplify` passes (`0` disables
    /// them). Root-level units learned by refinement permanently satisfy
    /// or shrink clauses; sweeping them out keeps the persistent solver's
    /// watch lists lean over long runs.
    pub simplify_period: usize,
}

impl Default for LazyOptions {
    fn default() -> LazyOptions {
        LazyOptions {
            max_iterations: 2_000_000,
            timeout: None,
            simplify_period: 64,
        }
    }
}

/// Measurements of one lazy run.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct LazyStats {
    /// Refinement iterations (SAT calls).
    pub iterations: usize,
    /// Theory checks performed.
    pub theory_checks: usize,
    /// Conflict clauses added by refinement.
    pub refinement_clauses: usize,
    /// Periodic solver `simplify` passes between refinement rounds.
    pub simplify_calls: usize,
    /// Total wall time.
    pub time: Duration,
}

/// Decides validity of an SUF formula with the lazy procedure.
///
/// # Examples
///
/// ```
/// use sufsat_baselines::{decide_lazy, LazyOptions};
/// use sufsat_suf::TermManager;
///
/// let mut tm = TermManager::new();
/// let x = tm.int_var("x");
/// let y = tm.int_var("y");
/// let lt = tm.mk_lt(x, y);
/// let ge = tm.mk_ge(x, y);
/// let phi = tm.mk_or(lt, ge);
/// let (outcome, stats) = decide_lazy(&mut tm, phi, &LazyOptions::default());
/// assert!(outcome.is_valid());
/// assert!(stats.iterations >= 1);
/// ```
///
/// # Panics
///
/// Panics if a counterexample fails verification (internal soundness bug).
pub fn decide_lazy(
    tm: &mut TermManager,
    phi: TermId,
    options: &LazyOptions,
) -> (Outcome, LazyStats) {
    let _span = sufsat_obs::span_with!("baselines.lazy", dag = tm.dag_size(phi));
    let start = Instant::now();
    let mut stats = LazyStats::default();

    let elim = eliminate(tm, phi);
    let f = elim.formula;

    // Boolean abstraction: atoms and Boolean constants become circuit
    // inputs; the propositional skeleton is built on top.
    let mut circuit = Circuit::new();
    let mut atom_sig: HashMap<TermId, Signal> = HashMap::new();
    let mut bool_sig_of_sym: HashMap<sufsat_suf::BoolSym, Signal> = HashMap::new();
    let mut node_sig: HashMap<TermId, Signal> = HashMap::new();
    for id in tm.postorder(f) {
        if tm.sort(id) != sufsat_suf::Sort::Bool {
            continue;
        }
        let sig = match tm.term(id) {
            Term::True => Signal::TRUE,
            Term::False => Signal::FALSE,
            Term::Not(a) => !node_sig[a],
            Term::And(a, b) => {
                let (x, y) = (node_sig[a], node_sig[b]);
                circuit.and(x, y)
            }
            Term::Or(a, b) => {
                let (x, y) = (node_sig[a], node_sig[b]);
                circuit.or(x, y)
            }
            Term::Implies(a, b) => {
                let (x, y) = (node_sig[a], node_sig[b]);
                circuit.implies(x, y)
            }
            Term::Iff(a, b) => {
                let (x, y) = (node_sig[a], node_sig[b]);
                circuit.xnor(x, y)
            }
            Term::IteBool(c, t, e) => {
                let (sc, st, se) = (node_sig[c], node_sig[t], node_sig[e]);
                circuit.mux(sc, st, se)
            }
            Term::BoolVar(b) => *bool_sig_of_sym.entry(*b).or_insert_with(|| circuit.input()),
            Term::Eq(..) | Term::Lt(..) => {
                let s = circuit.input();
                atom_sig.insert(id, s);
                s
            }
            Term::PApp(..) => panic!("applications must be eliminated"),
            _ => unreachable!("integer node filtered"),
        };
        node_sig.insert(id, sig);
    }

    // Tautology clauses force a SAT variable for every abstraction input so
    // that conflict clauses can always mention them.
    let var_pins: Vec<Vec<Signal>> = atom_sig
        .values()
        .chain(bool_sig_of_sym.values())
        .map(|&s| vec![s, !s])
        .collect();

    let mut solver = Solver::new();
    let map = load_into_solver(
        &circuit,
        &[!node_sig[&f]],
        &var_pins,
        CnfMode::Tseitin,
        &mut solver,
    );

    // All integer constants of the formula (for completing models).
    let all_int_vars: Vec<VarSym> = {
        let mut vs: HashSet<VarSym> = HashSet::new();
        for id in tm.postorder(f) {
            if let Term::IntVar(v) = tm.term(id) {
                vs.insert(*v);
            }
        }
        let mut vs: Vec<VarSym> = vs.into_iter().collect();
        vs.sort_unstable();
        vs
    };

    loop {
        if let Some(limit) = options.timeout {
            let elapsed = start.elapsed();
            if elapsed >= limit {
                stats.time = elapsed;
                return (Outcome::Unknown(StopReason::Timeout), stats);
            }
            solver.set_timeout(Some(limit - elapsed));
        }
        if stats.iterations >= options.max_iterations {
            stats.time = start.elapsed();
            return (Outcome::Unknown(StopReason::ConflictBudget), stats);
        }
        if options.simplify_period > 0
            && stats.iterations > 0
            && stats.iterations % options.simplify_period == 0
        {
            solver.simplify();
            stats.simplify_calls += 1;
            sufsat_obs::event!(
                "baselines.lazy.simplify",
                iteration = stats.iterations,
                refinement_clauses = stats.refinement_clauses,
            );
        }
        stats.iterations += 1;
        match solver.solve() {
            SolveResult::Unsat => {
                stats.time = start.elapsed();
                return (Outcome::Valid, stats);
            }
            SolveResult::Unknown(_) => {
                stats.time = start.elapsed();
                return (Outcome::Unknown(StopReason::Timeout), stats);
            }
            SolveResult::Sat => {}
        }

        // Read the abstraction assignment.
        let value_of_sig = |s: Signal| -> bool {
            map.lit(s)
                .and_then(|l| solver.model_lit_value(l))
                .unwrap_or(false)
        };
        let atom_vals: HashMap<TermId, bool> = atom_sig
            .iter()
            .map(|(&id, &s)| (id, value_of_sig(s)))
            .collect();
        let bool_vals: HashMap<sufsat_suf::BoolSym, bool> = bool_sig_of_sym
            .iter()
            .map(|(&b, &s)| (b, value_of_sig(s)))
            .collect();

        // Extract ground terms per atom side under this assignment and
        // build the theory problem.
        stats.theory_checks += 1;
        let mut bounds: Vec<Bound> = Vec::new();
        let mut diseqs: Vec<Disequality> = Vec::new();
        // tag -> the atoms whose model values justify the constraint.
        let mut tag_support: Vec<Vec<(TermId, bool)>> = Vec::new();
        let mut beval = BoolEval {
            tm,
            atom_vals: &atom_vals,
            bool_vals: &bool_vals,
            memo: HashMap::new(),
        };
        let atoms: Vec<(TermId, bool)> = atom_vals.iter().map(|(&id, &v)| (id, v)).collect();
        for &(atom, value) in &atoms {
            let (op_is_eq, lhs, rhs) = match tm.term(atom) {
                Term::Eq(a, b) => (true, *a, *b),
                Term::Lt(a, b) => (false, *a, *b),
                _ => unreachable!(),
            };
            let (g1, mut support1) = beval.ground_of(lhs);
            let (g2, support2) = beval.ground_of(rhs);
            support1.extend(support2);
            support1.push((atom, value));
            if g1.var == g2.var {
                // Constant atom: if the model disagrees with arithmetic,
                // block this assignment immediately via a conflict clause.
                let truth = if op_is_eq {
                    g1.offset == g2.offset
                } else {
                    g1.offset < g2.offset
                };
                if truth != value {
                    // Encode as an always-violated pseudo-constraint: the
                    // clause support alone suffices.
                    let tag = tag_support.len();
                    tag_support.push(support1);
                    // x - x <= -1 is unsatisfiable.
                    bounds.push(Bound {
                        x: g1.var,
                        y: g1.var,
                        c: -1,
                        tag,
                    });
                }
                continue;
            }
            let tag = tag_support.len();
            tag_support.push(support1);
            match (op_is_eq, value) {
                (true, true) => {
                    let d = g2.offset - g1.offset;
                    bounds.push(Bound {
                        x: g1.var,
                        y: g2.var,
                        c: d,
                        tag,
                    });
                    bounds.push(Bound {
                        x: g2.var,
                        y: g1.var,
                        c: -d,
                        tag,
                    });
                }
                (true, false) => {
                    diseqs.push(Disequality {
                        x: g1.var,
                        y: g2.var,
                        c: g2.offset - g1.offset,
                        tag,
                    });
                }
                (false, true) => {
                    bounds.push(Bound {
                        x: g1.var,
                        y: g2.var,
                        c: g2.offset - g1.offset - 1,
                        tag,
                    });
                }
                (false, false) => {
                    // !(g1 < g2)  <=>  g2 - g1 <= k1 - k2.
                    bounds.push(Bound {
                        x: g2.var,
                        y: g1.var,
                        c: g1.offset - g2.offset,
                        tag,
                    });
                }
            }
        }

        let mut split_budget = 200_000usize;
        let theory = match solve_with_disequalities_budgeted(
            &bounds,
            &diseqs,
            &all_int_vars,
            &mut split_budget,
        ) {
            Some(result) => result,
            None => {
                stats.time = start.elapsed();
                return (Outcome::Unknown(StopReason::Timeout), stats);
            }
        };
        match theory {
            DiffResult::Sat(model) => {
                let mut cex = SepAssignment::default();
                cex.ints.extend(model);
                cex.bools.extend(bool_vals.iter());
                assert!(
                    !cex.evaluate(tm, f),
                    "internal soundness bug in the lazy procedure: theory \
                     model does not falsify the formula"
                );
                stats.time = start.elapsed();
                return (Outcome::Invalid(cex), stats);
            }
            DiffResult::Unsat(core) => {
                // Conflict clause: block the combination of atom and
                // Boolean-constant values (ITE-path supports) behind the
                // core.
                let mut blocked: HashMap<TermId, bool> = HashMap::new();
                for tag in core {
                    for &(atom, value) in &tag_support[tag] {
                        blocked.insert(atom, value);
                    }
                }
                let clause: Vec<sufsat_sat::Lit> = blocked
                    .iter()
                    .map(|(&node, &value)| {
                        let sig = match tm.term(node) {
                            Term::BoolVar(b) => bool_sig_of_sym[b],
                            _ => atom_sig[&node],
                        };
                        let lit = map.lit(sig).expect("abstraction inputs are pinned");
                        if value {
                            !lit
                        } else {
                            lit
                        }
                    })
                    .collect();
                stats.refinement_clauses += 1;
                solver.add_clause(clause);
            }
        }
    }
}

/// Evaluates Boolean terms under an abstraction assignment (atoms and
/// Boolean constants have fixed values; ITE conditions are formulas over
/// them), and extracts the ground term each integer term denotes.
struct BoolEval<'a> {
    tm: &'a TermManager,
    atom_vals: &'a HashMap<TermId, bool>,
    bool_vals: &'a HashMap<sufsat_suf::BoolSym, bool>,
    memo: HashMap<TermId, bool>,
}

impl BoolEval<'_> {
    fn eval(&mut self, t: TermId) -> bool {
        if let Some(&v) = self.memo.get(&t) {
            return v;
        }
        let v = match self.tm.term(t) {
            Term::True => true,
            Term::False => false,
            Term::Not(a) => !self.eval(*a),
            Term::And(a, b) => {
                let (a, b) = (*a, *b);
                self.eval(a) && self.eval(b)
            }
            Term::Or(a, b) => {
                let (a, b) = (*a, *b);
                self.eval(a) || self.eval(b)
            }
            Term::Implies(a, b) => {
                let (a, b) = (*a, *b);
                !self.eval(a) || self.eval(b)
            }
            Term::Iff(a, b) => {
                let (a, b) = (*a, *b);
                self.eval(a) == self.eval(b)
            }
            Term::IteBool(c, x, y) => {
                let (c, x, y) = (*c, *x, *y);
                if self.eval(c) {
                    self.eval(x)
                } else {
                    self.eval(y)
                }
            }
            Term::BoolVar(b) => self.bool_vals.get(b).copied().unwrap_or(false),
            Term::Eq(..) | Term::Lt(..) => self.atom_vals.get(&t).copied().unwrap_or(false),
            Term::PApp(..) => panic!("applications must be eliminated"),
            _ => unreachable!("integer node in Boolean evaluation"),
        };
        self.memo.insert(t, v);
        v
    }

    /// The ground term `t` denotes under the abstraction assignment, plus
    /// the support: atoms/constants inside visited ITE conditions whose
    /// values determined the path.
    fn ground_of(&mut self, t: TermId) -> (GroundTerm, Vec<(TermId, bool)>) {
        let mut support: Vec<(TermId, bool)> = Vec::new();
        let mut offset = 0i64;
        let mut cur = t;
        loop {
            match self.tm.term(cur) {
                Term::IntVar(v) => {
                    return (GroundTerm { var: *v, offset }, support);
                }
                Term::Succ(a) => {
                    offset += 1;
                    cur = *a;
                }
                Term::Pred(a) => {
                    offset -= 1;
                    cur = *a;
                }
                Term::IteInt(c, x, y) => {
                    let (c, x, y) = (*c, *x, *y);
                    let cond = self.eval(c);
                    self.collect_support(c, &mut support);
                    cur = if cond { x } else { y };
                }
                _ => unreachable!("non-integer term in ground extraction"),
            }
        }
    }

    /// Collects the model values of all atoms and Boolean constants inside
    /// a condition (conservative support for conflict clauses). Boolean
    /// constants matter as much as atoms: omitting a `BoolVar` that picked
    /// an ITE branch would let the conflict clause block the other branch
    /// too, losing counterexamples.
    fn collect_support(&mut self, cond: TermId, out: &mut Vec<(TermId, bool)>) {
        for id in self.tm.postorder(cond) {
            match self.tm.term(id) {
                Term::Eq(..) | Term::Lt(..) => {
                    let v = self.atom_vals.get(&id).copied().unwrap_or(false);
                    out.push((id, v));
                }
                Term::BoolVar(b) => {
                    let v = self.bool_vals.get(b).copied().unwrap_or(false);
                    out.push((id, v));
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lazy(tm: &mut TermManager, phi: TermId) -> (Outcome, LazyStats) {
        decide_lazy(tm, phi, &LazyOptions::default())
    }

    #[test]
    fn totality_is_valid() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let lt = tm.mk_lt(x, y);
        let ge = tm.mk_ge(x, y);
        let phi = tm.mk_or(lt, ge);
        let (outcome, _) = lazy(&mut tm, phi);
        assert!(outcome.is_valid());
    }

    #[test]
    fn refinement_is_needed_for_transitivity() {
        // (x<y && y<z) => x<z: the first abstraction assignment (x<y, y<z,
        // !(x<z)) is propositionally fine but theory-inconsistent, so at
        // least one refinement clause is required.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let xy = tm.mk_lt(x, y);
        let yz = tm.mk_lt(y, z);
        let hyp = tm.mk_and(xy, yz);
        let xz = tm.mk_lt(x, z);
        let phi = tm.mk_implies(hyp, xz);
        let (outcome, stats) = lazy(&mut tm, phi);
        assert!(outcome.is_valid());
        assert!(stats.refinement_clauses >= 1, "{stats:?}");
    }

    #[test]
    fn periodic_simplify_runs_and_preserves_the_answer() {
        // A transitivity chain needs several refinement rounds; with a
        // period of 1, every round but the first is preceded by a
        // simplify pass, and the verdict must be unaffected.
        let mut tm = TermManager::new();
        let vs: Vec<TermId> = (0..5).map(|i| tm.int_var(&format!("c{i}"))).collect();
        let mut hyp = tm.mk_true();
        for w in vs.windows(2) {
            let lt = tm.mk_lt(w[0], w[1]);
            hyp = tm.mk_and(hyp, lt);
        }
        let conc = tm.mk_lt(vs[0], vs[4]);
        let phi = tm.mk_implies(hyp, conc);
        let options = LazyOptions {
            simplify_period: 1,
            ..LazyOptions::default()
        };
        let (outcome, stats) = decide_lazy(&mut tm, phi, &options);
        assert!(outcome.is_valid());
        assert!(stats.simplify_calls >= 1, "{stats:?}");
        assert_eq!(stats.simplify_calls, stats.iterations - 1, "{stats:?}");
    }

    #[test]
    fn counterexamples_are_verified() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let phi = tm.mk_lt(x, y);
        let (outcome, _) = lazy(&mut tm, phi);
        let Outcome::Invalid(cex) = outcome else {
            panic!("expected invalid");
        };
        assert!(!cex.evaluate(&tm, phi));
    }

    #[test]
    fn functions_are_handled_via_elimination() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let hyp = tm.mk_eq(x, y);
        let conc = tm.mk_eq(fx, fy);
        let phi = tm.mk_implies(hyp, conc);
        let (outcome, _) = lazy(&mut tm, phi);
        assert!(outcome.is_valid());
    }

    #[test]
    fn ite_conditions_contribute_support() {
        // max(x, y) >= y: needs the ITE path condition in conflicts.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let c = tm.mk_lt(x, y);
        let max = tm.mk_ite_int(c, y, x);
        let phi = tm.mk_ge(max, y);
        let (outcome, _) = lazy(&mut tm, phi);
        assert!(outcome.is_valid());
    }

    #[test]
    fn boolean_ite_conditions_contribute_support() {
        // Found by differential fuzzing (corpus seed 1, case 450):
        // ite(b, x, y) < y+1 is falsifiable (b with a large x), but a
        // conflict clause that omits `b` from the support of the
        // theory-refuted b=false branch wrongly refutes both branches.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let b = tm.bool_var("b");
        let ite = tm.mk_ite_int(b, x, y);
        let sy = tm.mk_succ(y);
        let phi = tm.mk_lt(ite, sy);
        let (outcome, _) = lazy(&mut tm, phi);
        let Outcome::Invalid(cex) = outcome else {
            panic!("ite(b, x, y) < y+1 must be falsifiable, got valid/unknown");
        };
        assert!(!cex.evaluate(&tm, phi));
    }

    #[test]
    fn iteration_cap_reports_unknown() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let xy = tm.mk_lt(x, y);
        let yz = tm.mk_lt(y, z);
        let hyp = tm.mk_and(xy, yz);
        let xz = tm.mk_lt(x, z);
        let phi = tm.mk_implies(hyp, xz);
        let opts = LazyOptions {
            max_iterations: 1,
            ..LazyOptions::default()
        };
        let (outcome, _) = decide_lazy(&mut tm, phi, &opts);
        assert_eq!(outcome, Outcome::Unknown(StopReason::ConflictBudget));
    }
}
