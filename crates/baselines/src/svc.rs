//! A structural case-splitting validity checker (the paper's SVC
//! comparison point, Figure 6).
//!
//! SVC-style checkers decide validity by recursively splitting on atomic
//! formulas and checking the accumulated literal set with a first-order
//! solver at the leaves. Conjunctions of separation predicates reduce to a
//! single shortest-path check — which is why the paper observes SVC winning
//! on small conjunctive formulas — while disjunction-heavy formulas force
//! an exponential number of case splits, matching SVC's blow-up in
//! Figure 6.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use sufsat_core::{Outcome, StopReason};
use sufsat_seplog::{
    expand_ites_bounded, solve_with_disequalities_budgeted, Bound, DiffResult, Disequality,
    GroundTerm, SepAssignment,
};
use sufsat_suf::{eliminate, BoolSym, Term, TermId, TermManager, VarSym};

/// Options for the case-splitting checker.
#[derive(Debug, Clone, PartialEq)]
pub struct SvcOptions {
    /// Maximum number of case splits before giving up.
    pub max_splits: usize,
    /// Wall-clock timeout.
    pub timeout: Option<Duration>,
}

impl Default for SvcOptions {
    fn default() -> SvcOptions {
        SvcOptions {
            max_splits: 50_000_000,
            timeout: None,
        }
    }
}

/// Measurements of one case-splitting run.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct SvcStats {
    /// Case splits performed.
    pub splits: usize,
    /// Theory checks performed.
    pub theory_checks: usize,
    /// Total wall time.
    pub time: Duration,
}

/// Decides validity of an SUF formula by recursive case splitting.
///
/// # Examples
///
/// ```
/// use sufsat_baselines::{decide_svc, SvcOptions};
/// use sufsat_suf::TermManager;
///
/// let mut tm = TermManager::new();
/// let x = tm.int_var("x");
/// let y = tm.int_var("y");
/// let z = tm.int_var("z");
/// let xy = tm.mk_lt(x, y);
/// let yz = tm.mk_lt(y, z);
/// let hyp = tm.mk_and(xy, yz);
/// let xz = tm.mk_lt(x, z);
/// let phi = tm.mk_implies(hyp, xz);
/// let (outcome, _) = decide_svc(&mut tm, phi, &SvcOptions::default());
/// assert!(outcome.is_valid());
/// ```
///
/// # Panics
///
/// Panics if a counterexample fails verification (internal soundness bug).
pub fn decide_svc(tm: &mut TermManager, phi: TermId, options: &SvcOptions) -> (Outcome, SvcStats) {
    let _span = sufsat_obs::span_with!("baselines.svc", dag = tm.dag_size(phi));
    let start = Instant::now();
    let mut stats = SvcStats::default();

    let elim = eliminate(tm, phi);
    // Expand integer ITEs so that every atom is ground. The expansion is
    // worst-case exponential — the structural blow-up behind SVC's Figure 6
    // losses — so it runs under a node budget.
    let Some(expanded) = expand_ites_bounded(tm, elim.formula, 2_000_000) else {
        stats.time = start.elapsed();
        return (Outcome::Unknown(StopReason::Timeout), stats);
    };

    // Split points: atoms and Boolean constants, in bottom-up order.
    let mut split_points: Vec<TermId> = Vec::new();
    for id in tm.postorder(expanded) {
        match tm.term(id) {
            // Same-variable atoms are decided by arithmetic; splitting on
            // them would be wasted work.
            Term::Eq(a, b) | Term::Lt(a, b)
                if ground_term(tm, *a).var != ground_term(tm, *b).var => {
                    split_points.push(id);
                }
            Term::BoolVar(_) => split_points.push(id),
            _ => {}
        }
    }
    // All integer constants (for completing counterexample models).
    let all_int_vars: Vec<VarSym> = {
        let mut vs: Vec<VarSym> = tm
            .postorder(expanded)
            .iter()
            .filter_map(|&id| match tm.term(id) {
                Term::IntVar(v) => Some(*v),
                _ => None,
            })
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    };

    let mut search = Search {
        tm,
        expanded,
        split_points: &split_points,
        all_int_vars: &all_int_vars,
        assignment: HashMap::new(),
        stats: &mut stats,
        deadline: options.timeout.map(|t| start + t),
        max_splits: options.max_splits,
    };
    let result = search.run(0);
    stats.time = start.elapsed();
    let outcome = match result {
        Ok(None) => Outcome::Valid,
        Ok(Some(cex)) => {
            assert!(
                !cex.evaluate(tm, expanded),
                "internal soundness bug in the case-splitting checker"
            );
            Outcome::Invalid(cex)
        }
        Err(reason) => Outcome::Unknown(reason),
    };
    (outcome, stats)
}

struct Search<'a> {
    tm: &'a TermManager,
    expanded: TermId,
    split_points: &'a [TermId],
    all_int_vars: &'a [VarSym],
    /// Current partial assignment to split points.
    assignment: HashMap<TermId, bool>,
    stats: &'a mut SvcStats,
    deadline: Option<Instant>,
    max_splits: usize,
}

impl Search<'_> {
    /// Depth-first search over split points; returns a counterexample if a
    /// theory-consistent falsifying branch exists.
    fn run(&mut self, next: usize) -> Result<Option<SepAssignment>, StopReason> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(StopReason::Timeout);
            }
        }
        // Three-valued evaluation under the current partial assignment.
        match self.eval_partial(self.expanded) {
            Some(true) => return Ok(None), // branch cannot falsify
            Some(false) => {
                // Candidate falsifying branch: theory-check the literals.
                return Ok(self.theory_model());
            }
            None => {}
        }
        // Pick the next unassigned split point.
        let mut idx = next;
        while idx < self.split_points.len() && self.assignment.contains_key(&self.split_points[idx])
        {
            idx += 1;
        }
        if idx == self.split_points.len() {
            // Fully assigned but three-valued eval returned None: cannot
            // happen (all leaves decided).
            unreachable!("all split points assigned yet formula undecided");
        }
        let point = self.split_points[idx];
        for value in [false, true] {
            if self.stats.splits >= self.max_splits {
                return Err(StopReason::ConflictBudget);
            }
            self.stats.splits += 1;
            self.assignment.insert(point, value);
            // Early theory pruning: skip branches whose literal set is
            // already inconsistent.
            if self.literals_consistent() {
                if let Some(cex) = self.run(idx + 1)? {
                    self.assignment.remove(&point);
                    return Ok(Some(cex));
                }
            }
            self.assignment.remove(&point);
        }
        Ok(None)
    }

    /// Three-valued evaluation of the formula under the partial assignment.
    fn eval_partial(&self, root: TermId) -> Option<bool> {
        let mut memo: HashMap<TermId, Option<bool>> = HashMap::new();
        for id in self.tm.postorder(root) {
            if self.tm.sort(id) != sufsat_suf::Sort::Bool {
                continue;
            }
            let v: Option<bool> = match self.tm.term(id) {
                Term::True => Some(true),
                Term::False => Some(false),
                Term::Not(a) => memo[a].map(|b| !b),
                Term::And(a, b) => match (memo[a], memo[b]) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                },
                Term::Or(a, b) => match (memo[a], memo[b]) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                },
                Term::Implies(a, b) => match (memo[a], memo[b]) {
                    (Some(false), _) | (_, Some(true)) => Some(true),
                    (Some(true), Some(false)) => Some(false),
                    _ => None,
                },
                Term::Iff(a, b) => match (memo[a], memo[b]) {
                    (Some(x), Some(y)) => Some(x == y),
                    _ => None,
                },
                Term::IteBool(c, t, e) => match memo[c] {
                    Some(true) => memo[t],
                    Some(false) => memo[e],
                    None => match (memo[t], memo[e]) {
                        (Some(x), Some(y)) if x == y => Some(x),
                        _ => None,
                    },
                },
                Term::BoolVar(_) => self.assignment.get(&id).copied(),
                Term::Eq(..) | Term::Lt(..) => match self.constant_atom_truth(id) {
                    Some(t) => Some(t),
                    None => self.assignment.get(&id).copied(),
                },
                Term::PApp(..) => panic!("applications must be eliminated"),
                _ => unreachable!(),
            };
            memo.insert(id, v);
        }
        memo[&root]
    }

    /// Truth of same-variable ground atoms (decided by arithmetic alone).
    fn constant_atom_truth(&self, atom: TermId) -> Option<bool> {
        let (is_eq, a, b) = match self.tm.term(atom) {
            Term::Eq(a, b) => (true, *a, *b),
            Term::Lt(a, b) => (false, *a, *b),
            _ => return None,
        };
        let g1 = ground_term(self.tm, a);
        let g2 = ground_term(self.tm, b);
        if g1.var == g2.var {
            Some(if is_eq {
                g1.offset == g2.offset
            } else {
                g1.offset < g2.offset
            })
        } else {
            None
        }
    }

    fn constraints(&mut self) -> (Vec<Bound>, Vec<Disequality>) {
        let mut bounds = Vec::new();
        let mut diseqs = Vec::new();
        for (tag, (&atom, &value)) in self.assignment.iter().enumerate() {
            let (is_eq, a, b) = match self.tm.term(atom) {
                Term::Eq(a, b) => (true, *a, *b),
                Term::Lt(a, b) => (false, *a, *b),
                Term::BoolVar(_) => continue,
                _ => unreachable!(),
            };
            let g1 = ground_term(self.tm, a);
            let g2 = ground_term(self.tm, b);
            if g1.var == g2.var {
                continue; // constant atoms never enter the assignment
            }
            match (is_eq, value) {
                (true, true) => {
                    let d = g2.offset - g1.offset;
                    bounds.push(Bound {
                        x: g1.var,
                        y: g2.var,
                        c: d,
                        tag,
                    });
                    bounds.push(Bound {
                        x: g2.var,
                        y: g1.var,
                        c: -d,
                        tag,
                    });
                }
                (true, false) => diseqs.push(Disequality {
                    x: g1.var,
                    y: g2.var,
                    c: g2.offset - g1.offset,
                    tag,
                }),
                (false, true) => bounds.push(Bound {
                    x: g1.var,
                    y: g2.var,
                    c: g2.offset - g1.offset - 1,
                    tag,
                }),
                (false, false) => bounds.push(Bound {
                    x: g2.var,
                    y: g1.var,
                    c: g1.offset - g2.offset,
                    tag,
                }),
            }
        }
        (bounds, diseqs)
    }

    fn literals_consistent(&mut self) -> bool {
        let (bounds, diseqs) = self.constraints();
        self.stats.theory_checks += 1;
        let mut budget = 50_000usize;
        matches!(
            solve_with_disequalities_budgeted(&bounds, &diseqs, &[], &mut budget),
            // A budget overrun keeps the branch alive (conservative).
            Some(DiffResult::Sat(_)) | None
        )
    }

    fn theory_model(&mut self) -> Option<SepAssignment> {
        let (bounds, diseqs) = self.constraints();
        self.stats.theory_checks += 1;
        let mut budget = 200_000usize;
        let Some(result) =
            solve_with_disequalities_budgeted(&bounds, &diseqs, self.all_int_vars, &mut budget)
        else {
            // Treated as inconsistent for this leaf; the search continues
            // (the run-level timeout bounds overall work).
            return None;
        };
        match result {
            DiffResult::Sat(model) => {
                let mut cex = SepAssignment::default();
                cex.ints.extend(model);
                for (&point, &value) in &self.assignment {
                    if let Term::BoolVar(b) = self.tm.term(point) {
                        let b: BoolSym = *b;
                        cex.bools.insert(b, value);
                    }
                }
                Some(cex)
            }
            DiffResult::Unsat(_) => None,
        }
    }
}

fn ground_term(tm: &TermManager, mut t: TermId) -> GroundTerm {
    let mut offset = 0i64;
    loop {
        match tm.term(t) {
            Term::IntVar(v) => return GroundTerm { var: *v, offset },
            Term::Succ(a) => {
                offset += 1;
                t = *a;
            }
            Term::Pred(a) => {
                offset -= 1;
                t = *a;
            }
            _ => panic!("atom side is not ground; run expand_ites first"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(tm: &mut TermManager, phi: TermId) -> (Outcome, SvcStats) {
        decide_svc(tm, phi, &SvcOptions::default())
    }

    #[test]
    fn transitivity_is_valid() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let xy = tm.mk_lt(x, y);
        let yz = tm.mk_lt(y, z);
        let hyp = tm.mk_and(xy, yz);
        let xz = tm.mk_lt(x, z);
        let phi = tm.mk_implies(hyp, xz);
        let (outcome, _) = svc(&mut tm, phi);
        assert!(outcome.is_valid());
    }

    #[test]
    fn conjunctions_need_few_splits() {
        // A conjunction at the top: ¬φ is a single theory problem, so the
        // split count stays linear in the number of atoms.
        let mut tm = TermManager::new();
        let vars: Vec<_> = (0..6).map(|i| tm.int_var(&format!("v{i}"))).collect();
        let mut chain = Vec::new();
        for w in vars.windows(2) {
            chain.push(tm.mk_lt(w[0], w[1]));
        }
        let hyp = tm.mk_and_many(&chain);
        let conc = tm.mk_lt(vars[0], vars[5]);
        let phi = tm.mk_implies(hyp, conc);
        let (outcome, stats) = svc(&mut tm, phi);
        assert!(outcome.is_valid());
        assert!(stats.splits <= 64, "splits = {}", stats.splits);
    }

    #[test]
    fn counterexamples_verify() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let xy = tm.mk_lt(x, y);
        let xz = tm.mk_lt(x, z);
        let phi = tm.mk_implies(xy, xz);
        let (outcome, _) = svc(&mut tm, phi);
        let Outcome::Invalid(cex) = outcome else {
            panic!("expected invalid");
        };
        assert!(!cex.evaluate(&tm, phi));
    }

    #[test]
    fn ite_and_functions_are_supported() {
        let mut tm = TermManager::new();
        let f = tm.declare_fun("f", 1);
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let fx = tm.mk_app(f, vec![x]);
        let fy = tm.mk_app(f, vec![y]);
        let c = tm.mk_lt(x, y);
        let m = tm.mk_ite_int(c, fx, fy);
        // ITE picks one of f(x), f(y); in either case m = f(x) or m = f(y).
        let e1 = tm.mk_eq(m, fx);
        let e2 = tm.mk_eq(m, fy);
        let phi = tm.mk_or(e1, e2);
        let (outcome, _) = svc(&mut tm, phi);
        assert!(outcome.is_valid());
    }

    #[test]
    fn split_budget_reports_unknown() {
        let mut tm = TermManager::new();
        let vars: Vec<_> = (0..6).map(|i| tm.int_var(&format!("v{i}"))).collect();
        let mut atoms = Vec::new();
        for i in 0..vars.len() {
            for j in i + 1..vars.len() {
                atoms.push(tm.mk_eq(vars[i], vars[j]));
            }
        }
        let phi = tm.mk_or_many(&atoms);
        let opts = SvcOptions {
            max_splits: 1,
            timeout: None,
        };
        let (outcome, _) = decide_svc(&mut tm, phi, &opts);
        assert!(matches!(outcome, Outcome::Unknown(_)) || matches!(outcome, Outcome::Invalid(_)));
    }

    #[test]
    fn bool_vars_split_without_theory() {
        let mut tm = TermManager::new();
        let b = tm.bool_var("b");
        let nb = tm.mk_not(b);
        let phi = tm.mk_or(b, nb);
        let (outcome, _) = svc(&mut tm, phi);
        assert!(outcome.is_valid());
        let (outcome2, _) = svc(&mut tm, b);
        assert!(matches!(outcome2, Outcome::Invalid(_)));
    }
}
