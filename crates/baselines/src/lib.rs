//! Baseline decision procedures for SUF: the comparison points of the
//! paper's Figure 6.
//!
//! * [`decide_lazy`] — a lazy SAT-based procedure in the style of CVC:
//!   Boolean abstraction of atoms, incremental SAT, theory checks with
//!   difference logic, and refinement by minimal conflict clauses.
//! * [`decide_svc`] — a structural case-splitting validity checker in the
//!   style of SVC: recursive splitting on atoms with theory pruning, fast
//!   on conjunctions (a single shortest-path problem) and exponential on
//!   disjunction-heavy formulas.
//!
//! Both return the same [`Outcome`](sufsat_core::Outcome) type as the main
//! procedure so the benchmark harness can compare them directly.

#![warn(missing_docs)]

mod lazy;
mod svc;

pub use lazy::{decide_lazy, LazyOptions, LazyStats};
pub use svc::{decide_svc, SvcOptions, SvcStats};

#[cfg(test)]
mod prop_tests {
    use super::*;
    use std::collections::HashSet;
    use sufsat_prng::Prng;
    use sufsat_core::{decide, DecideOptions, EncodingMode, Outcome};
    use sufsat_seplog::{brute_force_validity, OracleResult, SepAnalysis};
    use sufsat_suf::{TermId, TermManager};

    /// Random separation formulas (same recipe scheme as the other crates).
    fn build_random_sep(tm: &mut TermManager, recipe: &[(u8, u8, u8)], n_vars: usize) -> TermId {
        let vars: Vec<TermId> = (0..n_vars).map(|i| tm.int_var(&format!("x{i}"))).collect();
        let mut ints: Vec<TermId> = vars;
        let mut bools: Vec<TermId> = Vec::new();
        for &(op, i, j) in recipe {
            let (i, j) = (i as usize, j as usize);
            match op % 8 {
                0 => {
                    let a = ints[i % ints.len()];
                    let b = ints[j % ints.len()];
                    let t = tm.mk_eq(a, b);
                    bools.push(t);
                }
                1 => {
                    let a = ints[i % ints.len()];
                    let b = ints[j % ints.len()];
                    let t = tm.mk_lt(a, b);
                    bools.push(t);
                }
                2 if !bools.is_empty() => {
                    let a = bools[i % bools.len()];
                    let t = tm.mk_not(a);
                    bools.push(t);
                }
                3 if bools.len() >= 2 => {
                    let a = bools[i % bools.len()];
                    let b = bools[j % bools.len()];
                    let t = tm.mk_and(a, b);
                    bools.push(t);
                }
                4 if bools.len() >= 2 => {
                    let a = bools[i % bools.len()];
                    let b = bools[j % bools.len()];
                    let t = tm.mk_or(a, b);
                    bools.push(t);
                }
                5 => {
                    let a = ints[i % ints.len()];
                    let t = if j % 2 == 0 {
                        tm.mk_succ(a)
                    } else {
                        tm.mk_pred(a)
                    };
                    ints.push(t);
                }
                6 if !bools.is_empty() => {
                    let c = bools[i % bools.len()];
                    let a = ints[i % ints.len()];
                    let b = ints[j % ints.len()];
                    let t = tm.mk_ite_int(c, a, b);
                    ints.push(t);
                }
                _ => {
                    let a = ints[i % ints.len()];
                    let b = ints[j % ints.len()];
                    let t = tm.mk_le(a, b);
                    bools.push(t);
                }
            }
        }
        match bools.last() {
            Some(&t) => t,
            None => tm.mk_true(),
        }
    }

    fn random_recipe(rng: &mut Prng) -> Vec<(u8, u8, u8)> {
        let len = rng.random_range(2usize..16);
        (0..len)
            .map(|_| (rng.random_u8(), rng.random_u8(), rng.random_u8()))
            .collect()
    }

    /// The lazy and SVC baselines agree with the oracle and with the
    /// eager hybrid procedure on random separation formulas.
    #[test]
    fn baselines_agree_with_oracle_and_hybrid() {
        let mut rng = Prng::seed_from_u64(0xba5e_0001);
        for _case in 0..32 {
            let recipe = random_recipe(&mut rng);
            let mut tm = TermManager::new();
            let phi = build_random_sep(&mut tm, &recipe, 3);
            let analysis = SepAnalysis::new(&tm, phi, &HashSet::new());
            let expected = match brute_force_validity(&tm, phi, &analysis, 1, 300_000) {
                OracleResult::Valid => true,
                OracleResult::Invalid(_) => false,
                OracleResult::TooLarge => continue,
            };
            let (lazy_out, _) = decide_lazy(&mut tm, phi, &LazyOptions::default());
            assert_eq!(lazy_out.is_valid(), expected, "lazy, recipe {recipe:?}");
            assert!(!matches!(lazy_out, Outcome::Unknown(_)));
            let (svc_out, _) = decide_svc(&mut tm, phi, &SvcOptions::default());
            assert_eq!(svc_out.is_valid(), expected, "svc, recipe {recipe:?}");
            assert!(!matches!(svc_out, Outcome::Unknown(_)));
            let hybrid = decide(
                &mut tm,
                phi,
                &DecideOptions::with_mode(EncodingMode::Hybrid(2)),
            );
            assert_eq!(
                hybrid.outcome.is_valid(),
                expected,
                "hybrid, recipe {recipe:?}"
            );
        }
    }
}
