//! `serve-bench` — load generator for the `sufsat-serve` daemon.
//!
//! Replays benchmark-suite `.suf` files against a server at configurable
//! concurrency and reports latency percentiles, throughput and the
//! admission-control overload rate.
//!
//! ```text
//! serve-bench [OPTIONS]
//!
//!     --addr HOST:PORT   drive an external daemon (default: spin an
//!                        in-process server and drive that)
//!     --workers N        in-process server worker threads (default 4)
//!     --queue-cap N      in-process server queue bound (default 64)
//!     --clients N        concurrent client connections (default 8)
//!     --requests N       requests per client (default: until --duration)
//!     --duration SECS    wall-clock budget per client (default 10)
//!     --timeout-ms N     per-request deadline (default 2000)
//!     --dir PATH         directory of .suf files (default benchmarks)
//!     --max-bytes N      skip files larger than N bytes (default 256k)
//!     --out PATH         write the JSON report here (default
//!                        BENCH_serve.json)
//!     --trace PATH       record a structured trace (in-process server
//!                        spans land in it too)
//!     --metrics-addr A   in-process server Prometheus listener address
//!                        (e.g. 127.0.0.1:9099); scrape GET /metrics
//!                        while the bench runs
//!     --zipf S           duplicate-heavy mode: draw workload files from
//!                        a Zipf(S) distribution instead of round-robin,
//!                        split latencies into cold (cache miss) and warm
//!                        (hit/coalesced) by the reply's `cache` field,
//!                        and hard-fail on any verdict flip for a file.
//!                        The report switches to `sufsat-cache-bench-v1`.
//!     --seed N           per-client PRNG seed base for --zipf (default 0)
//!     --check            with --zipf: exit 1 unless hit rate >= 0.5 and
//!                        warm p50 is at least 10x below cold p50
//! ```
//!
//! Exit code: 0 on success, 1 on a failed --check or a verdict flip,
//! 2 on usage/setup errors.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sufsat_obs::json::Json;
use sufsat_obs::HistogramBins;
use sufsat_serve::{render_json, reply_status, reply_verdict, Client, ServeOptions, Server};

struct Config {
    addr: Option<String>,
    workers: usize,
    queue_cap: usize,
    clients: usize,
    requests: Option<usize>,
    duration: Duration,
    timeout_ms: u64,
    dir: PathBuf,
    max_bytes: u64,
    out: PathBuf,
    trace: Option<String>,
    metrics_addr: Option<String>,
    zipf: Option<f64>,
    seed: u64,
    check: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            addr: None,
            workers: 4,
            queue_cap: 64,
            clients: 8,
            requests: None,
            duration: Duration::from_secs(10),
            timeout_ms: 2000,
            dir: PathBuf::from("benchmarks"),
            max_bytes: 256 * 1024,
            out: PathBuf::from("BENCH_serve.json"),
            trace: None,
            metrics_addr: None,
            zipf: None,
            seed: 0,
            check: false,
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("serve-bench: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Config {
    let mut config = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| die(&format!("{name} needs a value")));
        match arg.as_str() {
            "--addr" => config.addr = Some(value("--addr")),
            "--workers" => config.workers = value("--workers").parse().unwrap_or_else(|_| die("bad --workers")),
            "--queue-cap" => config.queue_cap = value("--queue-cap").parse().unwrap_or_else(|_| die("bad --queue-cap")),
            "--clients" => config.clients = value("--clients").parse().unwrap_or_else(|_| die("bad --clients")),
            "--requests" => config.requests = Some(value("--requests").parse().unwrap_or_else(|_| die("bad --requests"))),
            "--duration" => {
                let secs: f64 = value("--duration").parse().unwrap_or_else(|_| die("bad --duration"));
                config.duration = Duration::from_secs_f64(secs);
            }
            "--timeout-ms" => config.timeout_ms = value("--timeout-ms").parse().unwrap_or_else(|_| die("bad --timeout-ms")),
            "--dir" => config.dir = PathBuf::from(value("--dir")),
            "--max-bytes" => config.max_bytes = value("--max-bytes").parse().unwrap_or_else(|_| die("bad --max-bytes")),
            "--out" => config.out = PathBuf::from(value("--out")),
            "--trace" => config.trace = Some(value("--trace")),
            "--metrics-addr" => config.metrics_addr = Some(value("--metrics-addr")),
            "--zipf" => {
                let s: f64 = value("--zipf").parse().unwrap_or_else(|_| die("bad --zipf"));
                if !(s.is_finite() && s >= 0.0) {
                    die("bad --zipf: exponent must be finite and non-negative");
                }
                config.zipf = Some(s);
            }
            "--seed" => config.seed = value("--seed").parse().unwrap_or_else(|_| die("bad --seed")),
            "--check" => config.check = true,
            "--help" | "-h" => {
                println!("usage: serve-bench [--addr HOST:PORT] [--workers N] [--queue-cap N]");
                println!("                   [--clients N] [--requests N] [--duration SECS]");
                println!("                   [--timeout-ms N] [--dir PATH] [--max-bytes N]");
                println!("                   [--out PATH] [--trace PATH|stderr] [--metrics-addr HOST:PORT]");
                println!("                   [--zipf S] [--seed N] [--check]");
                std::process::exit(0);
            }
            other => die(&format!("unknown option `{other}`")),
        }
    }
    config
}

#[derive(Default)]
struct ClientTally {
    ok: u64,
    valid: u64,
    invalid: u64,
    unknown: u64,
    overloaded: u64,
    errors: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_coalesced: u64,
}

/// Zipf(s) sampler over ranks `0..n`: rank `r` has weight
/// `1/(r+1)^s`, drawn by binary search on the cumulative table.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut sufsat_prng::Prng) -> usize {
        let total = *self.cumulative.last().expect("non-empty workload");
        // 53 uniform mantissa bits are plenty for a workload-sized table.
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * total;
        self.cumulative.partition_point(|&c| c <= u).min(self.cumulative.len() - 1)
    }
}

fn main() {
    let config = parse_args();
    match &config.trace {
        Some(target) => {
            if let Err(e) = sufsat_obs::init_to(target) {
                die(&format!("cannot open trace target {target}: {e}"));
            }
        }
        None => {
            sufsat_obs::init_from_env();
        }
    }

    // Workload: every .suf file in the directory, size-capped, sorted by
    // name so runs are reproducible.
    let mut files: Vec<(String, String)> = Vec::new();
    let entries = std::fs::read_dir(&config.dir)
        .unwrap_or_else(|e| die(&format!("cannot read {}: {e}", config.dir.display())));
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "suf"))
        .collect();
    paths.sort();
    for path in paths {
        let meta = std::fs::metadata(&path);
        if meta.map(|m| m.len() > config.max_bytes).unwrap_or(true) {
            continue;
        }
        if let Ok(text) = std::fs::read_to_string(&path) {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            files.push((name, text));
        }
    }
    if files.is_empty() {
        die(&format!("no usable .suf files under {}", config.dir.display()));
    }
    let files = Arc::new(files);

    // The server: external, or an in-process one we own.
    let handle = if config.addr.is_some() {
        None
    } else {
        let opts = ServeOptions {
            workers: config.workers,
            queue_cap: config.queue_cap,
            metrics_addr: config.metrics_addr.clone(),
            ..ServeOptions::default()
        };
        Some(Server::bind("127.0.0.1:0", opts).unwrap_or_else(|e| die(&format!("bind: {e}"))))
    };
    let addr = config
        .addr
        .clone()
        .unwrap_or_else(|| handle.as_ref().unwrap().local_addr().to_string());
    if let Some(metrics) = handle.as_ref().and_then(|h| h.metrics_addr()) {
        eprintln!("serve-bench: Prometheus exposition on http://{metrics}/metrics");
    }

    eprintln!(
        "serve-bench: {} clients x {} against {} ({} workload files, timeout {} ms)",
        config.clients,
        config
            .requests
            .map(|n| format!("{n} requests"))
            .unwrap_or_else(|| format!("{:.1}s", config.duration.as_secs_f64())),
        addr,
        files.len(),
        config.timeout_ms,
    );

    let stop = Arc::new(AtomicBool::new(false));
    // Log-linear histograms shared by every client thread: recording is
    // a few relaxed atomics, so the load generator no longer pays a
    // per-request Vec push nor a final O(n log n) sort.
    let latency_hist = Arc::new(HistogramBins::new());
    let queue_wait_hist = Arc::new(HistogramBins::new());
    // Duplicate-heavy mode: cold (miss) and warm (hit/coalesced)
    // latencies land in separate histograms, and the first definitive
    // verdict per workload file is pinned — a later flip is a bug in the
    // cache, not noise, and fails the whole run.
    let cold_hist = Arc::new(HistogramBins::new());
    let warm_hist = Arc::new(HistogramBins::new());
    let first_verdicts = Arc::new(std::sync::Mutex::new(
        std::collections::HashMap::<usize, String>::new(),
    ));
    let verdict_flip = Arc::new(std::sync::Mutex::new(None::<String>));
    let zipf = config
        .zipf
        .map(|s| Arc::new(Zipf::new(files.len(), s)));
    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|s| {
        let mut joins = Vec::new();
        for client_idx in 0..config.clients {
            let files = Arc::clone(&files);
            let stop = Arc::clone(&stop);
            let latency_hist = Arc::clone(&latency_hist);
            let queue_wait_hist = Arc::clone(&queue_wait_hist);
            let cold_hist = Arc::clone(&cold_hist);
            let warm_hist = Arc::clone(&warm_hist);
            let first_verdicts = Arc::clone(&first_verdicts);
            let verdict_flip = Arc::clone(&verdict_flip);
            let zipf = zipf.clone();
            let addr = addr.clone();
            let requests = config.requests;
            let duration = config.duration;
            let timeout_ms = config.timeout_ms;
            let seed = config.seed;
            joins.push(s.spawn(move || {
                let mut tally = ClientTally::default();
                let mut client = match Client::connect(&*addr) {
                    Ok(c) => c,
                    Err(_) => return tally,
                };
                let mut rng = sufsat_prng::Prng::seed_from_u64(seed + client_idx as u64);
                let deadline = Instant::now() + duration;
                let mut sent = 0usize;
                // Stagger clients across the workload.
                let mut next_file = client_idx % files.len();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match requests {
                        Some(n) if sent >= n => break,
                        None if Instant::now() >= deadline => break,
                        _ => {}
                    }
                    let file_idx = match &zipf {
                        Some(z) => z.sample(&mut rng),
                        None => {
                            let idx = next_file;
                            next_file = (next_file + 1) % files.len();
                            idx
                        }
                    };
                    let (name, problem) = &files[file_idx];
                    let t0 = Instant::now();
                    let reply = client.decide(problem, Some(Duration::from_millis(timeout_ms)));
                    let lat = t0.elapsed().as_micros() as u64;
                    sent += 1;
                    match reply {
                        Ok(reply) => match reply_status(&reply) {
                            "ok" => {
                                tally.ok += 1;
                                latency_hist.record(lat);
                                if let Some(q) = reply.get("queue_us").and_then(Json::as_u64) {
                                    queue_wait_hist.record(q);
                                }
                                let verdict = reply_verdict(&reply);
                                match verdict {
                                    "valid" => tally.valid += 1,
                                    "invalid" => tally.invalid += 1,
                                    _ => tally.unknown += 1,
                                }
                                match reply.get("cache").and_then(Json::as_str) {
                                    Some("hit") => {
                                        tally.cache_hits += 1;
                                        warm_hist.record(lat);
                                    }
                                    Some("coalesced") => {
                                        tally.cache_coalesced += 1;
                                        warm_hist.record(lat);
                                    }
                                    _ => {
                                        tally.cache_misses += 1;
                                        cold_hist.record(lat);
                                    }
                                }
                                if verdict == "valid" || verdict == "invalid" {
                                    let mut seen =
                                        first_verdicts.lock().unwrap_or_else(|e| e.into_inner());
                                    let prior = seen
                                        .entry(file_idx)
                                        .or_insert_with(|| verdict.to_owned());
                                    if prior != verdict {
                                        *verdict_flip
                                            .lock()
                                            .unwrap_or_else(|e| e.into_inner()) = Some(format!(
                                            "{name}: verdict flipped from {prior} to {verdict}"
                                        ));
                                        stop.store(true, Ordering::Relaxed);
                                    }
                                }
                            }
                            "overloaded" => tally.overloaded += 1,
                            _ => tally.errors += 1,
                        },
                        Err(_) => {
                            tally.errors += 1;
                            break;
                        }
                    }
                }
                tally
            }));
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let wall = started.elapsed();
    stop.store(true, Ordering::Relaxed);

    let mut ok = 0u64;
    let mut valid = 0u64;
    let mut invalid = 0u64;
    let mut unknown = 0u64;
    let mut overloaded = 0u64;
    let mut errors = 0u64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut cache_coalesced = 0u64;
    for t in &tallies {
        ok += t.ok;
        valid += t.valid;
        invalid += t.invalid;
        unknown += t.unknown;
        overloaded += t.overloaded;
        errors += t.errors;
        cache_hits += t.cache_hits;
        cache_misses += t.cache_misses;
        cache_coalesced += t.cache_coalesced;
    }

    if let Some(detail) = verdict_flip.lock().unwrap_or_else(|e| e.into_inner()).take() {
        eprintln!("serve-bench: FAIL — cached verdict not equivalent to first solve: {detail}");
        std::process::exit(1);
    }
    let latency = latency_hist.snapshot();
    let queue_wait = queue_wait_hist.snapshot();
    let pct = |p: f64| latency.quantile(p);
    let total = ok + overloaded + errors;
    let throughput = if wall.as_secs_f64() > 0.0 {
        total as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    let overload_rate = if total > 0 {
        overloaded as f64 / total as f64
    } else {
        0.0
    };

    // Ask the daemon for its own view before draining it.
    let server_counters = Client::connect(&*addr)
        .ok()
        .and_then(|mut c| c.stats().ok())
        .and_then(|reply| reply.get("counters").map(render_json));
    let report = handle.map(|h| h.shutdown());

    let schema = if config.zipf.is_some() {
        "sufsat-cache-bench-v1"
    } else {
        "sufsat-serve-bench-v2"
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{schema}\",\n"));
    out.push_str(&format!(
        "  \"config\": {{\"clients\": {}, \"workers\": {}, \"queue_cap\": {}, \"timeout_ms\": {}, \"duration_s\": {:.3}, \"workload_files\": {}, \"external_addr\": {}, \"zipf\": {}, \"seed\": {}}},\n",
        config.clients,
        config.workers,
        config.queue_cap,
        config.timeout_ms,
        config.duration.as_secs_f64(),
        files.len(),
        config.addr.is_some(),
        config.zipf.map_or("null".to_owned(), |s| format!("{s}")),
        config.seed,
    ));
    out.push_str(&format!(
        "  \"totals\": {{\"requests\": {total}, \"ok\": {ok}, \"valid\": {valid}, \"invalid\": {invalid}, \"unknown\": {unknown}, \"overloaded\": {overloaded}, \"errors\": {errors}}},\n"
    ));
    out.push_str(&format!(
        "  \"latency_us\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"mean\": {}}},\n",
        latency.count(),
        pct(0.50),
        pct(0.95),
        pct(0.99),
        latency.max(),
        latency.mean(),
    ));
    out.push_str(&format!(
        "  \"queue_wait_us\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"mean\": {}}},\n",
        queue_wait.count(),
        queue_wait.quantile(0.50),
        queue_wait.quantile(0.95),
        queue_wait.quantile(0.99),
        queue_wait.max(),
        queue_wait.mean(),
    ));
    let cold = cold_hist.snapshot();
    let warm = warm_hist.snapshot();
    let warm_total = cache_hits + cache_coalesced;
    let hit_rate = if ok > 0 { warm_total as f64 / ok as f64 } else { 0.0 };
    if config.zipf.is_some() {
        out.push_str(&format!(
            "  \"cache\": {{\"hits\": {cache_hits}, \"misses\": {cache_misses}, \"coalesced\": {cache_coalesced}, \"hit_rate\": {hit_rate:.4}}},\n"
        ));
        out.push_str(&format!(
            "  \"cold_latency_us\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"mean\": {}}},\n",
            cold.count(),
            cold.quantile(0.50),
            cold.quantile(0.95),
            cold.quantile(0.99),
            cold.max(),
            cold.mean(),
        ));
        out.push_str(&format!(
            "  \"warm_latency_us\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"mean\": {}}},\n",
            warm.count(),
            warm.quantile(0.50),
            warm.quantile(0.95),
            warm.quantile(0.99),
            warm.max(),
            warm.mean(),
        ));
        out.push_str(&format!(
            "  \"regenerate\": \"cargo run --release -p sufsat-serve --bin serve-bench -- --zipf {} --seed {} --clients {} --workers {} --duration {} --dir {} --out {}\",\n",
            config.zipf.unwrap(),
            config.seed,
            config.clients,
            config.workers,
            config.duration.as_secs_f64(),
            config.dir.display(),
            config.out.display(),
        ));
    }
    out.push_str(&format!(
        "  \"throughput_rps\": {throughput:.2},\n  \"overload_rate\": {overload_rate:.4},\n  \"wall_s\": {:.3}",
        wall.as_secs_f64()
    ));
    if let Some(counters) = server_counters {
        out.push_str(&format!(",\n  \"server_counters\": {counters}"));
    }
    if let Some(report) = &report {
        out.push_str(&format!(
            ",\n  \"drained\": {{\"inflight\": {}, \"queued\": {}, \"open_sessions\": {}}}",
            report.inflight, report.queued, report.open_sessions
        ));
    }
    out.push_str("\n}\n");

    let mut f = std::fs::File::create(&config.out)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", config.out.display())));
    f.write_all(out.as_bytes())
        .unwrap_or_else(|e| die(&format!("write failed: {e}")));
    eprintln!(
        "serve-bench: {} requests in {:.2}s ({:.1} req/s) | p50 {} us, p95 {} us | {} overloaded, {} errors -> {}",
        total,
        wall.as_secs_f64(),
        throughput,
        pct(0.50),
        pct(0.95),
        overloaded,
        errors,
        config.out.display(),
    );
    if config.zipf.is_some() {
        eprintln!(
            "serve-bench: cache hit rate {:.1}% ({cache_hits} hits, {cache_coalesced} coalesced, {cache_misses} misses) | cold p50 {} us, warm p50 {} us",
            hit_rate * 100.0,
            cold.quantile(0.50),
            warm.quantile(0.50),
        );
        if config.check {
            let mut bad = Vec::new();
            if hit_rate < 0.5 {
                bad.push(format!("hit rate {hit_rate:.4} < 0.5"));
            }
            if warm.quantile(0.50).saturating_mul(10) > cold.quantile(0.50) {
                bad.push(format!(
                    "warm p50 {} us not >=10x below cold p50 {} us",
                    warm.quantile(0.50),
                    cold.quantile(0.50),
                ));
            }
            if !bad.is_empty() {
                eprintln!("serve-bench: FAIL --check: {}", bad.join("; "));
                sufsat_obs::emit_counter_records();
                sufsat_obs::shutdown();
                std::process::exit(1);
            }
            eprintln!("serve-bench: --check passed");
        }
    }
    sufsat_obs::emit_counter_records();
    sufsat_obs::shutdown();
}

