//! SIGTERM/SIGINT → graceful drain, without any external crate.
//!
//! Rust's standard library links libc on every Unix target, so the C
//! `signal` entry point can be declared directly. The handler does the
//! only async-signal-safe thing possible: it stores into a static
//! atomic, which the daemon's main loop polls to start the drain.

use std::sync::atomic::AtomicBool;

static TERMINATION: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM/SIGINT handlers (first call only; idempotent) and
/// returns the flag they raise. On non-Unix targets the flag is
/// returned un-hooked and simply never fires.
pub fn termination_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        use std::sync::Once;
        static INSTALL: Once = Once::new();
        INSTALL.call_once(|| {
            extern "C" fn on_signal(_signum: i32) {
                TERMINATION.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            extern "C" {
                fn signal(signum: i32, handler: usize) -> usize;
            }
            const SIGINT: i32 = 2;
            const SIGTERM: i32 = 15;
            unsafe {
                signal(SIGTERM, on_signal as *const () as usize);
                signal(SIGINT, on_signal as *const () as usize);
            }
        });
    }
    &TERMINATION
}
