//! # sufsat-serve
//!
//! Solver-as-a-service: a resident daemon that keeps the whole sufsat
//! stack warm and multiplexes concurrent clients over a hand-rolled
//! length-prefixed JSON protocol.
//!
//! The one-shot pipeline answers a single query and exits; serving heavy
//! traffic needs a process that stays resident, bounds its concurrency,
//! rejects load it cannot absorb instead of queueing unboundedly, and
//! ties every request's lifetime to its client:
//!
//! * a fixed **worker pool** executes solves ([`ServeOptions::workers`]);
//! * a bounded MPMC **job queue** provides admission control — a full
//!   queue answers `overloaded` immediately ([`ServeOptions::queue_cap`]);
//! * per-request **deadlines** (`timeout_ms`, counted from admission)
//!   propagate into [`sufsat_sat::Solver::set_timeout`] and a per-job
//!   [`sufsat_sat::CancelToken`], so queue wait and search share one
//!   budget and a disconnecting client frees its lane promptly;
//! * **incremental sessions** ([`sufsat_incremental::Session`]) are
//!   owned by the connection that opened them and reclaimed when it
//!   goes away;
//! * `shutdown` (or a [`ShutdownTrigger`], e.g. from a SIGTERM hook)
//!   starts a graceful **drain**: admission stops, admitted jobs finish,
//!   then the server stops with a [`ServeReport`] of its final state.
//!
//! See [`protocol`] for the wire format, [`Server`] for the daemon and
//! [`Client`] for the matching blocking client.
//!
//! # Example
//!
//! ```
//! use sufsat_serve::{Client, ServeOptions, Server};
//!
//! let handle = Server::bind("127.0.0.1:0", ServeOptions::default()).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! let reply = client
//!     .decide("(vars x y) (funs (f 1)) (formula (=> (= x y) (= (f x) (f y))))", None)
//!     .unwrap();
//! assert_eq!(reply.get("status").and_then(|s| s.as_str()), Some("ok"));
//! assert_eq!(reply.get("verdict").and_then(|s| s.as_str()), Some("valid"));
//! let report = handle.shutdown();
//! assert_eq!(report.inflight, 0);
//! ```

#![warn(missing_docs)]

pub mod protocol;
mod metrics;
mod queue;
mod server;
mod client;
mod signal;

pub use client::{reply_status, reply_verdict, Client, ClientError};
pub use protocol::render_json;
pub use server::{
    CounterSnapshot, ServeOptions, ServeReport, Server, ServerHandle, ShutdownTrigger,
};
pub use signal::termination_flag;
