//! A small blocking client for the serve protocol — used by the
//! `sufsat client` subcommand, the load generator and the test battery.

use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sufsat_obs::json::{self, Json};

use crate::protocol::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(io::Error),
    /// The server closed the connection (cleanly or mid-frame).
    Closed,
    /// The server's reply was not a JSON object.
    BadReply(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::BadReply(m) => write!(f, "bad reply: {m}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One connection to a `sufsat-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to the daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            next_id: 1,
        })
    }

    /// Caps how long a single reply read may block.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends a raw payload without waiting for a reply.
    pub fn send_raw(&mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload)
    }

    /// Sends raw bytes as-is — *not* framed. Only the protocol fuzzer
    /// wants this.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one reply frame and parses it.
    pub fn read_reply(&mut self) -> Result<Json, ClientError> {
        match read_frame(&mut self.reader, DEFAULT_MAX_FRAME) {
            Ok(payload) => {
                let text = std::str::from_utf8(&payload)
                    .map_err(|_| ClientError::BadReply("non-UTF-8 reply".to_owned()))?;
                json::parse(text).map_err(ClientError::BadReply)
            }
            Err(FrameError::Closed) | Err(FrameError::Truncated) => Err(ClientError::Closed),
            Err(FrameError::Io(e)) => Err(ClientError::Io(e)),
            Err(e) => Err(ClientError::BadReply(e.to_string())),
        }
    }

    /// Sends a request body (a JSON object *without* an `id`; one is
    /// stamped in) and waits for the matching reply.
    pub fn call(&mut self, body: &str) -> Result<Json, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let trimmed = body.trim();
        let stamped = if let Some(rest) = trimmed.strip_prefix('{') {
            format!("{{\"id\":{id},{rest}")
        } else {
            trimmed.to_owned()
        };
        self.send_raw(stamped.as_bytes())?;
        let reply = self.read_reply()?;
        Ok(reply)
    }

    /// Convenience: one-shot decide of a SUF problem text. Returns the
    /// reply object (fields `status`, `verdict`, …).
    pub fn decide(
        &mut self,
        problem: &str,
        timeout: Option<Duration>,
    ) -> Result<Json, ClientError> {
        let mut body = String::from("\"op\":\"decide\",\"problem\":");
        json::escape_into(&mut body, problem);
        if let Some(t) = timeout {
            body.push_str(&format!(",\"timeout_ms\":{}", t.as_millis()));
        }
        self.call(&format!("{{{body}}}"))
    }

    /// Convenience: asks the server for its counter dump.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call(r#"{"op":"stats"}"#)
    }

    /// Convenience: asks the server for its full introspection dump
    /// (counters, latency/queue-wait quantiles, per-worker progress).
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        self.call(r#"{"op":"metrics"}"#)
    }

    /// Convenience: the cheap liveness/drain probe.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.call(r#"{"op":"health"}"#)
    }

    /// Convenience: dumps one diagnostic structure, e.g.
    /// `"slow_requests"`.
    pub fn debug_dump(&mut self, what: &str) -> Result<Json, ClientError> {
        let mut body = String::from("\"op\":\"debug\",\"what\":");
        json::escape_into(&mut body, what);
        self.call(&format!("{{{body}}}"))
    }

    /// Convenience: begins the graceful drain.
    pub fn shutdown_server(&mut self) -> Result<Json, ClientError> {
        self.call(r#"{"op":"shutdown"}"#)
    }
}

/// The `status` field of a reply, or `"?"`.
pub fn reply_status(reply: &Json) -> &str {
    reply.get("status").and_then(Json::as_str).unwrap_or("?")
}

/// The `verdict` field of a reply, or `"?"`.
pub fn reply_verdict(reply: &Json) -> &str {
    reply.get("verdict").and_then(Json::as_str).unwrap_or("?")
}
