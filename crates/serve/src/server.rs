//! The resident daemon: acceptor, connection readers/writers, the
//! worker pool, admission control, deadline propagation and graceful
//! drain-then-stop shutdown.
//!
//! # Threads
//!
//! * one **acceptor** blocks in `TcpListener::accept` and spawns a
//!   reader/writer thread pair per connection;
//! * each connection **reader** parses frames and *admits* jobs — it
//!   never executes a solve itself, so it stays responsive and notices
//!   disconnects promptly even while this client's solve is running;
//! * each connection **writer** drains a channel of reply frames, so
//!   workers never block on a slow client socket;
//! * `workers` **solver threads** pull jobs from the bounded
//!   [`JobQueue`] and run them against the `sufsat-core` /
//!   `sufsat-incremental` stack.
//!
//! # Admission control
//!
//! The queue is bounded ([`ServeOptions::queue_cap`]). A request that
//! does not fit is answered `overloaded` *immediately* — the reader
//! thread never blocks on the queue, so under overload clients get fast
//! rejections instead of unbounded latency.
//!
//! # Deadlines and cancellation
//!
//! A request's `timeout_ms` starts at admission. The worker propagates
//! whatever remains into [`Solver::set_timeout`]-backed options and a
//! per-job [`CancelToken`]. A client that disconnects mid-solve has all
//! of its in-flight tokens cancelled by the reader's cleanup, so its
//! lane frees up within the solver's cancellation-poll latency.
//!
//! # Session ownership
//!
//! Incremental sessions belong to the connection that opened them. Ops
//! on one session execute in request order (a scheduled-slot pattern:
//! the session's op queue is drained by one worker at a time), and a
//! dropped connection reclaims every session it owned.
//!
//! [`Solver::set_timeout`]: sufsat_sat::Solver::set_timeout
//! [`CancelToken`]: sufsat_sat::CancelToken

use std::collections::HashMap;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sufsat_cache::{
    canonicalize, CacheValue, CachedVerdict, Joined, ResultCache, StatsDigest, StoreStats,
};
use sufsat_core::{
    decide, decide_portfolio, DecideOptions, DecideStats, Outcome, PortfolioOptions,
    SepAssignment, StopReason,
};
use sufsat_incremental::Session;
use sufsat_obs::{HistogramBins, RollingWindow};
use sufsat_sat::{CancelToken, ProgressHandle, ProgressSnapshot};
use sufsat_suf::{parse_problem, Sort, TermManager};

use crate::metrics::{
    debug_reply, health_reply, metrics_reply, spawn_metrics_listener,
};
use crate::protocol::{
    error_reply, overloaded_reply, parse_request, read_frame, write_frame, FrameError, Op,
    ReplyBuilder, Request, DEFAULT_MAX_FRAME,
};
use crate::queue::{JobQueue, PushError};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker (solver) threads. Default: available parallelism, capped
    /// at 8.
    pub workers: usize,
    /// Bound on queued jobs; the admission-control knob. Also bounds
    /// each session's private op backlog.
    pub queue_cap: usize,
    /// Cap on one frame's payload bytes.
    pub max_frame: usize,
    /// Deadline applied to requests that do not carry `timeout_ms`.
    /// `None` means such requests run unbounded.
    pub default_deadline: Option<Duration>,
    /// Cap on concurrently open sessions per connection.
    pub session_limit: usize,
    /// Optional address for the plain-HTTP introspection listener
    /// (`GET /metrics` in Prometheus text format, `GET /health`). `None`
    /// disables it; metrics stay reachable through the protocol's
    /// `metrics` op either way.
    pub metrics_addr: Option<String>,
    /// Byte budget of the canonicalizing result cache consulted by plain
    /// `decide` requests. `0` disables caching (and single-flight dedup)
    /// entirely.
    pub cache_bytes: usize,
    /// Optional path of the cache's append-only persistent log. Loaded
    /// (torn tail tolerated) at startup so a restarted daemon answers
    /// previously-seen queries warm; ignored when `cache_bytes == 0`.
    pub cache_path: Option<std::path::PathBuf>,
}

/// Default byte budget of the serve-side result cache (64 MiB).
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(4);
        ServeOptions {
            workers,
            queue_cap: 64,
            max_frame: DEFAULT_MAX_FRAME,
            default_deadline: None,
            session_limit: 64,
            metrics_addr: None,
            cache_bytes: DEFAULT_CACHE_BYTES,
            cache_path: None,
        }
    }
}

/// Monotonically increasing counters, snapshotted by the `stats` op and
/// by [`ServeReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Frames received that were answered with a reply: every parsed
    /// request plus malformed frames answered with an error. Once the
    /// server drains, `requests == ok + errors + overloaded` — every
    /// received frame settles into exactly one terminal bucket (the soak
    /// battery asserts this).
    pub requests: u64,
    /// `ok` replies sent.
    pub ok: u64,
    /// `error` replies sent.
    pub errors: u64,
    /// `overloaded` rejections.
    pub overloaded: u64,
    /// Solves whose verdict was `unknown:timeout` (including deadlines
    /// that expired while the job was still queued).
    pub timeouts: u64,
    /// Deadlines that expired before the worker even started the job.
    pub deadline_expired: u64,
    /// Jobs retired because their connection vanished mid-flight.
    pub cancelled: u64,
    /// Jobs that panicked (contained; the worker survives).
    pub panics: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
}

/// Final state handed back by [`ServerHandle::shutdown`] /
/// [`ServerHandle::wait`]; the soak tests assert the drain invariants on
/// it.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Jobs admitted but not completed at stop. Zero after a clean drain.
    pub inflight: i64,
    /// Jobs still queued at stop. Zero after a clean drain.
    pub queued: usize,
    /// Sessions still owned by some connection at stop. Zero once every
    /// connection was reaped.
    pub open_sessions: i64,
    /// The counters at stop.
    pub counters: CounterSnapshot,
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_STOPPED: u8 = 2;

const WORKER_IDLE: u8 = 0;
const WORKER_BUSY: u8 = 1;

/// Worst requests kept in the slow-request ring.
const SLOW_LOG_CAP: usize = 8;

/// Span of the rolling latency window the `metrics` op reports next to
/// the since-start histogram.
const LATENCY_WINDOW: Duration = Duration::from_secs(10);

/// One slow-request record: what ran, how long it waited and executed,
/// and the solver's last progress heartbeat when it finished.
#[derive(Clone)]
pub(crate) struct SlowEntry {
    pub(crate) op: &'static str,
    pub(crate) conn: u64,
    pub(crate) latency_us: u64,
    pub(crate) queue_wait_us: u64,
    pub(crate) status: &'static str,
    pub(crate) progress: ProgressSnapshot,
    /// Microseconds since server start when the request finished.
    pub(crate) finished_at_us: u64,
}

pub(crate) struct Shared {
    opts: ServeOptions,
    queue: JobQueue<Work>,
    state: AtomicU8,
    inflight: AtomicI64,
    open_sessions: AtomicI64,
    connections: AtomicI64,
    next_session: AtomicU64,
    next_job: AtomicU64,
    started: Instant,
    done: Mutex<bool>,
    done_cv: Condvar,
    conn_streams: Mutex<HashMap<u64, TcpStream>>,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
    c_requests: AtomicU64,
    c_ok: AtomicU64,
    c_errors: AtomicU64,
    c_overloaded: AtomicU64,
    c_timeouts: AtomicU64,
    c_deadline_expired: AtomicU64,
    c_cancelled: AtomicU64,
    c_panics: AtomicU64,
    c_sessions_opened: AtomicU64,
    /// Worker-executed request latency (admission → reply), since start.
    latency_hist: HistogramBins,
    /// Time between admission and a worker starting the job.
    queue_wait_hist: HistogramBins,
    /// Same latency stream over the last [`LATENCY_WINDOW`] only.
    latency_window: RollingWindow,
    /// Per-worker busy/idle flags, indexed by worker number.
    worker_states: Box<[AtomicU8]>,
    /// Per-worker solver heartbeats; cleared between jobs so a snapshot
    /// reflects the job the worker is running *now*.
    worker_progress: Box<[ProgressHandle]>,
    /// Workers whose loop is currently alive (liveness for `health`).
    workers_alive: AtomicI64,
    /// The [`SLOW_LOG_CAP`] worst requests by latency.
    slow_log: Mutex<Vec<SlowEntry>>,
    /// Canonicalizing result cache for plain `decide` requests; `None`
    /// when `cache_bytes == 0`.
    cache: Option<Arc<ResultCache>>,
    /// Requests answered from another request's in-flight computation
    /// (single-flight followers). Counted as hits in the hit rate.
    c_cache_coalesced: AtomicU64,
    /// Execution latency of store hits only (admission wait excluded) —
    /// the warm-path number the cache bench gates on.
    cache_hit_latency: HistogramBins,
}

impl Shared {
    pub(crate) fn counters(&self) -> CounterSnapshot {
        CounterSnapshot {
            requests: self.c_requests.load(Ordering::Relaxed),
            ok: self.c_ok.load(Ordering::Relaxed),
            errors: self.c_errors.load(Ordering::Relaxed),
            overloaded: self.c_overloaded.load(Ordering::Relaxed),
            timeouts: self.c_timeouts.load(Ordering::Relaxed),
            deadline_expired: self.c_deadline_expired.load(Ordering::Relaxed),
            cancelled: self.c_cancelled.load(Ordering::Relaxed),
            panics: self.c_panics.load(Ordering::Relaxed),
            sessions_opened: self.c_sessions_opened.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn draining(&self) -> bool {
        self.state.load(Ordering::Acquire) != STATE_RUNNING
    }

    pub(crate) fn stopped(&self) -> bool {
        self.state.load(Ordering::Acquire) == STATE_STOPPED
    }

    fn begin_drain(&self) {
        let flipped = self
            .state
            .compare_exchange(
                STATE_RUNNING,
                STATE_DRAINING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if flipped {
            sufsat_obs::event!("serve.drain", queued = self.queue.len() as u64);
            self.queue.begin_drain();
            self.maybe_signal_drained();
        }
    }

    fn maybe_signal_drained(&self) {
        if self.draining()
            && self.inflight.load(Ordering::Acquire) == 0
            && self.queue.is_empty()
        {
            let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
            *done = true;
            self.done_cv.notify_all();
        }
    }

    fn gauges(&self) {
        static QUEUE_DEPTH: sufsat_obs::Gauge = sufsat_obs::Gauge::new("serve.queue_depth");
        static INFLIGHT: sufsat_obs::Gauge = sufsat_obs::Gauge::new("serve.inflight");
        static SESSIONS: sufsat_obs::Gauge = sufsat_obs::Gauge::new("serve.open_sessions");
        static CONNS: sufsat_obs::Gauge = sufsat_obs::Gauge::new("serve.connections");
        QUEUE_DEPTH.set(self.queue.len() as i64);
        INFLIGHT.set(self.inflight.load(Ordering::Relaxed));
        SESSIONS.set(self.open_sessions.load(Ordering::Relaxed));
        CONNS.set(self.connections.load(Ordering::Relaxed));
    }

    // ---- introspection surface (metrics/health/debug, /metrics) -------

    pub(crate) fn uptime_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    pub(crate) fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn inflight_now(&self) -> i64 {
        self.inflight.load(Ordering::Acquire)
    }

    pub(crate) fn open_sessions_now(&self) -> i64 {
        self.open_sessions.load(Ordering::Acquire)
    }

    pub(crate) fn connections_now(&self) -> i64 {
        self.connections.load(Ordering::Acquire)
    }

    pub(crate) fn workers_configured(&self) -> usize {
        self.worker_states.len()
    }

    pub(crate) fn workers_alive_now(&self) -> i64 {
        self.workers_alive.load(Ordering::Acquire)
    }

    pub(crate) fn latency_snapshot(&self) -> sufsat_obs::HistogramSnapshot {
        self.latency_hist.snapshot()
    }

    pub(crate) fn queue_wait_snapshot(&self) -> sufsat_obs::HistogramSnapshot {
        self.queue_wait_hist.snapshot()
    }

    pub(crate) fn window_snapshot(&self) -> sufsat_obs::HistogramSnapshot {
        self.latency_window.snapshot()
    }

    /// Whether the result cache is enabled.
    pub(crate) fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The result cache's store counters (all-zero when disabled, so the
    /// `/metrics` families render unconditionally).
    pub(crate) fn cache_stats(&self) -> StoreStats {
        self.cache
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// Requests answered by coalescing onto another request's solve.
    pub(crate) fn cache_coalesced_now(&self) -> u64 {
        self.c_cache_coalesced.load(Ordering::Relaxed)
    }

    /// Execution-latency snapshot of cache hits.
    pub(crate) fn cache_hit_latency_snapshot(&self) -> sufsat_obs::HistogramSnapshot {
        self.cache_hit_latency.snapshot()
    }

    /// Per-worker `(state, progress)` pairs, indexed by worker number.
    pub(crate) fn worker_info(&self) -> Vec<(&'static str, ProgressSnapshot)> {
        self.worker_states
            .iter()
            .zip(self.worker_progress.iter())
            .map(|(state, progress)| {
                let label = if state.load(Ordering::Relaxed) == WORKER_BUSY {
                    "busy"
                } else {
                    "idle"
                };
                (label, progress.snapshot())
            })
            .collect()
    }

    /// The slow-request log, worst first.
    pub(crate) fn slow_entries(&self) -> Vec<SlowEntry> {
        let mut entries = self
            .slow_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        entries.sort_by(|a, b| b.latency_us.cmp(&a.latency_us));
        entries
    }

    /// Accounts a finished worker-executed request into the latency and
    /// queue-wait histograms, the rolling window, and — when it ranks
    /// among the worst seen — the slow-request log.
    fn record_request(
        &self,
        op: &'static str,
        conn: u64,
        status: &'static str,
        queue_wait: Duration,
        admitted_at: Instant,
        progress: ProgressSnapshot,
    ) {
        static LATENCY: sufsat_obs::Histogram = sufsat_obs::Histogram::new("serve.latency_us");
        static QUEUE_WAIT: sufsat_obs::Histogram =
            sufsat_obs::Histogram::new("serve.queue_wait_us");
        let latency_us = admitted_at.elapsed().as_micros() as u64;
        let queue_wait_us = queue_wait.as_micros() as u64;
        self.latency_hist.record(latency_us);
        self.queue_wait_hist.record(queue_wait_us);
        self.latency_window.record(latency_us);
        LATENCY.record(latency_us);
        QUEUE_WAIT.record(queue_wait_us);

        let entry = SlowEntry {
            op,
            conn,
            latency_us,
            queue_wait_us,
            status,
            progress,
            finished_at_us: self.uptime_us(),
        };
        let inserted = {
            let mut log = self.slow_log.lock().unwrap_or_else(|e| e.into_inner());
            if log.len() < SLOW_LOG_CAP {
                log.push(entry);
                true
            } else {
                // Displace the mildest entry if this one is worse.
                let (mildest, min_latency) = log
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (i, e.latency_us))
                    .min_by_key(|&(_, l)| l)
                    .expect("log is non-empty at cap");
                if latency_us > min_latency {
                    log[mildest] = entry;
                    true
                } else {
                    false
                }
            }
        };
        if inserted {
            sufsat_obs::event!(
                "serve.slow_request",
                op = op,
                conn = conn,
                status = status,
                latency_us = latency_us,
                queue_wait_us = queue_wait_us,
                conflicts = progress.conflicts,
            );
        }
    }
}

/// Per-connection state shared between the reader, the workers running
/// this connection's jobs, and cleanup.
struct ConnShared {
    conn_id: u64,
    /// Cancel tokens of this connection's in-flight jobs, keyed by job
    /// id. Cleanup cancels them all so a disconnect retires its lanes.
    live: Mutex<HashMap<u64, CancelToken>>,
    dead: std::sync::atomic::AtomicBool,
}

impl ConnShared {
    fn new(conn_id: u64) -> ConnShared {
        ConnShared {
            conn_id,
            live: Mutex::new(HashMap::new()),
            dead: std::sync::atomic::AtomicBool::new(false),
        }
    }
}

enum SlotState {
    Idle(Box<Session>),
    Busy,
    Closed,
}

struct SlotInner {
    state: SlotState,
    pending: std::collections::VecDeque<SessionOpJob>,
    scheduled: bool,
}

/// One incremental session plus its serialization machinery.
struct SessionSlot {
    session_id: u64,
    inner: Mutex<SlotInner>,
}

enum SessionOpKind {
    Assert(String),
    Push,
    Pop,
    Check,
    Close,
}

impl SessionOpKind {
    fn label(&self) -> &'static str {
        match self {
            SessionOpKind::Assert(_) => "session-assert",
            SessionOpKind::Push => "session-push",
            SessionOpKind::Pop => "session-pop",
            SessionOpKind::Check => "session-check",
            SessionOpKind::Close => "session-close",
        }
    }
}

struct SessionOpJob {
    id: Option<u64>,
    kind: SessionOpKind,
    deadline: Option<Instant>,
    cancel: CancelToken,
    job_key: u64,
    admitted_at: Instant,
    reply: Sender<Vec<u8>>,
    conn: Arc<ConnShared>,
}

struct DecideJob {
    id: Option<u64>,
    portfolio: bool,
    problem: String,
    options: DecideOptions,
    deadline: Option<Instant>,
    cancel: CancelToken,
    job_key: u64,
    admitted_at: Instant,
    reply: Sender<Vec<u8>>,
    conn: Arc<ConnShared>,
}

enum Work {
    Decide(Box<DecideJob>),
    Session(Arc<SessionSlot>),
}

/// Factory for a running server. See the module docs for the design.
pub struct Server;

impl Server {
    /// Binds `addr` and starts the acceptor plus the worker pool.
    pub fn bind(addr: impl ToSocketAddrs, opts: ServeOptions) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workers = opts.workers.max(1);
        let cache = if opts.cache_bytes == 0 {
            None
        } else if let Some(path) = &opts.cache_path {
            let (cache, report) = ResultCache::with_persistence(opts.cache_bytes, path)?;
            sufsat_obs::event!(
                "serve.cache_loaded",
                records = report.unique as u64,
                truncated_bytes = report.truncated_bytes,
            );
            Some(Arc::new(cache))
        } else {
            Some(Arc::new(ResultCache::new(opts.cache_bytes)))
        };
        let shared = Arc::new(Shared {
            queue: JobQueue::new(opts.queue_cap),
            opts,
            state: AtomicU8::new(STATE_RUNNING),
            inflight: AtomicI64::new(0),
            open_sessions: AtomicI64::new(0),
            connections: AtomicI64::new(0),
            next_session: AtomicU64::new(1),
            next_job: AtomicU64::new(1),
            started: Instant::now(),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            conn_streams: Mutex::new(HashMap::new()),
            conn_handles: Mutex::new(Vec::new()),
            c_requests: AtomicU64::new(0),
            c_ok: AtomicU64::new(0),
            c_errors: AtomicU64::new(0),
            c_overloaded: AtomicU64::new(0),
            c_timeouts: AtomicU64::new(0),
            c_deadline_expired: AtomicU64::new(0),
            c_cancelled: AtomicU64::new(0),
            c_panics: AtomicU64::new(0),
            c_sessions_opened: AtomicU64::new(0),
            latency_hist: HistogramBins::new(),
            queue_wait_hist: HistogramBins::new(),
            latency_window: RollingWindow::new(LATENCY_WINDOW),
            worker_states: (0..workers).map(|_| AtomicU8::new(WORKER_IDLE)).collect(),
            worker_progress: (0..workers).map(|_| ProgressHandle::new()).collect(),
            workers_alive: AtomicI64::new(0),
            slow_log: Mutex::new(Vec::new()),
            cache,
            c_cache_coalesced: AtomicU64::new(0),
            cache_hit_latency: HistogramBins::new(),
        });
        let metrics = match shared.opts.metrics_addr.clone() {
            Some(addr) => Some(spawn_metrics_listener(Arc::clone(&shared), &addr)?),
            None => None,
        };
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sufsat-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sufsat-acceptor".to_owned())
                .spawn(move || acceptor_loop(&shared, listener))
                .expect("spawn acceptor")
        };
        sufsat_obs::event!(
            "serve.start",
            workers = workers as u64,
            queue_cap = shared.opts.queue_cap as u64,
            port = local_addr.port() as u64,
        );
        let (metrics_addr, metrics_thread) = match metrics {
            Some((addr, thread)) => (Some(addr), Some(thread)),
            None => (None, None),
        };
        Ok(ServerHandle {
            shared,
            local_addr,
            metrics_addr,
            acceptor: Some(acceptor),
            metrics_thread,
            workers: worker_handles,
        })
    }
}

/// Owner handle of a running server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    acceptor: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// A cloneable trigger that starts the graceful drain from any thread —
/// the SIGTERM hook of the `sufsat serve` binary uses one.
#[derive(Clone)]
pub struct ShutdownTrigger {
    shared: Arc<Shared>,
}

impl ShutdownTrigger {
    /// Starts the drain: admission stops, queued and running jobs
    /// complete, then the server stops.
    pub fn begin(&self) {
        self.shared.begin_drain();
    }

    /// Whether the drain has already started (via any trigger, a
    /// protocol `shutdown` request, or [`ServerHandle::shutdown`]).
    pub fn draining(&self) -> bool {
        self.shared.draining()
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound address of the HTTP introspection listener, when
    /// [`ServeOptions::metrics_addr`] enabled one (useful with port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// A trigger other threads can use to start the drain.
    pub fn trigger(&self) -> ShutdownTrigger {
        ShutdownTrigger {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Starts the drain and blocks until the server stopped.
    pub fn shutdown(self) -> ServeReport {
        self.shared.begin_drain();
        self.finalize()
    }

    /// Blocks until a `shutdown` request (or a [`ShutdownTrigger`])
    /// drains the server, then stops it.
    pub fn wait(self) -> ServeReport {
        self.finalize()
    }

    fn finalize(mut self) -> ServeReport {
        {
            let mut done = self
                .shared
                .done
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            while !*done {
                done = self
                    .shared
                    .done_cv
                    .wait(done)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
        self.shared.state.store(STATE_STOPPED, Ordering::Release);
        // Unblock the acceptor with a throwaway connection, then force
        // remaining (idle) client connections closed so their readers
        // see EOF and clean up.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Same trick for the HTTP introspection listener: it serves
        // through the drain and exits once it observes STATE_STOPPED.
        if let Some(metrics_thread) = self.metrics_thread.take() {
            if let Some(addr) = self.metrics_addr {
                let _ = TcpStream::connect(addr);
            }
            let _ = metrics_thread.join();
        }
        {
            let streams = self
                .shared
                .conn_streams
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for stream in streams.values() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        let conn_handles = std::mem::take(
            &mut *self
                .shared
                .conn_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for h in conn_handles {
            let _ = h.join();
        }
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
        let report = ServeReport {
            inflight: self.shared.inflight.load(Ordering::Acquire),
            queued: self.shared.queue.len(),
            open_sessions: self.shared.open_sessions.load(Ordering::Acquire),
            counters: self.shared.counters(),
        };
        sufsat_obs::event!(
            "serve.stop",
            inflight = report.inflight,
            open_sessions = report.open_sessions,
            requests = report.counters.requests,
        );
        report
    }
}

// ---- acceptor & connections -------------------------------------------

fn acceptor_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.state.load(Ordering::Acquire) == STATE_STOPPED {
                    return;
                }
                continue;
            }
        };
        if shared.state.load(Ordering::Acquire) == STATE_STOPPED {
            return;
        }
        if shared.draining() {
            // Drain phase: no new conversations.
            let mut s = stream;
            let _ = write_frame(&mut s, &error_reply(None, "server is shutting down"));
            continue;
        }
        let conn_id = shared.next_job.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared
                .conn_streams
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(conn_id, clone);
        }
        shared.connections.fetch_add(1, Ordering::AcqRel);
        shared.gauges();
        let shared2 = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("sufsat-conn-{conn_id}"))
            .spawn(move || serve_connection(&shared2, conn_id, stream))
            .expect("spawn connection thread");
        shared
            .conn_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
    }
}

fn serve_connection(shared: &Arc<Shared>, conn_id: u64, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let conn = Arc::new(ConnShared::new(conn_id));
    let mut sessions: HashMap<u64, Arc<SessionSlot>> = HashMap::new();
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let writer = match stream.try_clone() {
        Ok(write_half) => Some(
            std::thread::Builder::new()
                .name(format!("sufsat-conn-{conn_id}-w"))
                .spawn(move || writer_loop(write_half, rx))
                .expect("spawn connection writer"),
        ),
        Err(_) => None,
    };
    if writer.is_some() {
        let mut reader = BufReader::new(stream);
        let result = catch_unwind(AssertUnwindSafe(|| {
            read_loop(shared, &conn, &mut sessions, &mut reader, &tx)
        }));
        if result.is_err() {
            shared.c_panics.fetch_add(1, Ordering::Relaxed);
        }
    }
    cleanup_connection(shared, &conn, &mut sessions);
    drop(tx);
    if let Some(w) = writer {
        let _ = w.join();
    }
    shared
        .conn_streams
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&conn_id);
    shared.connections.fetch_sub(1, Ordering::AcqRel);
    shared.gauges();
}

fn writer_loop(stream: TcpStream, rx: Receiver<Vec<u8>>) {
    let mut w = io::BufWriter::new(stream);
    while let Ok(payload) = rx.recv() {
        if write_frame(&mut w, &payload).is_err() {
            return;
        }
    }
    let _ = w.flush();
}

fn send(reply: &Sender<Vec<u8>>, payload: Vec<u8>) {
    let _ = reply.send(payload);
}

/// Cancels the connection's in-flight jobs and reclaims its sessions.
/// Idempotent; runs when the reader finishes for any reason.
fn cleanup_connection(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    sessions: &mut HashMap<u64, Arc<SessionSlot>>,
) {
    if conn.dead.swap(true, Ordering::AcqRel) {
        return;
    }
    let live = conn.live.lock().unwrap_or_else(|e| e.into_inner());
    let retired = live.len() as u64;
    for token in live.values() {
        token.cancel();
    }
    drop(live);
    for (_, slot) in sessions.drain() {
        let mut inner = slot.inner.lock().unwrap_or_else(|e| e.into_inner());
        // Queued-but-unstarted ops die with the connection: account
        // their in-flight slots back. A Busy op stays counted; its
        // cancelled worker completes it. Each dropped op settles as an
        // error so `requests == ok + errors + overloaded` still holds at
        // drain (nobody is left to read a reply, so none is built).
        let dropped = inner.pending.len() as i64;
        inner.pending.clear();
        if dropped > 0 {
            shared.c_errors.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        match std::mem::replace(&mut inner.state, SlotState::Closed) {
            SlotState::Idle(session) => {
                drop(session);
                shared.open_sessions.fetch_sub(1, Ordering::AcqRel);
            }
            // Busy: the worker observes `Closed` when it tries to put
            // the session back and drops it then.
            SlotState::Busy | SlotState::Closed => {}
        }
        drop(inner);
        if dropped > 0 {
            shared.inflight.fetch_sub(dropped, Ordering::AcqRel);
        }
    }
    if retired > 0 {
        shared.c_cancelled.fetch_add(retired, Ordering::Relaxed);
        sufsat_obs::event!("serve.conn.reaped", conn = conn.conn_id, cancelled = retired);
    }
    shared.gauges();
    shared.maybe_signal_drained();
}

fn read_loop(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    sessions: &mut HashMap<u64, Arc<SessionSlot>>,
    reader: &mut impl Read,
    tx: &Sender<Vec<u8>>,
) {
    loop {
        match read_frame(reader, shared.opts.max_frame) {
            Ok(payload) => {
                if !handle_payload(shared, conn, sessions, &payload, tx) {
                    return;
                }
            }
            Err(e @ FrameError::Empty) => {
                // A malformed frame still counts as a received request:
                // `requests` tracks every answered frame so it reconciles
                // against `ok + errors + overloaded` at drain.
                shared.c_requests.fetch_add(1, Ordering::Relaxed);
                shared.c_errors.fetch_add(1, Ordering::Relaxed);
                send(tx, error_reply(None, &e.to_string()));
            }
            Err(FrameError::Closed) => return,
            Err(e @ FrameError::TooLarge(_)) => {
                // The stream is out of sync past this point: one last
                // diagnostic, then hang up.
                shared.c_requests.fetch_add(1, Ordering::Relaxed);
                shared.c_errors.fetch_add(1, Ordering::Relaxed);
                send(tx, error_reply(None, &e.to_string()));
                return;
            }
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => return,
        }
    }
}

/// Handles one parsed frame. Returns `false` when the connection should
/// close.
fn handle_payload(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    sessions: &mut HashMap<u64, Arc<SessionSlot>>,
    payload: &[u8],
    tx: &Sender<Vec<u8>>,
) -> bool {
    static REQUESTS: sufsat_obs::Counter = sufsat_obs::Counter::new("serve.requests");
    shared.c_requests.fetch_add(1, Ordering::Relaxed);
    REQUESTS.incr();
    let req = match parse_request(payload) {
        Ok(req) => req,
        Err((id, message)) => {
            shared.c_errors.fetch_add(1, Ordering::Relaxed);
            send(tx, error_reply(id, &message));
            return true;
        }
    };
    let id = req.id;
    match req.op {
        Op::Stats => {
            send(tx, stats_reply(shared, id));
            shared.c_ok.fetch_add(1, Ordering::Relaxed);
            true
        }
        // Introspection ops are answered inline by the reader thread, so
        // they keep working while the worker pool is saturated or the
        // server is draining.
        Op::Metrics => {
            send(tx, metrics_reply(shared, id));
            shared.c_ok.fetch_add(1, Ordering::Relaxed);
            true
        }
        Op::Health => {
            send(tx, health_reply(shared, id));
            shared.c_ok.fetch_add(1, Ordering::Relaxed);
            true
        }
        Op::Debug => {
            match req.what.as_deref() {
                Some("slow_requests") => {
                    send(tx, debug_reply(shared, id));
                    shared.c_ok.fetch_add(1, Ordering::Relaxed);
                }
                Some(what) => {
                    shared.c_errors.fetch_add(1, Ordering::Relaxed);
                    send(
                        tx,
                        error_reply(id, &format!("unknown debug dump \"{what}\"")),
                    );
                }
                None => {
                    shared.c_errors.fetch_add(1, Ordering::Relaxed);
                    send(tx, error_reply(id, "debug requires a \"what\" field"));
                }
            }
            true
        }
        Op::Shutdown => {
            shared.c_ok.fetch_add(1, Ordering::Relaxed);
            send(
                tx,
                ReplyBuilder::new(id, "ok").str_field("draining", "true").finish(),
            );
            shared.begin_drain();
            true
        }
        Op::SessionOpen => {
            if shared.draining() {
                shared.c_errors.fetch_add(1, Ordering::Relaxed);
                send(tx, error_reply(id, "server is shutting down"));
                return true;
            }
            if sessions.len() >= shared.opts.session_limit {
                shared.c_errors.fetch_add(1, Ordering::Relaxed);
                send(
                    tx,
                    error_reply(id, "session limit reached for this connection"),
                );
                return true;
            }
            let mut options = DecideOptions::default();
            if let Some(mode) = req.mode {
                options.mode = mode;
            }
            if let Some(cnf) = req.cnf {
                options.cnf = cnf;
            }
            options.preprocess = req.preprocess;
            let session_id = shared.next_session.fetch_add(1, Ordering::Relaxed);
            let slot = Arc::new(SessionSlot {
                session_id,
                inner: Mutex::new(SlotInner {
                    state: SlotState::Idle(Box::new(Session::new(options))),
                    pending: std::collections::VecDeque::new(),
                    scheduled: false,
                }),
            });
            sessions.insert(session_id, slot);
            shared.open_sessions.fetch_add(1, Ordering::AcqRel);
            shared.c_sessions_opened.fetch_add(1, Ordering::Relaxed);
            shared.c_ok.fetch_add(1, Ordering::Relaxed);
            shared.gauges();
            sufsat_obs::event!("serve.session.open", conn = conn.conn_id, session = session_id);
            send(
                tx,
                ReplyBuilder::new(id, "ok").u64_field("session", session_id).finish(),
            );
            true
        }
        Op::SessionAssert | Op::SessionPush | Op::SessionPop | Op::SessionCheck
        | Op::SessionClose => {
            let session_id = req.session.expect("validated by parse_request");
            let Some(slot) = sessions.get(&session_id).cloned() else {
                shared.c_errors.fetch_add(1, Ordering::Relaxed);
                send(tx, error_reply(id, &format!("unknown session {session_id}")));
                return true;
            };
            let kind = match req.op {
                Op::SessionAssert => {
                    SessionOpKind::Assert(req.problem.clone().expect("validated"))
                }
                Op::SessionPush => SessionOpKind::Push,
                Op::SessionPop => SessionOpKind::Pop,
                Op::SessionCheck => SessionOpKind::Check,
                Op::SessionClose => SessionOpKind::Close,
                _ => unreachable!(),
            };
            let close = matches!(kind, SessionOpKind::Close);
            let admitted = enqueue_session_op(shared, conn, &slot, &req, kind, tx);
            if close && admitted {
                // The queued close op retires the slot; stop tracking it
                // so cleanup does not race it. A rejected close keeps the
                // session alive (and tracked).
                sessions.remove(&session_id);
            }
            true
        }
        Op::Decide | Op::DecidePortfolio => {
            if shared.draining() {
                shared.c_errors.fetch_add(1, Ordering::Relaxed);
                send(tx, error_reply(id, "server is shutting down"));
                return true;
            }
            let mut options = DecideOptions::default();
            if let Some(mode) = req.mode {
                options.mode = mode;
            }
            if let Some(cnf) = req.cnf {
                options.cnf = cnf;
            }
            options.preprocess = req.preprocess;
            let cancel = CancelToken::new();
            let job_key = shared.next_job.fetch_add(1, Ordering::Relaxed);
            let job = Box::new(DecideJob {
                id,
                portfolio: matches!(req.op, Op::DecidePortfolio),
                problem: req.problem.clone().expect("validated"),
                options,
                deadline: deadline_of(shared, &req),
                cancel: cancel.clone(),
                job_key,
                admitted_at: Instant::now(),
                reply: tx.clone(),
                conn: Arc::clone(conn),
            });
            admit(shared, conn, job_key, cancel, id, Work::Decide(job), tx);
            true
        }
    }
}

fn deadline_of(shared: &Shared, req: &Request) -> Option<Instant> {
    req.timeout_ms
        .map(|ms| Duration::from_millis(ms))
        .or(shared.opts.default_deadline)
        .map(|d| Instant::now() + d)
}

/// Registers the job as in-flight and pushes it; on rejection, rolls the
/// registration back and replies immediately.
fn admit(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    job_key: u64,
    cancel: CancelToken,
    id: Option<u64>,
    work: Work,
    tx: &Sender<Vec<u8>>,
) -> bool {
    shared.inflight.fetch_add(1, Ordering::AcqRel);
    conn.live
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(job_key, cancel);
    match shared.queue.try_push(work) {
        Ok(()) => {
            shared.gauges();
            true
        }
        Err(PushError::Full(_)) => {
            rollback_admission(shared, conn, job_key);
            shared.c_overloaded.fetch_add(1, Ordering::Relaxed);
            static OVERLOADED: sufsat_obs::Counter = sufsat_obs::Counter::new("serve.overloaded");
            OVERLOADED.incr();
            sufsat_obs::event!("serve.overloaded", conn = conn.conn_id);
            send(tx, overloaded_reply(id));
            false
        }
        Err(PushError::Draining(_)) => {
            rollback_admission(shared, conn, job_key);
            shared.c_errors.fetch_add(1, Ordering::Relaxed);
            send(tx, error_reply(id, "server is shutting down"));
            false
        }
    }
}

fn rollback_admission(shared: &Arc<Shared>, conn: &Arc<ConnShared>, job_key: u64) {
    conn.live
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&job_key);
    shared.inflight.fetch_sub(1, Ordering::AcqRel);
}

/// Returns whether the op was admitted (a reply was sent either way).
fn enqueue_session_op(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    slot: &Arc<SessionSlot>,
    req: &Request,
    kind: SessionOpKind,
    tx: &Sender<Vec<u8>>,
) -> bool {
    let id = req.id;
    if shared.draining() {
        shared.c_errors.fetch_add(1, Ordering::Relaxed);
        send(tx, error_reply(id, "server is shutting down"));
        return false;
    }
    let cancel = CancelToken::new();
    let job_key = shared.next_job.fetch_add(1, Ordering::Relaxed);
    let job = SessionOpJob {
        id,
        kind,
        deadline: deadline_of(shared, req),
        cancel: cancel.clone(),
        job_key,
        admitted_at: Instant::now(),
        reply: tx.clone(),
        conn: Arc::clone(conn),
    };
    let must_schedule = {
        let mut inner = slot.inner.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(inner.state, SlotState::Closed) {
            drop(inner);
            shared.c_errors.fetch_add(1, Ordering::Relaxed);
            send(tx, error_reply(id, "session already closed"));
            return false;
        }
        if inner.pending.len() >= shared.opts.queue_cap {
            drop(inner);
            shared.c_overloaded.fetch_add(1, Ordering::Relaxed);
            send(tx, overloaded_reply(id));
            return false;
        }
        inner.pending.push_back(job);
        shared.inflight.fetch_add(1, Ordering::AcqRel);
        conn.live
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(job_key, cancel);
        if inner.scheduled {
            false
        } else {
            inner.scheduled = true;
            true
        }
    };
    if !must_schedule {
        shared.gauges();
        return true;
    }
    match shared.queue.try_push(Work::Session(Arc::clone(slot))) {
        Ok(()) => {
            shared.gauges();
            true
        }
        Err(err) => {
            // Roll the op (and the schedule) back and reply.
            let job = {
                let mut inner = slot.inner.lock().unwrap_or_else(|e| e.into_inner());
                inner.scheduled = false;
                inner.pending.pop_back()
            };
            if let Some(job) = job {
                rollback_admission(shared, conn, job.job_key);
                match err {
                    PushError::Full(_) => {
                        shared.c_overloaded.fetch_add(1, Ordering::Relaxed);
                        send(tx, overloaded_reply(job.id));
                    }
                    PushError::Draining(_) => {
                        shared.c_errors.fetch_add(1, Ordering::Relaxed);
                        send(tx, error_reply(job.id, "server is shutting down"));
                    }
                }
            }
            false
        }
    }
}

fn stats_reply(shared: &Arc<Shared>, id: Option<u64>) -> Vec<u8> {
    let c = shared.counters();
    let counters = format!(
        "{{\"requests\":{},\"ok\":{},\"errors\":{},\"overloaded\":{},\"timeouts\":{},\
         \"deadline_expired\":{},\"cancelled\":{},\"panics\":{},\"sessions_opened\":{}}}",
        c.requests,
        c.ok,
        c.errors,
        c.overloaded,
        c.timeouts,
        c.deadline_expired,
        c.cancelled,
        c.panics,
        c.sessions_opened,
    );
    ReplyBuilder::new(id, "ok")
        .u64_field("uptime_us", shared.started.elapsed().as_micros() as u64)
        .i64_field("inflight", shared.inflight.load(Ordering::Acquire))
        .u64_field("queue_depth", shared.queue.len() as u64)
        .i64_field("open_sessions", shared.open_sessions.load(Ordering::Acquire))
        .i64_field("connections", shared.connections.load(Ordering::Acquire))
        .str_field("state", if shared.draining() { "draining" } else { "running" })
        .raw_field("counters", &counters)
        .finish()
}

// ---- workers ----------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>, worker: usize) {
    shared.workers_alive.fetch_add(1, Ordering::AcqRel);
    let progress = shared.worker_progress[worker].clone();
    while let Some(work) = shared.queue.pop() {
        shared.worker_states[worker].store(WORKER_BUSY, Ordering::Relaxed);
        match work {
            Work::Decide(job) => run_decide_job(shared, *job, &progress),
            Work::Session(slot) => run_session_slot(shared, &slot, &progress),
        }
        // Clear the heartbeat so a snapshot never attributes the finished
        // job's final counters to an idle worker.
        progress.clear();
        shared.worker_states[worker].store(WORKER_IDLE, Ordering::Relaxed);
        shared.gauges();
        shared.maybe_signal_drained();
    }
    shared.workers_alive.fetch_sub(1, Ordering::AcqRel);
}

fn complete_job(shared: &Arc<Shared>, conn: &ConnShared, job_key: u64) {
    conn.live
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&job_key);
    shared.inflight.fetch_sub(1, Ordering::AcqRel);
}

fn outcome_verdict(outcome: &Outcome) -> (&'static str, Option<&'static str>) {
    match outcome {
        Outcome::Valid => ("valid", None),
        Outcome::Invalid(_) => ("invalid", None),
        Outcome::Unknown(StopReason::TranslationBudget) => ("unknown", Some("translation_budget")),
        Outcome::Unknown(StopReason::ConflictBudget) => ("unknown", Some("conflict_budget")),
        Outcome::Unknown(StopReason::Timeout) => ("unknown", Some("timeout")),
        Outcome::Unknown(StopReason::Cancelled) => ("unknown", Some("cancelled")),
    }
}

fn verdict_reply(
    id: Option<u64>,
    outcome: &Outcome,
    time_us: u64,
    extra: &[(&str, u64)],
    winner: Option<&str>,
    cache_status: Option<&str>,
) -> Vec<u8> {
    let (verdict, reason) = outcome_verdict(outcome);
    let mut b = ReplyBuilder::new(id, "ok").str_field("verdict", verdict);
    if let Some(reason) = reason {
        b = b.str_field("reason", reason);
    }
    if let Some(winner) = winner {
        b = b.str_field("winner", winner);
    }
    if let Some(cache_status) = cache_status {
        b = b.str_field("cache", cache_status);
    }
    b = b.u64_field("time_us", time_us);
    for &(k, v) in extra {
        b = b.u64_field(k, v);
    }
    b.finish()
}

/// Accounts a finished solve in the counters and returns the reply.
fn settle_outcome(shared: &Arc<Shared>, outcome: &Outcome) {
    match outcome {
        Outcome::Unknown(StopReason::Timeout) => {
            shared.c_timeouts.fetch_add(1, Ordering::Relaxed);
        }
        Outcome::Unknown(StopReason::Cancelled) => {
            shared.c_cancelled.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
    shared.c_ok.fetch_add(1, Ordering::Relaxed);
}

/// Deadline bookkeeping at job start: `Ok(remaining)` to run with that
/// budget (`None` = unbounded), `Err(reply)` when the deadline already
/// expired in the queue.
fn deadline_budget(
    shared: &Arc<Shared>,
    id: Option<u64>,
    deadline: Option<Instant>,
) -> Result<Option<Duration>, Vec<u8>> {
    match deadline {
        None => Ok(None),
        Some(deadline) => {
            let now = Instant::now();
            if now >= deadline {
                shared.c_deadline_expired.fetch_add(1, Ordering::Relaxed);
                shared.c_timeouts.fetch_add(1, Ordering::Relaxed);
                shared.c_ok.fetch_add(1, Ordering::Relaxed);
                Err(verdict_reply(
                    id,
                    &Outcome::Unknown(StopReason::Timeout),
                    0,
                    &[("queue_expired", 1)],
                    None,
                    None,
                ))
            } else {
                Ok(Some(deadline - now))
            }
        }
    }
}

fn run_decide_job(shared: &Arc<Shared>, mut job: DecideJob, progress: &ProgressHandle) {
    let op = if job.portfolio { "decide-portfolio" } else { "decide" };
    let span = sufsat_obs::span_with!("serve.request", op = op, conn = job.conn.conn_id);
    let started = Instant::now();
    let queue_wait = started.saturating_duration_since(job.admitted_at);
    let mut status = "ok";
    let reply_payload = if job.cancel.is_cancelled() {
        // The client is gone: the request settles as an error (keeping
        // `requests == ok + errors + overloaded`), with `cancelled`
        // recording the detail.
        shared.c_cancelled.fetch_add(1, Ordering::Relaxed);
        shared.c_errors.fetch_add(1, Ordering::Relaxed);
        status = "cancelled";
        error_reply(job.id, "cancelled: client disconnected")
    } else {
        match deadline_budget(shared, job.id, job.deadline) {
            Err(expired) => {
                status = "queue_expired";
                expired
            }
            Ok(budget) => {
                job.options.timeout = budget;
                job.options.cancel = Some(job.cancel.clone());
                job.options.progress = Some(progress.clone());
                type DecideRun = Result<
                    (
                        sufsat_core::Outcome,
                        sufsat_core::DecideStats,
                        Option<&'static str>,
                        Option<&'static str>,
                    ),
                    String,
                >;
                let outcome = catch_unwind(AssertUnwindSafe(|| -> DecideRun {
                    let mut tm = TermManager::new();
                    let phi = parse_problem(&mut tm, &job.problem)
                        .map_err(|e| format!("parse error: {e}"))?;
                    if job.portfolio {
                        let options = PortfolioOptions {
                            base: job.options.clone(),
                            ..PortfolioOptions::default()
                        };
                        let d = decide_portfolio(&mut tm, phi, &options);
                        let winner = d
                            .winner_mode()
                            .map(|m| mode_name(m))
                            .unwrap_or("none");
                        Ok((d.outcome, d.stats, Some(winner), None))
                    } else if let Some(cache) = &shared.cache {
                        let (outcome, stats, cache_status) =
                            decide_through_cache(cache, &mut tm, phi, &job);
                        Ok((outcome, stats, None, Some(cache_status)))
                    } else {
                        let d = decide(&mut tm, phi, &job.options);
                        Ok((d.outcome, d.stats, None, None))
                    }
                }));
                match outcome {
                    Ok(Ok((outcome, stats, winner, cache_status))) => {
                        settle_outcome(shared, &outcome);
                        if cache_status == Some("hit") {
                            shared
                                .cache_hit_latency
                                .record(started.elapsed().as_micros() as u64);
                        } else if cache_status == Some("coalesced") {
                            shared.c_cache_coalesced.fetch_add(1, Ordering::Relaxed);
                        }
                        verdict_reply(
                            job.id,
                            &outcome,
                            started.elapsed().as_micros() as u64,
                            &[
                                ("conflict_clauses", stats.conflict_clauses),
                                ("cnf_clauses", stats.cnf_clauses),
                                ("queue_us", queue_wait.as_micros() as u64),
                            ],
                            winner,
                            cache_status,
                        )
                    }
                    Ok(Err(message)) => {
                        shared.c_errors.fetch_add(1, Ordering::Relaxed);
                        status = "error";
                        error_reply(job.id, &message)
                    }
                    Err(_) => {
                        shared.c_panics.fetch_add(1, Ordering::Relaxed);
                        shared.c_errors.fetch_add(1, Ordering::Relaxed);
                        status = "panic";
                        error_reply(job.id, "internal error: solver panicked")
                    }
                }
            }
        }
    };
    // Record before the reply goes out: a client that reacts to its
    // reply with a `metrics`/`debug` request is guaranteed to find this
    // request in the histograms and the slow log. The heartbeat is
    // captured here, before the worker loop clears it, so a slow-log
    // entry carries the search's final published counters.
    shared.record_request(
        op,
        job.conn.conn_id,
        status,
        queue_wait,
        job.admitted_at,
        progress.snapshot(),
    );
    send(&job.reply, reply_payload);
    complete_job(shared, &job.conn, job.job_key);
    drop(span);
}

/// Runs a plain (non-portfolio) decide through the daemon's result cache
/// with single-flight dedup on the canonical fingerprint.
///
/// Returns the outcome, the stats the reply should report (a hit replays
/// the original solve's counters), and the reply's `cache` field:
/// `"hit"` (answered from the store), `"coalesced"` (waited on an
/// identical in-flight solve) or `"miss"` (solved here).
fn decide_through_cache(
    cache: &Arc<ResultCache>,
    tm: &mut TermManager,
    phi: sufsat_suf::TermId,
    job: &DecideJob,
) -> (Outcome, DecideStats, &'static str) {
    let canonical = canonicalize(tm, phi);
    let fp = canonical.fingerprint;
    if let Some(value) = cache.lookup(fp, &canonical.bytes) {
        return (cached_outcome(&value), stats_from_digest(&value.digest), "hit");
    }
    match cache.join(fp, job.deadline) {
        Joined::Leader(guard) => {
            let d = decide(tm, phi, &job.options);
            // A cancelled run says nothing about the formula and this
            // request is being torn down: hand the flight to a waiting
            // follower (promotion) instead of publishing a non-answer.
            if matches!(d.outcome, Outcome::Unknown(_)) && job.cancel.is_cancelled() {
                drop(guard);
                return (d.outcome, d.stats, "miss");
            }
            let value = light_value(&d.outcome, &d.stats);
            if let Some(value) = &value {
                cache.insert(fp, &canonical.bytes, value.clone());
            }
            guard.complete(value);
            (d.outcome, d.stats, "miss")
        }
        Joined::Done(Some(value)) => (
            cached_outcome(&value),
            stats_from_digest(&value.digest),
            "coalesced",
        ),
        Joined::Done(None) => {
            // The leader finished without a definitive verdict; solve it
            // ourselves and cache the result if we do better.
            let d = decide(tm, phi, &job.options);
            if let Some(value) = light_value(&d.outcome, &d.stats) {
                cache.insert(fp, &canonical.bytes, value);
            }
            (d.outcome, d.stats, "miss")
        }
        Joined::TimedOut => (
            Outcome::Unknown(StopReason::Timeout),
            DecideStats::default(),
            "miss",
        ),
    }
}

/// Rebuilds the reply-relevant outcome from a cached value. The daemon
/// stores verdict-only entries — replies never carry models — so an
/// `Invalid` hit surfaces an empty assignment.
fn cached_outcome(value: &CacheValue) -> Outcome {
    match value.verdict {
        CachedVerdict::Valid => Outcome::Valid,
        CachedVerdict::Invalid => Outcome::Invalid(SepAssignment::default()),
    }
}

/// Replays the original solve's counters so reply extras stay truthful.
fn stats_from_digest(digest: &StatsDigest) -> DecideStats {
    let mut stats = DecideStats::default();
    stats.dag_size = digest.dag_size as usize;
    stats.cnf_clauses = digest.cnf_clauses;
    stats.conflict_clauses = digest.conflict_clauses;
    stats.decisions = digest.decisions;
    stats.propagations = digest.propagations;
    stats.sep_predicates = digest.sep_predicates as usize;
    stats.translate_time = std::time::Duration::from_micros(digest.translate_time_us);
    stats.sat_time = std::time::Duration::from_micros(digest.solve_time_us);
    stats
}

/// The verdict-only cacheable projection of a finished solve, or `None`
/// when the outcome is not definitive.
fn light_value(outcome: &Outcome, stats: &DecideStats) -> Option<CacheValue> {
    let verdict = match outcome {
        Outcome::Valid => CachedVerdict::Valid,
        Outcome::Invalid(_) => CachedVerdict::Invalid,
        Outcome::Unknown(_) => return None,
    };
    Some(CacheValue {
        verdict,
        int_model: Vec::new(),
        bool_model: Vec::new(),
        digest: StatsDigest {
            dag_size: stats.dag_size as u64,
            cnf_clauses: stats.cnf_clauses,
            conflict_clauses: stats.conflict_clauses,
            decisions: stats.decisions,
            propagations: stats.propagations,
            sep_predicates: stats.sep_predicates as u64,
            translate_time_us: stats.translate_time.as_micros() as u64,
            solve_time_us: stats.sat_time.as_micros() as u64,
        },
    })
}

fn mode_name(mode: sufsat_core::EncodingMode) -> &'static str {
    match mode {
        sufsat_core::EncodingMode::Sd => "sd",
        sufsat_core::EncodingMode::Eij => "eij",
        sufsat_core::EncodingMode::Hybrid(_) => "hybrid",
        sufsat_core::EncodingMode::FixedHybrid => "fixed-hybrid",
    }
}

fn run_session_slot(shared: &Arc<Shared>, slot: &Arc<SessionSlot>, progress: &ProgressHandle) {
    loop {
        // Claim the next op and the session, or unschedule and leave.
        let (job, session) = {
            let mut inner = slot.inner.lock().unwrap_or_else(|e| e.into_inner());
            let Some(job) = inner.pending.pop_front() else {
                inner.scheduled = false;
                return;
            };
            match std::mem::replace(&mut inner.state, SlotState::Busy) {
                SlotState::Idle(session) => (job, Some(session)),
                SlotState::Closed => {
                    inner.state = SlotState::Closed;
                    (job, None)
                }
                // `scheduled` guarantees a single worker per slot.
                SlotState::Busy => unreachable!("two workers drained one session slot"),
            }
        };
        let queue_wait = Instant::now().saturating_duration_since(job.admitted_at);
        let span = sufsat_obs::span_with!(
            "serve.request",
            op = job.kind.label(),
            conn = job.conn.conn_id,
            session = slot.session_id,
        );
        // How the claimed session leaves this iteration. Exactly the
        // paths that drop a live `Session` decrement `open_sessions`.
        enum Fate {
            /// Healthy and not closed: goes back into the slot.
            Keep(Box<Session>),
            /// A `close` op retires it.
            Retire(Box<Session>),
            /// There was no session (slot closed before the claim), or a
            /// panic destroyed it (`dropped` says which).
            Gone { dropped: bool },
        }
        let closing = matches!(job.kind, SessionOpKind::Close);
        let mut status = "ok";
        let (payload, fate) = match session {
            None => {
                shared.c_errors.fetch_add(1, Ordering::Relaxed);
                status = "error";
                (
                    error_reply(job.id, "session already closed"),
                    Fate::Gone { dropped: false },
                )
            }
            Some(mut session) => {
                if job.cancel.is_cancelled() {
                    // Same settlement as a cancelled decide job: the
                    // error reply is the terminal counter, `cancelled`
                    // is the detail.
                    shared.c_cancelled.fetch_add(1, Ordering::Relaxed);
                    shared.c_errors.fetch_add(1, Ordering::Relaxed);
                    status = "cancelled";
                    (
                        error_reply(job.id, "cancelled: client disconnected"),
                        Fate::Keep(session),
                    )
                } else {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        execute_session_op(shared, slot.session_id, &job, &mut session, progress)
                    }));
                    match result {
                        Ok(payload) if closing => (payload, Fate::Retire(session)),
                        Ok(payload) => (payload, Fate::Keep(session)),
                        Err(_) => {
                            status = "panic";
                            // The session's internal state can no longer
                            // be trusted: poison it.
                            drop(session);
                            shared.c_panics.fetch_add(1, Ordering::Relaxed);
                            shared.c_errors.fetch_add(1, Ordering::Relaxed);
                            (
                                error_reply(
                                    job.id,
                                    "internal error: session op panicked; session closed",
                                ),
                                Fate::Gone { dropped: true },
                            )
                        }
                    }
                }
            }
        };
        // Put the session back (or retire it). Connection cleanup may
        // have marked the slot `Closed` while we were busy — it skips
        // the decrement for busy slots, so the drop here accounts it.
        {
            let mut inner = slot.inner.lock().unwrap_or_else(|e| e.into_inner());
            let closed_while_busy = matches!(inner.state, SlotState::Closed);
            match fate {
                Fate::Keep(session) if !closed_while_busy => {
                    inner.state = SlotState::Idle(session);
                }
                Fate::Keep(session) | Fate::Retire(session) => {
                    drop(session);
                    inner.state = SlotState::Closed;
                    shared.open_sessions.fetch_sub(1, Ordering::AcqRel);
                }
                Fate::Gone { dropped } => {
                    inner.state = SlotState::Closed;
                    if dropped {
                        shared.open_sessions.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
        }
        // Record before the reply goes out so a client reacting to its
        // reply with `metrics`/`debug` already sees this op accounted.
        shared.record_request(
            job.kind.label(),
            job.conn.conn_id,
            status,
            queue_wait,
            job.admitted_at,
            progress.snapshot(),
        );
        send(&job.reply, payload);
        complete_job(shared, &job.conn, job.job_key);
        // One slot drain can run many ops; reset the heartbeat so the
        // next op starts from a clean snapshot.
        progress.clear();
        drop(span);
    }
}

fn execute_session_op(
    shared: &Arc<Shared>,
    session_id: u64,
    job: &SessionOpJob,
    session: &mut Session,
    progress: &ProgressHandle,
) -> Vec<u8> {
    match &job.kind {
        SessionOpKind::Assert(problem) => {
            let t = match parse_problem(session.term_manager_mut(), problem) {
                Ok(t) => t,
                Err(e) => {
                    shared.c_errors.fetch_add(1, Ordering::Relaxed);
                    return error_reply(job.id, &format!("parse error: {e}"));
                }
            };
            if session.term_manager().sort(t) != Sort::Bool {
                shared.c_errors.fetch_add(1, Ordering::Relaxed);
                return error_reply(job.id, "assertions must be Boolean-sorted");
            }
            let aid = session.assert(t);
            shared.c_ok.fetch_add(1, Ordering::Relaxed);
            ReplyBuilder::new(job.id, "ok")
                .u64_field("assertion", aid.index() as u64)
                .u64_field("live", session.num_assertions() as u64)
                .finish()
        }
        SessionOpKind::Push => {
            session.push();
            shared.c_ok.fetch_add(1, Ordering::Relaxed);
            ReplyBuilder::new(job.id, "ok")
                .u64_field("depth", session.depth() as u64)
                .finish()
        }
        SessionOpKind::Pop => {
            if session.depth() == 0 {
                shared.c_errors.fetch_add(1, Ordering::Relaxed);
                return error_reply(job.id, "pop without a matching push");
            }
            session.pop();
            shared.c_ok.fetch_add(1, Ordering::Relaxed);
            ReplyBuilder::new(job.id, "ok")
                .u64_field("depth", session.depth() as u64)
                .finish()
        }
        SessionOpKind::Check => {
            let budget = match deadline_budget(shared, job.id, job.deadline) {
                Err(expired) => return expired,
                Ok(budget) => budget,
            };
            let started = Instant::now();
            session.set_timeout(budget);
            session.set_cancel_token(Some(job.cancel.clone()));
            session.set_progress_handle(Some(progress.clone()));
            let result = session.check();
            session.set_timeout(None);
            session.set_cancel_token(None);
            session.set_progress_handle(None);
            settle_outcome(shared, &result.outcome);
            verdict_reply(
                job.id,
                &result.outcome,
                started.elapsed().as_micros() as u64,
                &[
                    ("live", session.num_assertions() as u64),
                    ("depth", session.depth() as u64),
                ],
                None,
                None,
            )
        }
        SessionOpKind::Close => {
            shared.c_ok.fetch_add(1, Ordering::Relaxed);
            sufsat_obs::event!("serve.session.close", session = session_id);
            ReplyBuilder::new(job.id, "ok").finish()
        }
    }
}
