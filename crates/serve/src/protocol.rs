//! The wire protocol: length-prefixed JSON frames and the request/reply
//! schema.
//!
//! # Framing
//!
//! Every message — in both directions — is one *frame*:
//!
//! ```text
//! frame   := length payload
//! length  := u32, big-endian, number of payload bytes (1 ..= max_frame)
//! payload := UTF-8 JSON object
//! ```
//!
//! A frame whose length field is `0` or exceeds the server's `max_frame`
//! is a *framing* error: the stream can no longer be trusted to be in
//! sync, so the server sends one final `error` reply and closes the
//! connection. A payload that fails UTF-8 or JSON validation is a
//! *payload* error: framing is still intact, so the server replies
//! `error` and keeps the connection open.
//!
//! # Requests
//!
//! Every request is a JSON object with an `op` field and an optional
//! client-chosen `id` (echoed verbatim in the reply, so pipelined
//! clients can match replies to requests):
//!
//! | `op`                | fields                                             |
//! |---------------------|----------------------------------------------------|
//! | `decide`            | `problem`, `mode?`, `septhold?`, `cnf?`, `timeout_ms?`, `preprocess?` |
//! | `decide-portfolio`  | same as `decide`                                   |
//! | `session-open`      | `mode?`, `septhold?`, `cnf?`, `preprocess?`        |
//! | `session-assert`    | `session`, `problem`                               |
//! | `session-push`      | `session`                                          |
//! | `session-pop`       | `session`                                          |
//! | `session-check`     | `session`, `timeout_ms?`                           |
//! | `session-close`     | `session`                                          |
//! | `stats`             | —                                                  |
//! | `metrics`           | —                                                  |
//! | `health`            | —                                                  |
//! | `debug`             | `what` (only `"slow_requests"` today)              |
//! | `shutdown`          | —                                                  |
//!
//! `stats` is the raw counter dump; `metrics` adds latency and
//! queue-wait quantiles, a 10-second rolling latency window and
//! per-worker solver progress; `health` is the cheap liveness/drain
//! probe; `debug` dumps server-internal diagnostic state (currently the
//! slow-request log). All four are answered inline on the connection's
//! reader thread — they never queue, so they keep working while the
//! worker pool is saturated or draining.
//!
//! `problem` is a SUF problem in the s-expression surface syntax
//! accepted by [`sufsat_suf::parse_problem`]. For session ops the
//! declarations accumulate in the session's term manager, so later
//! assertions may refer to earlier declarations without repeating them.
//!
//! `timeout_ms` is a *deadline*: it starts counting when the request is
//! admitted, so time spent waiting in the job queue counts against it.
//!
//! # Replies
//!
//! * `{"id":…,"status":"ok", …}` — op-specific payload fields
//!   (`verdict`/`reason`/`time_us` for solves, `session` for opens,
//!   `assertion` for asserts, the counter dump for `stats`).
//! * `{"id":…,"status":"error","message":…}` — malformed or unservable
//!   request; the connection stays open unless framing was lost.
//! * `{"id":…,"status":"overloaded"}` — admission control rejected the
//!   request because the job queue was full. Immediate, never queued.

use std::fmt;
use std::io::{self, Read, Write};

use sufsat_core::{CnfMode, EncodingMode, DEFAULT_SEP_THOLD};
use sufsat_obs::json::{self, Json};

/// Default cap on one frame's payload size (1 MiB).
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Reading a frame from the peer failed.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end-of-stream on a frame boundary: the peer hung up.
    Closed,
    /// End-of-stream in the middle of a frame header or payload.
    Truncated,
    /// The length field was zero.
    Empty,
    /// The length field exceeded the configured cap.
    TooLarge(usize),
    /// The underlying transport failed.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Empty => write!(f, "empty frame (length 0)"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds the frame cap"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl FrameError {
    /// Whether the byte stream is still in sync after this error (the
    /// connection can keep serving) or must be closed.
    pub fn recoverable(&self) -> bool {
        matches!(self, FrameError::Empty)
    }
}

/// Reads one length-prefixed frame. `max_frame` bounds the payload size.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > max_frame {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(payload)
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// The operation a request asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// One-shot [`sufsat_core::decide`].
    Decide,
    /// One-shot [`sufsat_core::decide_portfolio`].
    DecidePortfolio,
    /// Create an incremental session owned by this connection.
    SessionOpen,
    /// Assert a formula in a session's current scope.
    SessionAssert,
    /// Open a scope.
    SessionPush,
    /// Close the innermost scope.
    SessionPop,
    /// Decide validity of the negated live conjunction.
    SessionCheck,
    /// Destroy a session.
    SessionClose,
    /// Dump server counters.
    Stats,
    /// Dump counters plus latency/queue-wait quantiles and per-worker
    /// solver progress.
    Metrics,
    /// Cheap liveness and drain-state probe.
    Health,
    /// Dump server-internal diagnostic state selected by `what`.
    Debug,
    /// Begin graceful drain-then-stop shutdown.
    Shutdown,
}

impl Op {
    /// The wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Decide => "decide",
            Op::DecidePortfolio => "decide-portfolio",
            Op::SessionOpen => "session-open",
            Op::SessionAssert => "session-assert",
            Op::SessionPush => "session-push",
            Op::SessionPop => "session-pop",
            Op::SessionCheck => "session-check",
            Op::SessionClose => "session-close",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Health => "health",
            Op::Debug => "debug",
            Op::Shutdown => "shutdown",
        }
    }
}

/// A validated request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the reply.
    pub id: Option<u64>,
    /// The operation.
    pub op: Op,
    /// SUF problem text (`decide*`, `session-assert`).
    pub problem: Option<String>,
    /// Target session id (session ops other than open).
    pub session: Option<u64>,
    /// Per-request deadline in milliseconds, measured from admission.
    pub timeout_ms: Option<u64>,
    /// Encoding mode override.
    pub mode: Option<EncodingMode>,
    /// CNF conversion override.
    pub cnf: Option<CnfMode>,
    /// Run CNF preprocessing before the SAT search.
    pub preprocess: bool,
    /// Which diagnostic dump a `debug` op asks for.
    pub what: Option<String>,
}

fn field_u64(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
    }
}

fn field_str<'a>(obj: &'a Json, key: &str) -> Result<Option<&'a str>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` must be a string")),
    }
}

fn field_bool(obj: &Json, key: &str) -> Result<bool, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("field `{key}` must be a boolean")),
    }
}

/// Parses and validates one request payload.
///
/// Errors carry a human-readable message suitable for an `error` reply;
/// when the payload at least contained a usable `id`, it is returned
/// alongside so the reply can still be correlated.
pub fn parse_request(payload: &[u8]) -> Result<Request, (Option<u64>, String)> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| (None, "payload is not valid UTF-8".to_owned()))?;
    let doc = json::parse(text).map_err(|e| (None, format!("payload is not valid JSON: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err((None, "payload must be a JSON object".to_owned()));
    }
    // A malformed `id` is reported without one.
    let id = field_u64(&doc, "id").map_err(|e| (None, e))?;
    let fail = |msg: String| (id, msg);

    let op_name = field_str(&doc, "op")
        .map_err(&fail)?
        .ok_or_else(|| fail("missing `op` field".to_owned()))?;
    let op = match op_name {
        "decide" => Op::Decide,
        "decide-portfolio" => Op::DecidePortfolio,
        "session-open" => Op::SessionOpen,
        "session-assert" => Op::SessionAssert,
        "session-push" => Op::SessionPush,
        "session-pop" => Op::SessionPop,
        "session-check" => Op::SessionCheck,
        "session-close" => Op::SessionClose,
        "stats" => Op::Stats,
        "metrics" => Op::Metrics,
        "health" => Op::Health,
        "debug" => Op::Debug,
        "shutdown" => Op::Shutdown,
        other => return Err(fail(format!("unknown op `{other}`"))),
    };

    let problem = field_str(&doc, "problem").map_err(&fail)?.map(str::to_owned);
    let session = field_u64(&doc, "session").map_err(&fail)?;
    let timeout_ms = field_u64(&doc, "timeout_ms").map_err(&fail)?;
    let septhold = field_u64(&doc, "septhold").map_err(&fail)?;
    let mode = match field_str(&doc, "mode").map_err(&fail)? {
        None => None,
        Some("sd") => Some(EncodingMode::Sd),
        Some("eij") => Some(EncodingMode::Eij),
        Some("hybrid") => Some(EncodingMode::Hybrid(
            septhold.map_or(DEFAULT_SEP_THOLD, |t| t as usize),
        )),
        Some("fixed") | Some("fixed-hybrid") => Some(EncodingMode::FixedHybrid),
        Some(other) => return Err(fail(format!("unknown mode `{other}`"))),
    };
    let cnf = match field_str(&doc, "cnf").map_err(&fail)? {
        None => None,
        Some("tseitin") => Some(CnfMode::Tseitin),
        Some("pg") => Some(CnfMode::PlaistedGreenbaum),
        Some(other) => return Err(fail(format!("unknown cnf mode `{other}`"))),
    };
    let preprocess = field_bool(&doc, "preprocess").map_err(&fail)?;
    let what = field_str(&doc, "what").map_err(&fail)?.map(str::to_owned);

    let needs_problem = matches!(op, Op::Decide | Op::DecidePortfolio | Op::SessionAssert);
    if needs_problem && problem.is_none() {
        return Err(fail(format!("op `{op_name}` requires a `problem` field")));
    }
    let needs_session = matches!(
        op,
        Op::SessionAssert | Op::SessionPush | Op::SessionPop | Op::SessionCheck | Op::SessionClose
    );
    if needs_session && session.is_none() {
        return Err(fail(format!("op `{op_name}` requires a `session` field")));
    }

    Ok(Request {
        id,
        op,
        problem,
        session,
        timeout_ms,
        mode,
        cnf,
        preprocess,
        what,
    })
}

/// Incrementally builds one reply object.
pub struct ReplyBuilder {
    out: String,
}

impl ReplyBuilder {
    /// Starts a reply with the given status, echoing `id` when present.
    pub fn new(id: Option<u64>, status: &str) -> ReplyBuilder {
        let mut out = String::with_capacity(64);
        out.push('{');
        if let Some(id) = id {
            out.push_str("\"id\":");
            out.push_str(&id.to_string());
            out.push(',');
        }
        out.push_str("\"status\":");
        json::escape_into(&mut out, status);
        ReplyBuilder { out }
    }

    /// Appends a string field.
    pub fn str_field(mut self, key: &str, value: &str) -> ReplyBuilder {
        self.out.push(',');
        json::escape_into(&mut self.out, key);
        self.out.push(':');
        json::escape_into(&mut self.out, value);
        self
    }

    /// Appends an unsigned integer field.
    pub fn u64_field(mut self, key: &str, value: u64) -> ReplyBuilder {
        self.out.push(',');
        json::escape_into(&mut self.out, key);
        self.out.push(':');
        self.out.push_str(&value.to_string());
        self
    }

    /// Appends a signed integer field.
    pub fn i64_field(mut self, key: &str, value: i64) -> ReplyBuilder {
        self.out.push(',');
        json::escape_into(&mut self.out, key);
        self.out.push(':');
        self.out.push_str(&value.to_string());
        self
    }

    /// Appends a pre-rendered JSON value field (caller guarantees
    /// validity — used for the nested counter object in `stats`).
    pub fn raw_field(mut self, key: &str, raw_json: &str) -> ReplyBuilder {
        self.out.push(',');
        json::escape_into(&mut self.out, key);
        self.out.push(':');
        self.out.push_str(raw_json);
        self
    }

    /// Finishes the object and returns the payload bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.out.push('}');
        self.out.into_bytes()
    }
}

/// A ready-made `error` reply payload.
pub fn error_reply(id: Option<u64>, message: &str) -> Vec<u8> {
    ReplyBuilder::new(id, "error")
        .str_field("message", message)
        .finish()
}

/// A ready-made `overloaded` reply payload.
pub fn overloaded_reply(id: Option<u64>) -> Vec<u8> {
    ReplyBuilder::new(id, "overloaded").finish()
}

/// Renders a parsed [`Json`] value back to compact JSON text.
///
/// Numbers that round-trip exactly through `f64` print as integers, so
/// counters and ids come back the way the server wrote them.
pub fn render_json(v: &Json) -> String {
    match v {
        Json::Null => "null".to_owned(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Json::Str(s) => {
            let mut out = String::new();
            json::escape_into(&mut out, s);
            out
        }
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render_json).collect();
            format!("[{}]", inner.join(","))
        }
        Json::Obj(entries) => {
            let inner: Vec<String> = entries
                .iter()
                .map(|(k, v)| {
                    let mut key = String::new();
                    json::escape_into(&mut key, k);
                    format!("{key}:{}", render_json(v))
                })
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = (payload.len() as u32).to_be_bytes().to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"stats\"}").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), b"{\"op\":\"stats\"}");
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn framing_errors_classified() {
        let mut r: &[u8] = &[0, 0];
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::Truncated)
        ));
        let mut r: &[u8] = &[0, 0, 0, 0];
        assert!(matches!(read_frame(&mut r, 64), Err(FrameError::Empty)));
        let mut r: &[u8] = &[0xff, 0xff, 0xff, 0xff];
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::TooLarge(_))
        ));
        let data = frame(b"abcdef");
        let mut r = &data[..5];
        assert!(matches!(
            read_frame(&mut r, 64),
            Err(FrameError::Truncated)
        ));
        assert!(FrameError::Empty.recoverable());
        assert!(!FrameError::TooLarge(7).recoverable());
    }

    #[test]
    fn parse_request_validates() {
        let r = parse_request(br#"{"op":"decide","id":7,"problem":"(vars x)","timeout_ms":250}"#)
            .unwrap();
        assert_eq!(r.op, Op::Decide);
        assert_eq!(r.id, Some(7));
        assert_eq!(r.timeout_ms, Some(250));
        assert_eq!(r.problem.as_deref(), Some("(vars x)"));

        // id still extracted from otherwise-bad requests.
        let (id, msg) = parse_request(br#"{"op":"nope","id":3}"#).unwrap_err();
        assert_eq!(id, Some(3));
        assert!(msg.contains("unknown op"));

        let (_, msg) = parse_request(br#"{"op":"decide"}"#).unwrap_err();
        assert!(msg.contains("requires a `problem`"));
        let (_, msg) = parse_request(br#"{"op":"session-check"}"#).unwrap_err();
        assert!(msg.contains("requires a `session`"));
        let (_, msg) = parse_request(&[0xff, 0xfe]).unwrap_err();
        assert!(msg.contains("UTF-8"));
        let (_, msg) = parse_request(b"[1,2]").unwrap_err();
        assert!(msg.contains("JSON object"));
        let (_, msg) = parse_request(br#"{"op":"decide","problem":42}"#).unwrap_err();
        assert!(msg.contains("must be a string"));
    }

    #[test]
    fn reply_builders_render() {
        let bytes = ReplyBuilder::new(Some(1), "ok")
            .str_field("verdict", "valid")
            .u64_field("time_us", 12)
            .finish();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            r#"{"id":1,"status":"ok","verdict":"valid","time_us":12}"#
        );
        assert_eq!(
            String::from_utf8(error_reply(None, "boom")).unwrap(),
            r#"{"status":"error","message":"boom"}"#
        );
        assert_eq!(
            String::from_utf8(overloaded_reply(Some(9))).unwrap(),
            r#"{"id":9,"status":"overloaded"}"#
        );
    }
}
