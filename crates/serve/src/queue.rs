//! A bounded MPMC job queue with drain support — the admission-control
//! valve between connection readers and the worker pool.
//!
//! Readers never block on the queue: [`JobQueue::try_push`] either admits
//! the job or reports *why* it could not (full ⇒ the caller replies
//! `overloaded` immediately; draining ⇒ the caller replies `error`).
//! Workers block in [`JobQueue::pop`], which returns `None` once the
//! queue is draining *and* empty — the worker-exit signal.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`JobQueue::try_push`] rejected a job. Carries the job back so
/// the caller can recover its reply channel.
pub enum PushError<T> {
    /// The queue is at capacity: admission control rejects the request.
    Full(T),
    /// The server is draining: no new work is admitted.
    Draining(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    draining: bool,
}

/// The bounded MPMC queue.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `cap` jobs at a time.
    pub fn new(cap: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(cap.min(1024)),
                draining: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admits a job without ever blocking.
    pub fn try_push(&self, job: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.draining {
            return Err(PushError::Draining(job));
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full(job));
        }
        inner.items.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once draining and empty.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = inner.items.pop_front() {
                return Some(job);
            }
            if inner.draining {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops admission and wakes every blocked worker; queued jobs are
    /// still handed out until the queue runs dry.
    pub fn begin_drain(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.draining = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Jobs currently waiting (excludes jobs being executed).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_admission() {
        let q = JobQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            _ => panic!("expected Full"),
        }
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_rejects_and_releases_workers() {
        let q: Arc<JobQueue<u32>> = Arc::new(JobQueue::new(4));
        q.try_push(7).ok();
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(j) = q.pop() {
                    seen.push(j);
                }
                seen
            })
        };
        // Give the worker a chance to park, then drain.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.begin_drain();
        match q.try_push(8) {
            Err(PushError::Draining(8)) => {}
            _ => panic!("expected Draining"),
        }
        let seen = worker.join().unwrap();
        assert_eq!(seen, vec![7]);
    }

    #[test]
    fn mpmc_under_contention() {
        let q: Arc<JobQueue<u64>> = Arc::new(JobQueue::new(64));
        let total = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = Arc::clone(&q);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    while let Some(j) = q.pop() {
                        total.fetch_add(j, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
            s.spawn(|| {
                let mut pushed = 0u64;
                let mut next = 1u64;
                while pushed < 1000 {
                    if q.try_push(next).is_ok() {
                        pushed += 1;
                        next += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                q.begin_drain();
            });
        });
        assert_eq!(
            total.load(std::sync::atomic::Ordering::Relaxed),
            1000 * 1001 / 2
        );
    }
}
