//! Runtime introspection: the `metrics`/`health`/`debug` protocol
//! replies and the zero-dependency plain-HTTP listener that exposes the
//! same data as Prometheus text (`GET /metrics`) and a JSON health probe
//! (`GET /health`).
//!
//! The HTTP side is deliberately minimal: one listener thread, one
//! request per connection, `Connection: close` semantics, a read budget
//! instead of a real parser. That is all a scraper or `curl` needs, and
//! it keeps the workspace dependency-free. The listener keeps answering
//! during a drain (that is when an operator most wants to look) and
//! exits once the server reaches its stopped state.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sufsat_obs::HistogramSnapshot;
use sufsat_sat::ProgressSnapshot;

use crate::protocol::ReplyBuilder;
use crate::server::Shared;

// ---- protocol replies --------------------------------------------------

/// A `{count, p50, p95, p99, max, mean}` JSON object for one histogram.
fn quantile_json(snap: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{},\"mean\":{}}}",
        snap.count(),
        snap.quantile(0.50),
        snap.quantile(0.95),
        snap.quantile(0.99),
        snap.max(),
        snap.mean(),
    )
}

fn progress_json(state: &str, p: &ProgressSnapshot) -> String {
    format!(
        "{{\"state\":\"{state}\",\"live\":{},\"conflicts\":{},\"decisions\":{},\
         \"propagations\":{},\"restarts\":{},\"trail_depth\":{},\"learnt_clauses\":{},\
         \"arena_bytes\":{},\"conflicts_per_s\":{},\"elapsed_us\":{}}}",
        (p.seq > 0) as u8,
        p.conflicts,
        p.decisions,
        p.propagations,
        p.restarts,
        p.trail_depth,
        p.learnt_clauses,
        p.arena_bytes,
        p.conflicts_per_s,
        p.elapsed_us,
    )
}

fn counters_json(shared: &Shared) -> String {
    let c = shared.counters();
    format!(
        "{{\"requests\":{},\"ok\":{},\"errors\":{},\"overloaded\":{},\"timeouts\":{},\
         \"deadline_expired\":{},\"cancelled\":{},\"panics\":{},\"sessions_opened\":{}}}",
        c.requests,
        c.ok,
        c.errors,
        c.overloaded,
        c.timeouts,
        c.deadline_expired,
        c.cancelled,
        c.panics,
        c.sessions_opened,
    )
}

/// The result-cache block of the `metrics` reply: store counters,
/// coalesced waits and the hit-latency distribution.
fn cache_json(shared: &Shared) -> String {
    let s = shared.cache_stats();
    format!(
        "{{\"enabled\":{},\"hits\":{},\"misses\":{},\"coalesced\":{},\"inserts\":{},\
         \"evictions\":{},\"entries\":{},\"bytes\":{},\"hit_latency_us\":{}}}",
        shared.cache_enabled(),
        s.hits,
        s.misses,
        shared.cache_coalesced_now(),
        s.inserts,
        s.evictions,
        s.entries,
        s.bytes,
        quantile_json(&shared.cache_hit_latency_snapshot()),
    )
}

/// The `metrics` op: latency and queue-wait distributions (since start
/// and over the rolling window), counters, gauges, result-cache state
/// and per-worker solver progress, all in one reply.
pub(crate) fn metrics_reply(shared: &Arc<Shared>, id: Option<u64>) -> Vec<u8> {
    let workers: Vec<String> = shared
        .worker_info()
        .iter()
        .map(|(state, p)| progress_json(state, p))
        .collect();
    ReplyBuilder::new(id, "ok")
        .u64_field("uptime_us", shared.uptime_us())
        .str_field("state", if shared.draining() { "draining" } else { "running" })
        .raw_field("latency_us", &quantile_json(&shared.latency_snapshot()))
        .raw_field("window_latency_us", &quantile_json(&shared.window_snapshot()))
        .raw_field("queue_wait_us", &quantile_json(&shared.queue_wait_snapshot()))
        .u64_field("queue_depth", shared.queue_depth() as u64)
        .i64_field("inflight", shared.inflight_now())
        .i64_field("open_sessions", shared.open_sessions_now())
        .i64_field("connections", shared.connections_now())
        .raw_field("counters", &counters_json(shared))
        .raw_field("cache", &cache_json(shared))
        .raw_field("workers", &format!("[{}]", workers.join(",")))
        .finish()
}

/// The `health` op: RUNNING/DRAINING plus worker liveness — the cheap
/// probe a load balancer or init system polls.
pub(crate) fn health_reply(shared: &Arc<Shared>, id: Option<u64>) -> Vec<u8> {
    let busy = shared
        .worker_info()
        .iter()
        .filter(|(state, _)| *state == "busy")
        .count();
    ReplyBuilder::new(id, "ok")
        .str_field("state", if shared.draining() { "draining" } else { "running" })
        .u64_field("workers", shared.workers_configured() as u64)
        .i64_field("workers_alive", shared.workers_alive_now())
        .u64_field("workers_busy", busy as u64)
        .i64_field("inflight", shared.inflight_now())
        .u64_field("uptime_us", shared.uptime_us())
        .finish()
}

/// The `debug` op (`"what": "slow_requests"`): the worst requests seen,
/// each with the solver progress snapshot captured when it finished.
pub(crate) fn debug_reply(shared: &Arc<Shared>, id: Option<u64>) -> Vec<u8> {
    let entries: Vec<String> = shared
        .slow_entries()
        .iter()
        .map(|e| {
            format!(
                "{{\"op\":\"{}\",\"conn\":{},\"status\":\"{}\",\"latency_us\":{},\
                 \"queue_wait_us\":{},\"finished_at_us\":{},\"progress\":{}}}",
                e.op,
                e.conn,
                e.status,
                e.latency_us,
                e.queue_wait_us,
                e.finished_at_us,
                progress_json("done", &e.progress),
            )
        })
        .collect();
    ReplyBuilder::new(id, "ok")
        .raw_field("slow_requests", &format!("[{}]", entries.join(",")))
        .finish()
}

// ---- Prometheus text exposition ---------------------------------------

fn push_histogram(out: &mut String, family: &str, snap: &HistogramSnapshot) {
    out.push_str(&format!("# TYPE {family} histogram\n"));
    let mut cumulative = 0u64;
    for (_, upper, count) in snap.nonzero_buckets() {
        cumulative += count;
        out.push_str(&format!("{family}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{family}_bucket{{le=\"+Inf\"}} {}\n", snap.count()));
    out.push_str(&format!("{family}_sum {}\n", snap.sum()));
    out.push_str(&format!("{family}_count {}\n", snap.count()));
}

fn push_gauge(out: &mut String, family: &str, value: i64) {
    out.push_str(&format!("# TYPE {family} gauge\n{family} {value}\n"));
}

fn push_counter(out: &mut String, family: &str, value: u64) {
    out.push_str(&format!("# TYPE {family} counter\n{family} {value}\n"));
}

/// Renders the whole introspection surface in the Prometheus text
/// format (version 0.0.4): server counters as `_total` counters, queue
/// and worker state as gauges, the latency/queue-wait distributions as
/// native histograms, and per-worker `sat.progress`-derived gauges.
pub(crate) fn render_prometheus(shared: &Shared) -> String {
    let mut out = String::with_capacity(4096);
    let c = shared.counters();
    push_counter(&mut out, "sufsat_requests_total", c.requests);
    push_counter(&mut out, "sufsat_ok_total", c.ok);
    push_counter(&mut out, "sufsat_errors_total", c.errors);
    push_counter(&mut out, "sufsat_overloaded_total", c.overloaded);
    push_counter(&mut out, "sufsat_timeouts_total", c.timeouts);
    push_counter(&mut out, "sufsat_deadline_expired_total", c.deadline_expired);
    push_counter(&mut out, "sufsat_cancelled_total", c.cancelled);
    push_counter(&mut out, "sufsat_panics_total", c.panics);
    push_counter(&mut out, "sufsat_sessions_opened_total", c.sessions_opened);

    push_gauge(&mut out, "sufsat_up", 1);
    push_gauge(&mut out, "sufsat_draining", i64::from(shared.draining()));
    push_gauge(&mut out, "sufsat_queue_depth", shared.queue_depth() as i64);
    push_gauge(&mut out, "sufsat_inflight", shared.inflight_now());
    push_gauge(&mut out, "sufsat_open_sessions", shared.open_sessions_now());
    push_gauge(&mut out, "sufsat_connections", shared.connections_now());
    push_gauge(&mut out, "sufsat_workers", shared.workers_configured() as i64);
    push_gauge(&mut out, "sufsat_workers_alive", shared.workers_alive_now());
    out.push_str(&format!(
        "# TYPE sufsat_uptime_seconds gauge\nsufsat_uptime_seconds {}\n",
        shared.uptime_us() / 1_000_000
    ));

    // Result-cache families are rendered unconditionally (all zeros with
    // the cache disabled) so scrapers can rely on their presence.
    let cache = shared.cache_stats();
    push_counter(&mut out, "sufsat_cache_hits_total", cache.hits);
    push_counter(&mut out, "sufsat_cache_misses_total", cache.misses);
    push_counter(&mut out, "sufsat_cache_coalesced_total", shared.cache_coalesced_now());
    push_counter(&mut out, "sufsat_cache_inserts_total", cache.inserts);
    push_counter(&mut out, "sufsat_cache_evictions_total", cache.evictions);
    push_gauge(&mut out, "sufsat_cache_enabled", i64::from(shared.cache_enabled()));
    push_gauge(&mut out, "sufsat_cache_entries", cache.entries as i64);
    push_gauge(&mut out, "sufsat_cache_bytes", cache.bytes as i64);

    push_histogram(&mut out, "sufsat_request_latency_us", &shared.latency_snapshot());
    push_histogram(&mut out, "sufsat_queue_wait_us", &shared.queue_wait_snapshot());
    push_histogram(&mut out, "sufsat_cache_hit_latency_us", &shared.cache_hit_latency_snapshot());

    // Per-worker solver progress, one labeled sample per worker. These
    // are gauges (not counters): they reset with every job.
    let info = shared.worker_info();
    for (family, pick) in [
        ("sufsat_worker_busy", None),
        ("sufsat_sat_conflicts", Some(0usize)),
        ("sufsat_sat_conflicts_per_s", Some(1)),
        ("sufsat_sat_trail_depth", Some(2)),
        ("sufsat_sat_learnt_clauses", Some(3)),
        ("sufsat_sat_arena_bytes", Some(4)),
    ] {
        out.push_str(&format!("# TYPE {family} gauge\n"));
        for (i, (state, p)) in info.iter().enumerate() {
            let value = match pick {
                None => u64::from(*state == "busy"),
                Some(0) => p.conflicts,
                Some(1) => p.conflicts_per_s,
                Some(2) => p.trail_depth,
                Some(3) => p.learnt_clauses,
                _ => p.arena_bytes,
            };
            out.push_str(&format!("{family}{{worker=\"{i}\"}} {value}\n"));
        }
    }
    out
}

// ---- the HTTP listener -------------------------------------------------

/// Binds `addr` and spawns the listener thread. Returns the bound
/// address (for `addr` with port 0) and the thread handle; the thread
/// exits once the server is stopped and it receives one more connection
/// (the finalizer sends a throwaway one, mirroring the main acceptor).
pub(crate) fn spawn_metrics_listener(
    shared: Arc<Shared>,
    addr: &str,
) -> io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let thread = std::thread::Builder::new()
        .name("sufsat-metrics".to_owned())
        .spawn(move || metrics_listener_loop(&shared, &listener))?;
    sufsat_obs::event!("serve.metrics.listen", port = local.port() as u64);
    Ok((local, thread))
}

fn metrics_listener_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stopped() {
                    return;
                }
                continue;
            }
        };
        if shared.stopped() {
            return;
        }
        // One slow or hung scraper must not wedge the listener forever.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = answer_http(shared, stream);
    }
}

/// Reads one request head (bounded) and writes one response.
fn answer_http(shared: &Arc<Shared>, mut stream: TcpStream) -> io::Result<()> {
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    // Read until the end of the request head, EOF, or the buffer limit;
    // the paths served here never carry a body worth waiting for.
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "only GET is supported\n".to_owned())
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                render_prometheus(shared),
            ),
            "/health" => {
                let state = if shared.draining() { "draining" } else { "running" };
                (
                    "200 OK",
                    "application/json",
                    format!(
                        "{{\"state\":\"{state}\",\"workers_alive\":{},\"inflight\":{}}}\n",
                        shared.workers_alive_now(),
                        shared.inflight_now(),
                    ),
                )
            }
            _ => ("404 Not Found", "text/plain", "try /metrics or /health\n".to_owned()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}
