//! Clause storage for the CDCL solver: a flat, contiguous `u32` arena.
//!
//! Clauses live inline in a single `Vec<u32>` (MiniSat-style): a small
//! header followed by the literals, with a [`ClauseRef`] being the word
//! offset of the header. Propagation therefore walks one cache-friendly
//! buffer instead of chasing a `Vec<Vec<Lit>>` pointer per clause.
//! Removal tombstones the clause in place; the wasted space is reclaimed
//! by a compacting garbage collection (see `Solver::garbage_collect`)
//! that relocates live clauses into a fresh arena and leaves forwarding
//! addresses behind so watchers, reasons and the learnt list can be
//! rewritten.

use crate::lit::Lit;

/// Reference to a clause: the word offset of its header inside the arena.
pub(crate) type ClauseRef = u32;

/// Sentinel meaning "no reason clause" for decision/unassigned variables.
pub(crate) const NO_REASON: ClauseRef = u32::MAX;

/// Words preceding the literals of every clause:
/// `[header, lbd | forward, activity]`.
const HEADER_WORDS: usize = 3;

// Header bit layout: `size << 3 | relocated << 2 | removed << 1 | learnt`.
const FLAG_LEARNT: u32 = 0b001;
const FLAG_REMOVED: u32 = 0b010;
const FLAG_RELOCATED: u32 = 0b100;
const SIZE_SHIFT: u32 = 3;

/// The clause database: one flat `u32` arena plus the learnt-clause index.
///
/// Tombstoned clauses keep their header (and size) so the arena stays
/// walkable; [`ClauseDb::wants_gc`] reports when enough words are wasted
/// that compaction pays off.
#[derive(Debug, Default, Clone)]
pub(crate) struct ClauseDb {
    data: Vec<u32>,
    /// Words occupied by tombstoned clauses.
    wasted: usize,
    /// Live clause count.
    live: usize,
    /// Live learnt-clause refs (may contain stale entries cleaned at
    /// reduce/GC time).
    pub(crate) learnts: Vec<ClauseRef>,
}

impl ClauseDb {
    pub(crate) fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Allocates a clause at the end of the arena and returns its reference.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(!lits.is_empty());
        let cref = ClauseRef::try_from(self.data.len()).expect("clause arena overflow");
        let header = ((lits.len() as u32) << SIZE_SHIFT) | if learnt { FLAG_LEARNT } else { 0 };
        self.data.reserve(HEADER_WORDS + lits.len());
        self.data.push(header);
        self.data.push(lbd);
        self.data.push(0f32.to_bits());
        self.data.extend(lits.iter().map(|l| l.index() as u32));
        self.live += 1;
        if learnt {
            self.learnts.push(cref);
        }
        cref
    }

    /// Tombstones a clause. Its slot stays walkable (the size is kept) but
    /// the words count as wasted until the next compaction.
    pub(crate) fn remove(&mut self, cref: ClauseRef) {
        let h = self.data[cref as usize];
        debug_assert_eq!(h & (FLAG_REMOVED | FLAG_RELOCATED), 0, "double removal of {cref}");
        self.data[cref as usize] = h | FLAG_REMOVED;
        self.wasted += HEADER_WORDS + (h >> SIZE_SHIFT) as usize;
        self.live -= 1;
    }

    #[inline]
    pub(crate) fn is_removed(&self, cref: ClauseRef) -> bool {
        self.data[cref as usize] & FLAG_REMOVED != 0
    }

    #[inline]
    pub(crate) fn learnt(&self, cref: ClauseRef) -> bool {
        self.data[cref as usize] & FLAG_LEARNT != 0
    }

    /// Promotes a learnt clause to irredundant: clears the learnt flag and
    /// drops it from the learnt index, so `reduce_db` can never delete it.
    /// Needed when a learnt clause starts justifying the deletion of an
    /// input clause (e.g. preprocessing subsumption).
    pub(crate) fn make_irredundant(&mut self, cref: ClauseRef) {
        let h = self.data[cref as usize];
        if h & FLAG_LEARNT == 0 {
            return;
        }
        self.data[cref as usize] = h & !FLAG_LEARNT;
        if let Some(i) = self.learnts.iter().position(|&c| c == cref) {
            self.learnts.swap_remove(i);
        }
    }

    /// Number of literals in the clause.
    #[inline]
    pub(crate) fn size(&self, cref: ClauseRef) -> usize {
        (self.data[cref as usize] >> SIZE_SHIFT) as usize
    }

    /// The `k`-th literal of the clause.
    #[inline]
    pub(crate) fn lit(&self, cref: ClauseRef, k: usize) -> Lit {
        debug_assert!(k < self.size(cref));
        Lit::from_index(self.data[cref as usize + HEADER_WORDS + k] as usize)
    }

    /// Swaps two literal slots of the clause (watch normalization).
    #[inline]
    pub(crate) fn swap_lits(&mut self, cref: ClauseRef, a: usize, b: usize) {
        let base = cref as usize + HEADER_WORDS;
        self.data.swap(base + a, base + b);
    }

    /// The clause's literals, copied out (cold paths: proofs, simplify).
    pub(crate) fn lits_vec(&self, cref: ClauseRef) -> Vec<Lit> {
        let base = cref as usize + HEADER_WORDS;
        self.data[base..base + self.size(cref)]
            .iter()
            .map(|&w| Lit::from_index(w as usize))
            .collect()
    }

    #[inline]
    pub(crate) fn lbd(&self, cref: ClauseRef) -> u32 {
        self.data[cref as usize + 1]
    }

    #[inline]
    pub(crate) fn activity(&self, cref: ClauseRef) -> f32 {
        f32::from_bits(self.data[cref as usize + 2])
    }

    #[inline]
    pub(crate) fn set_activity(&mut self, cref: ClauseRef, activity: f32) {
        self.data[cref as usize + 2] = activity.to_bits();
    }

    /// Number of live clauses.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Number of live learnt clauses.
    pub(crate) fn num_learnts(&self) -> usize {
        self.learnts
            .iter()
            .filter(|&&c| !self.is_removed(c) && self.learnt(c))
            .count()
    }

    /// All clause refs in the arena, live and tombstoned alike, in
    /// allocation order.
    pub(crate) fn crefs(&self) -> Vec<ClauseRef> {
        let mut out = Vec::with_capacity(self.live);
        let mut at = 0usize;
        while at < self.data.len() {
            out.push(at as ClauseRef);
            at += HEADER_WORDS + (self.data[at] >> SIZE_SHIFT) as usize;
        }
        out
    }

    /// Arena size in words (live + wasted).
    pub(crate) fn arena_words(&self) -> usize {
        self.data.len()
    }

    /// Words currently tombstoned.
    pub(crate) fn wasted_words(&self) -> usize {
        self.wasted
    }

    /// Whether enough of the arena is tombstoned that compaction pays off
    /// (MiniSat's 20% rule).
    pub(crate) fn wants_gc(&self) -> bool {
        self.wasted * 5 > self.data.len()
    }

    /// Relocates `cref` into `to`, leaving a forwarding address behind so
    /// further relocations of the same clause return the same new ref.
    pub(crate) fn reloc(&mut self, cref: ClauseRef, to: &mut ClauseDb) -> ClauseRef {
        let h = self.data[cref as usize];
        if h & FLAG_RELOCATED != 0 {
            return self.data[cref as usize + 1];
        }
        debug_assert_eq!(h & FLAG_REMOVED, 0, "relocating a tombstoned clause {cref}");
        let size = (h >> SIZE_SHIFT) as usize;
        let new = ClauseRef::try_from(to.data.len()).expect("clause arena overflow");
        to.data
            .extend_from_slice(&self.data[cref as usize..cref as usize + HEADER_WORDS + size]);
        to.live += 1;
        self.data[cref as usize] = h | FLAG_RELOCATED;
        self.data[cref as usize + 1] = new;
        new
    }

    /// Installs the compacted arena produced by a relocation pass.
    pub(crate) fn finish_gc(&mut self, to: ClauseDb, learnts: Vec<ClauseRef>) {
        self.data = to.data;
        self.live = to.live;
        self.wasted = 0;
        self.learnts = learnts;
    }
}

/// A watch-list entry: the clause plus a cached "blocker" literal whose truth
/// makes visiting the clause unnecessary.
#[derive(Debug, Copy, Clone)]
pub(crate) struct Watcher {
    pub(crate) cref: ClauseRef,
    pub(crate) blocker: Lit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(xs: &[i32]) -> Vec<Lit> {
        xs.iter()
            .map(|&x| Lit::new(Var::from_index(x.unsigned_abs() as usize), x > 0))
            .collect()
    }

    #[test]
    fn alloc_and_tombstone() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[1, 2]), false, 0);
        let b = db.alloc(&lits(&[2, 3, 4]), true, 2);
        assert_eq!(db.len(), 2);
        assert_eq!(db.num_learnts(), 1);
        assert_eq!(db.size(b), 3);
        assert_eq!(db.lits_vec(b), lits(&[2, 3, 4]));
        db.remove(b);
        assert_eq!(db.len(), 1);
        assert!(db.is_removed(b));
        assert!(!db.is_removed(a));
        assert_eq!(db.wasted_words(), HEADER_WORDS + 3);
        // Tombstones keep their size so the arena stays walkable.
        assert_eq!(db.crefs(), vec![a, b]);
    }

    #[test]
    fn reloc_compacts_and_forwards() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[1, 2]), false, 0);
        let b = db.alloc(&lits(&[2, 3]), true, 2);
        let c = db.alloc(&lits(&[3, 4]), false, 0);
        db.set_activity(b, 1.5);
        db.remove(a);
        let mut to = ClauseDb::new();
        let nb = db.reloc(b, &mut to);
        let nc = db.reloc(c, &mut to);
        // A second relocation returns the forwarding address.
        assert_eq!(db.reloc(b, &mut to), nb);
        db.finish_gc(to, vec![nb]);
        assert_eq!(db.len(), 2);
        assert_eq!(db.wasted_words(), 0);
        assert_eq!(db.lits_vec(nb), lits(&[2, 3]));
        assert_eq!(db.lits_vec(nc), lits(&[3, 4]));
        assert!(db.learnt(nb));
        assert_eq!(db.lbd(nb), 2);
        assert_eq!(db.activity(nb), 1.5);
        assert!(!db.learnt(nc));
        assert_eq!(db.num_learnts(), 1);
    }

    #[test]
    fn gc_threshold_tracks_waste() {
        let mut db = ClauseDb::new();
        let refs: Vec<ClauseRef> = (0..10).map(|_| db.alloc(&lits(&[1, 2, 3]), false, 0)).collect();
        assert!(!db.wants_gc());
        for &r in &refs[..5] {
            db.remove(r);
        }
        assert!(db.wants_gc());
    }

    #[test]
    fn activity_round_trips_through_bits() {
        let mut db = ClauseDb::new();
        let a = db.alloc(&lits(&[1, 2]), true, 1);
        assert_eq!(db.activity(a), 0.0);
        db.set_activity(a, 3.25e10);
        assert_eq!(db.activity(a), 3.25e10);
    }
}
