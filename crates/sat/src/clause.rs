//! Clause storage for the CDCL solver.

use crate::lit::Lit;

/// Index of a clause inside the solver's clause database.
pub(crate) type ClauseRef = u32;

/// Sentinel meaning "no reason clause" for decision/unassigned variables.
pub(crate) const NO_REASON: ClauseRef = u32::MAX;

/// A stored clause with CDCL bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct Clause {
    pub(crate) lits: Vec<Lit>,
    /// Learnt (conflict) clause vs. original problem clause.
    pub(crate) learnt: bool,
    /// Bump-and-decay activity used by DB reduction.
    pub(crate) activity: f64,
    /// Literal-block distance at learning time (glue).
    pub(crate) lbd: u32,
    /// Tombstone flag: the slot is free for reuse.
    pub(crate) removed: bool,
}

/// The clause database: an arena of clauses with a free list so that removed
/// learnt clauses can be recycled without invalidating other [`ClauseRef`]s.
#[derive(Debug, Default, Clone)]
pub(crate) struct ClauseDb {
    clauses: Vec<Clause>,
    free: Vec<ClauseRef>,
    /// Live learnt-clause refs (may contain stale entries cleaned at reduce).
    pub(crate) learnts: Vec<ClauseRef>,
}

impl ClauseDb {
    pub(crate) fn new() -> ClauseDb {
        ClauseDb::default()
    }

    /// Allocates a clause and returns its reference.
    pub(crate) fn alloc(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        let clause = Clause {
            lits,
            learnt,
            activity: 0.0,
            lbd,
            removed: false,
        };
        let cref = if let Some(cref) = self.free.pop() {
            self.clauses[cref as usize] = clause;
            cref
        } else {
            let cref = self.clauses.len() as ClauseRef;
            self.clauses.push(clause);
            cref
        };
        if learnt {
            self.learnts.push(cref);
        }
        cref
    }

    /// Marks a clause removed and recycles its slot.
    pub(crate) fn remove(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        debug_assert!(!c.removed, "double removal of clause {cref}");
        c.removed = true;
        c.lits.clear();
        self.free.push(cref);
    }

    pub(crate) fn get(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref as usize]
    }

    pub(crate) fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref as usize]
    }

    /// Number of live clauses.
    pub(crate) fn len(&self) -> usize {
        self.clauses.len() - self.free.len()
    }

    /// Number of allocated slots (live or tombstoned); valid [`ClauseRef`]s
    /// are below this.
    pub(crate) fn raw_len(&self) -> usize {
        self.clauses.len()
    }

    /// Number of live learnt clauses.
    pub(crate) fn num_learnts(&self) -> usize {
        self.learnts
            .iter()
            .filter(|&&c| !self.clauses[c as usize].removed && self.clauses[c as usize].learnt)
            .count()
    }
}

/// A watch-list entry: the clause plus a cached "blocker" literal whose truth
/// makes visiting the clause unnecessary.
#[derive(Debug, Copy, Clone)]
pub(crate) struct Watcher {
    pub(crate) cref: ClauseRef,
    pub(crate) blocker: Lit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn lits(xs: &[i32]) -> Vec<Lit> {
        xs.iter()
            .map(|&x| Lit::new(Var::from_index(x.unsigned_abs() as usize), x > 0))
            .collect()
    }

    #[test]
    fn alloc_and_recycle() {
        let mut db = ClauseDb::new();
        let a = db.alloc(lits(&[1, 2]), false, 0);
        let b = db.alloc(lits(&[2, 3]), true, 2);
        assert_eq!(db.len(), 2);
        assert_eq!(db.num_learnts(), 1);
        db.remove(b);
        assert_eq!(db.len(), 1);
        let c = db.alloc(lits(&[4]), false, 0);
        assert_eq!(c, b, "freed slot is recycled");
        assert_eq!(db.len(), 2);
        assert!(!db.get(a).removed);
        assert_eq!(db.get(c).lits, lits(&[4]));
    }
}
