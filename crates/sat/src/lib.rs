//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This crate is the Boolean-satisfiability substrate of the `sufsat`
//! reproduction of *"A Hybrid SAT-Based Decision Procedure for Separation
//! Logic with Uninterpreted Functions"* (Seshia, Lahiri, Bryant — DAC 2003).
//! The paper's experiments used the zChaff solver; this crate provides a
//! from-scratch solver in the same lineage: two-watched-literal propagation,
//! VSIDS decisions with phase saving, first-UIP conflict learning with clause
//! minimization, Luby restarts, and learnt-database reduction.
//!
//! The statistics it exposes ([`Stats`]) mirror the columns of the paper's
//! Figure 2: number of CNF clauses, number of conflict clauses, and SAT time.
//!
//! # Examples
//!
//! ```
//! use sufsat_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! // (x | y) & (!x | y) & (!y | !x)
//! solver.add_clause([x.positive(), y.positive()]);
//! solver.add_clause([x.negative(), y.positive()]);
//! solver.add_clause([y.negative(), x.negative()]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.model_value(y), Some(true));
//! assert_eq!(solver.model_value(x), Some(false));
//! ```

#![warn(missing_docs)]

mod clause;
mod heap;
mod lit;
mod solver;
mod stats;

pub mod proof;

pub mod dimacs;

pub use lit::{LBool, Lit, Var};
pub use proof::{check_refutation, Proof, ProofStep};
pub use solver::{Config, Interrupt, SolveResult, Solver};
pub use stats::Stats;

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force satisfiability over up to 16 variables.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
        assert!(num_vars <= 16);
        'outer: for m in 0u32..(1 << num_vars) {
            for c in clauses {
                if !c.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos) {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    fn clause_strategy(num_vars: usize) -> impl Strategy<Value = Vec<(usize, bool)>> {
        prop::collection::vec((0..num_vars, any::<bool>()), 1..=4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn solver_agrees_with_brute_force(
            num_vars in 1usize..=8,
            seed_clauses in prop::collection::vec(clause_strategy(8), 0..24),
        ) {
            let clauses: Vec<Vec<(usize, bool)>> = seed_clauses
                .into_iter()
                .map(|c| c.into_iter().map(|(v, p)| (v % num_vars, p)).collect())
                .collect();
            let expected = brute_force_sat(num_vars, &clauses);
            let mut solver = Solver::new();
            solver.reserve_vars(num_vars);
            for c in &clauses {
                solver.add_clause(
                    c.iter().map(|&(v, p)| Lit::new(Var::from_index(v), p)),
                );
            }
            let result = solver.solve();
            prop_assert_eq!(result == SolveResult::Sat, expected);
            if result == SolveResult::Sat {
                // The model must satisfy every clause.
                for c in &clauses {
                    let satisfied = c
                        .iter()
                        .any(|&(v, p)| solver.model_value(Var::from_index(v)) == Some(p));
                    prop_assert!(satisfied);
                }
            }
        }

        /// Solving under assumptions matches solving with the assumptions
        /// added as unit clauses.
        #[test]
        fn assumptions_match_unit_clauses(
            num_vars in 1usize..=6,
            seed_clauses in prop::collection::vec(clause_strategy(6), 0..16),
            raw_assumptions in prop::collection::vec((0usize..6, any::<bool>()), 0..4),
        ) {
            let clauses: Vec<Vec<(usize, bool)>> = seed_clauses
                .into_iter()
                .map(|c| c.into_iter().map(|(v, p)| (v % num_vars, p)).collect())
                .collect();
            let mut assumptions: Vec<(usize, bool)> = raw_assumptions
                .into_iter()
                .map(|(v, p)| (v % num_vars, p))
                .collect();
            // Contradictory assumption pairs are legal; keep them.
            assumptions.dedup();
            let as_lit = |&(v, p): &(usize, bool)| Lit::new(Var::from_index(v), p);

            let mut s1 = Solver::new();
            s1.reserve_vars(num_vars);
            for c in &clauses {
                s1.add_clause(c.iter().map(as_lit));
            }
            let lits: Vec<Lit> = assumptions.iter().map(as_lit).collect();
            let under_assumptions = s1.solve_with_assumptions(&lits);

            let mut s2 = Solver::new();
            s2.reserve_vars(num_vars);
            for c in &clauses {
                s2.add_clause(c.iter().map(as_lit));
            }
            let mut consistent = true;
            for l in &lits {
                consistent &= s2.add_clause([*l]);
            }
            let with_units = if consistent { s2.solve() } else { SolveResult::Unsat };
            prop_assert_eq!(
                under_assumptions == SolveResult::Sat,
                with_units == SolveResult::Sat
            );
        }

        /// Every UNSAT answer carries a DRAT proof that the built-in
        /// forward RUP checker accepts.
        #[test]
        fn unsat_proofs_check(
            num_vars in 1usize..=6,
            seed_clauses in prop::collection::vec(clause_strategy(6), 1..22),
        ) {
            let clauses: Vec<Vec<(usize, bool)>> = seed_clauses
                .into_iter()
                .map(|c| c.into_iter().map(|(v, p)| (v % num_vars, p)).collect())
                .collect();
            let mut solver = Solver::new();
            solver.enable_proof();
            solver.reserve_vars(num_vars);
            let as_lits = |c: &Vec<(usize, bool)>| -> Vec<Lit> {
                c.iter().map(|&(v, p)| Lit::new(Var::from_index(v), p)).collect()
            };
            for c in &clauses {
                solver.add_clause(as_lits(c));
            }
            if solver.solve() == SolveResult::Unsat {
                let proof = solver.proof().expect("logging enabled");
                prop_assert!(proof.is_refutation());
                let original: Vec<Vec<Lit>> = clauses.iter().map(as_lits).collect();
                prop_assert!(
                    check_refutation(&original, proof),
                    "DRAT proof failed forward checking"
                );
            }
        }

        #[test]
        fn incremental_matches_monolithic(
            num_vars in 1usize..=6,
            batch1 in prop::collection::vec(clause_strategy(6), 0..10),
            batch2 in prop::collection::vec(clause_strategy(6), 0..10),
        ) {
            let norm = |cs: Vec<Vec<(usize, bool)>>| -> Vec<Vec<(usize, bool)>> {
                cs.into_iter()
                    .map(|c| c.into_iter().map(|(v, p)| (v % num_vars, p)).collect())
                    .collect()
            };
            let batch1 = norm(batch1);
            let batch2 = norm(batch2);
            let all: Vec<_> = batch1.iter().chain(batch2.iter()).cloned().collect();
            let expected = brute_force_sat(num_vars, &all);

            let mut solver = Solver::new();
            solver.reserve_vars(num_vars);
            for c in &batch1 {
                solver.add_clause(c.iter().map(|&(v, p)| Lit::new(Var::from_index(v), p)));
            }
            let _ = solver.solve();
            for c in &batch2 {
                solver.add_clause(c.iter().map(|&(v, p)| Lit::new(Var::from_index(v), p)));
            }
            prop_assert_eq!(solver.solve() == SolveResult::Sat, expected);
        }
    }
}
