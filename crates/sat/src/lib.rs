//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This crate is the Boolean-satisfiability substrate of the `sufsat`
//! reproduction of *"A Hybrid SAT-Based Decision Procedure for Separation
//! Logic with Uninterpreted Functions"* (Seshia, Lahiri, Bryant — DAC 2003).
//! The paper's experiments used the zChaff solver; this crate provides a
//! from-scratch solver in the same lineage: two-watched-literal propagation,
//! VSIDS decisions with phase saving, first-UIP conflict learning with clause
//! minimization, Luby restarts, and learnt-database reduction.
//!
//! The statistics it exposes ([`Stats`]) mirror the columns of the paper's
//! Figure 2: number of CNF clauses, number of conflict clauses, and SAT time.
//!
//! # Examples
//!
//! ```
//! use sufsat_sat::{Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! // (x | y) & (!x | y) & (!y | !x)
//! solver.add_clause([x.positive(), y.positive()]);
//! solver.add_clause([x.negative(), y.positive()]);
//! solver.add_clause([y.negative(), x.negative()]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.model_value(y), Some(true));
//! assert_eq!(solver.model_value(x), Some(false));
//! ```

#![warn(missing_docs)]

mod assume;
mod cancel;
mod clause;
mod heap;
mod lit;
mod preprocess;
mod progress;
mod solver;
mod stats;

pub mod proof;

pub mod dimacs;

pub use assume::{minimize_assumptions, MinimizeStats};
pub use cancel::CancelToken;
pub use lit::{LBool, Lit, Var};
pub use progress::{ProgressHandle, ProgressSnapshot};
pub use proof::{check_refutation, Proof, ProofStep};
pub use solver::{Config, Interrupt, SolveResult, Solver};
pub use stats::Stats;

#[cfg(test)]
mod prop_tests {
    use super::*;
    use sufsat_prng::Prng;

    /// Brute-force satisfiability over up to 16 variables.
    fn brute_force_sat(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
        assert!(num_vars <= 16);
        'outer: for m in 0u32..(1 << num_vars) {
            for c in clauses {
                if !c.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos) {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    fn random_clause(rng: &mut Prng, num_vars: usize) -> Vec<(usize, bool)> {
        let len = rng.random_range(1usize..5);
        (0..len)
            .map(|_| (rng.random_range(0..num_vars), rng.random_bool(0.5)))
            .collect()
    }

    fn random_clauses(
        rng: &mut Prng,
        num_vars: usize,
        max_clauses: usize,
    ) -> Vec<Vec<(usize, bool)>> {
        let n = rng.random_range(0..max_clauses);
        (0..n).map(|_| random_clause(rng, num_vars)).collect()
    }

    #[test]
    fn solver_agrees_with_brute_force() {
        let mut rng = Prng::seed_from_u64(0x5a7_0001);
        for _case in 0..128 {
            let num_vars = rng.random_range(1usize..9);
            let clauses = random_clauses(&mut rng, num_vars, 24);
            let expected = brute_force_sat(num_vars, &clauses);
            let mut solver = Solver::new();
            solver.reserve_vars(num_vars);
            for c in &clauses {
                solver.add_clause(
                    c.iter().map(|&(v, p)| Lit::new(Var::from_index(v), p)),
                );
            }
            let result = solver.solve();
            assert_eq!(result == SolveResult::Sat, expected, "clauses: {clauses:?}");
            if result == SolveResult::Sat {
                // The model must satisfy every clause.
                for c in &clauses {
                    let satisfied = c
                        .iter()
                        .any(|&(v, p)| solver.model_value(Var::from_index(v)) == Some(p));
                    assert!(satisfied, "model violates clause {c:?}");
                }
            }
        }
    }

    /// Solving under assumptions matches solving with the assumptions
    /// added as unit clauses.
    #[test]
    fn assumptions_match_unit_clauses() {
        let mut rng = Prng::seed_from_u64(0x5a7_0002);
        for _case in 0..128 {
            let num_vars = rng.random_range(1usize..7);
            let clauses = random_clauses(&mut rng, num_vars, 16);
            let n_assumptions = rng.random_range(0usize..4);
            let mut assumptions: Vec<(usize, bool)> = (0..n_assumptions)
                .map(|_| (rng.random_range(0..num_vars), rng.random_bool(0.5)))
                .collect();
            // Contradictory assumption pairs are legal; keep them.
            assumptions.dedup();
            let as_lit = |&(v, p): &(usize, bool)| Lit::new(Var::from_index(v), p);

            let mut s1 = Solver::new();
            s1.reserve_vars(num_vars);
            for c in &clauses {
                s1.add_clause(c.iter().map(as_lit));
            }
            let lits: Vec<Lit> = assumptions.iter().map(as_lit).collect();
            let under_assumptions = s1.solve_with_assumptions(&lits);

            let mut s2 = Solver::new();
            s2.reserve_vars(num_vars);
            for c in &clauses {
                s2.add_clause(c.iter().map(as_lit));
            }
            let mut consistent = true;
            for l in &lits {
                consistent &= s2.add_clause([*l]);
            }
            let with_units = if consistent { s2.solve() } else { SolveResult::Unsat };
            assert_eq!(
                under_assumptions == SolveResult::Sat,
                with_units == SolveResult::Sat,
                "clauses: {clauses:?}, assumptions: {assumptions:?}"
            );
        }
    }

    /// Every UNSAT answer carries a DRAT proof that the built-in
    /// forward RUP checker accepts.
    #[test]
    fn unsat_proofs_check() {
        let mut rng = Prng::seed_from_u64(0x5a7_0003);
        for _case in 0..128 {
            let num_vars = rng.random_range(1usize..7);
            let n = rng.random_range(1usize..22);
            let clauses: Vec<Vec<(usize, bool)>> =
                (0..n).map(|_| random_clause(&mut rng, num_vars)).collect();
            let mut solver = Solver::new();
            solver.enable_proof();
            solver.reserve_vars(num_vars);
            let as_lits = |c: &Vec<(usize, bool)>| -> Vec<Lit> {
                c.iter().map(|&(v, p)| Lit::new(Var::from_index(v), p)).collect()
            };
            for c in &clauses {
                solver.add_clause(as_lits(c));
            }
            if solver.solve() == SolveResult::Unsat {
                let proof = solver.proof().expect("logging enabled");
                assert!(proof.is_refutation());
                let original: Vec<Vec<Lit>> = clauses.iter().map(as_lits).collect();
                assert!(
                    check_refutation(&original, proof),
                    "DRAT proof failed forward checking on {clauses:?}"
                );
            }
        }
    }

    #[test]
    fn incremental_matches_monolithic() {
        let mut rng = Prng::seed_from_u64(0x5a7_0004);
        for _case in 0..128 {
            let num_vars = rng.random_range(1usize..7);
            let batch1 = random_clauses(&mut rng, num_vars, 10);
            let batch2 = random_clauses(&mut rng, num_vars, 10);
            let all: Vec<_> = batch1.iter().chain(batch2.iter()).cloned().collect();
            let expected = brute_force_sat(num_vars, &all);

            let mut solver = Solver::new();
            solver.reserve_vars(num_vars);
            for c in &batch1 {
                solver.add_clause(c.iter().map(|&(v, p)| Lit::new(Var::from_index(v), p)));
            }
            let _ = solver.solve();
            for c in &batch2 {
                solver.add_clause(c.iter().map(|&(v, p)| Lit::new(Var::from_index(v), p)));
            }
            assert_eq!(
                solver.solve() == SolveResult::Sat,
                expected,
                "batches: {batch1:?} + {batch2:?}"
            );
        }
    }
}
