//! Cooperative cross-thread cancellation for in-flight `solve` calls.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable flag that asks a running [`Solver::solve`] call to stop.
///
/// Clone the token, hand one copy to [`Solver::set_cancel_token`], keep the
/// other, and call [`CancelToken::cancel`] from any thread. The solver polls
/// the flag with a relaxed atomic load inside its search loop — cheap enough
/// to sit alongside the conflict and timeout budget checks — and returns
/// [`SolveResult::Unknown`]`(`[`Interrupt::Cancelled`]`)` promptly. The
/// solver stays fully usable afterwards: call [`CancelToken::reset`] (or
/// install a fresh token) and solve again.
///
/// [`Solver::solve`]: crate::Solver::solve
/// [`Solver::set_cancel_token`]: crate::Solver::set_cancel_token
/// [`SolveResult::Unknown`]: crate::SolveResult::Unknown
/// [`Interrupt::Cancelled`]: crate::Interrupt::Cancelled
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag. Every clone of this token observes the request.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Lowers the flag so the token (and any solver holding a clone) can be
    /// reused for another run.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }

    /// Whether `self` and `other` share the same underlying flag.
    pub fn same_token(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// Tokens compare by identity of the shared flag, not by its state, so
/// options structs holding a token can still derive `PartialEq`.
impl PartialEq for CancelToken {
    fn eq(&self, other: &CancelToken) -> bool {
        self.same_token(other)
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(a.same_token(&b));
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        a.reset();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert!(!a.same_token(&b));
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
