//! Cross-thread solver progress heartbeats.
//!
//! A long CDCL search is opaque from the outside: a caller holding only a
//! [`CancelToken`](crate::CancelToken) can stop it but cannot tell a
//! stuck search from a slow one. A [`ProgressHandle`] fixes that: the
//! caller clones one into the solver (see
//! [`Solver::set_progress_handle`](crate::Solver::set_progress_handle))
//! and reads [`ProgressSnapshot`]s from any thread while the search runs.
//!
//! Publication piggybacks on the search loop's existing deadline credit
//! counter — the same amortization that bounds timeout polling bounds
//! heartbeat cost, so an installed handle adds a handful of relaxed
//! atomic stores every ~256 cycles and nothing per propagation. When
//! tracing is enabled the solver additionally emits `sat.progress` events
//! at most every 100 ms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point-in-time copy of a running search's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Conflicts since this solve started.
    pub conflicts: u64,
    /// Decisions since this solve started.
    pub decisions: u64,
    /// Propagations since this solve started.
    pub propagations: u64,
    /// Restarts since this solve started.
    pub restarts: u64,
    /// Current assignment trail depth.
    pub trail_depth: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Clause arena footprint in bytes (live + tombstoned).
    pub arena_bytes: u64,
    /// Wall-clock microseconds since this solve started.
    pub elapsed_us: u64,
    /// Recent conflict rate (conflicts per second over the last
    /// heartbeat window).
    pub conflicts_per_s: u64,
    /// Publication sequence number: 0 means "never published", and each
    /// publication increments it, so readers can detect liveness.
    pub seq: u64,
}

#[derive(Default)]
struct Inner {
    conflicts: AtomicU64,
    decisions: AtomicU64,
    propagations: AtomicU64,
    restarts: AtomicU64,
    trail_depth: AtomicU64,
    learnt_clauses: AtomicU64,
    arena_bytes: AtomicU64,
    elapsed_us: AtomicU64,
    conflicts_per_s: AtomicU64,
    seq: AtomicU64,
}

/// A shared, cloneable view onto a solver's live search counters.
///
/// Clone one side into the solver; read the other from any thread. Reads
/// and writes are individually atomic but not mutually consistent — a
/// snapshot taken mid-publication may mix fields from two heartbeats,
/// which is fine for the monitoring use this exists for.
#[derive(Clone, Default)]
pub struct ProgressHandle {
    inner: Arc<Inner>,
}

impl ProgressHandle {
    /// A fresh handle with all counters zero.
    pub fn new() -> ProgressHandle {
        ProgressHandle::default()
    }

    /// Publishes a snapshot. Called by the solver from inside the search
    /// loop; also usable directly (e.g. to clear stale data between jobs
    /// by publishing `ProgressSnapshot::default()`).
    pub fn publish(&self, snap: ProgressSnapshot) {
        let i = &*self.inner;
        i.conflicts.store(snap.conflicts, Ordering::Relaxed);
        i.decisions.store(snap.decisions, Ordering::Relaxed);
        i.propagations.store(snap.propagations, Ordering::Relaxed);
        i.restarts.store(snap.restarts, Ordering::Relaxed);
        i.trail_depth.store(snap.trail_depth, Ordering::Relaxed);
        i.learnt_clauses.store(snap.learnt_clauses, Ordering::Relaxed);
        i.arena_bytes.store(snap.arena_bytes, Ordering::Relaxed);
        i.elapsed_us.store(snap.elapsed_us, Ordering::Relaxed);
        i.conflicts_per_s.store(snap.conflicts_per_s, Ordering::Relaxed);
        i.seq.fetch_add(1, Ordering::Release);
    }

    /// The most recently published snapshot (all-zero with `seq == 0`
    /// when the solver has not published yet).
    pub fn snapshot(&self) -> ProgressSnapshot {
        let i = &*self.inner;
        let seq = i.seq.load(Ordering::Acquire);
        ProgressSnapshot {
            conflicts: i.conflicts.load(Ordering::Relaxed),
            decisions: i.decisions.load(Ordering::Relaxed),
            propagations: i.propagations.load(Ordering::Relaxed),
            restarts: i.restarts.load(Ordering::Relaxed),
            trail_depth: i.trail_depth.load(Ordering::Relaxed),
            learnt_clauses: i.learnt_clauses.load(Ordering::Relaxed),
            arena_bytes: i.arena_bytes.load(Ordering::Relaxed),
            elapsed_us: i.elapsed_us.load(Ordering::Relaxed),
            conflicts_per_s: i.conflicts_per_s.load(Ordering::Relaxed),
            seq,
        }
    }

    /// Resets every counter to zero (bumping `seq`), so a reused handle
    /// does not show the previous job's final state as current progress.
    pub fn clear(&self) {
        self.publish(ProgressSnapshot::default());
    }
}

/// Identity equality: two handles are equal iff they share state (clones
/// of one handle), mirroring [`CancelToken`](crate::CancelToken) so a
/// handle can ride inside `PartialEq` option structs.
impl PartialEq for ProgressHandle {
    fn eq(&self, other: &ProgressHandle) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for ProgressHandle {}

impl std::fmt::Debug for ProgressHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressHandle")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_snapshot_round_trips() {
        let h = ProgressHandle::new();
        assert_eq!(h.snapshot().seq, 0);
        let snap = ProgressSnapshot {
            conflicts: 10,
            decisions: 20,
            propagations: 30,
            restarts: 1,
            trail_depth: 7,
            learnt_clauses: 5,
            arena_bytes: 4096,
            elapsed_us: 1234,
            conflicts_per_s: 8100,
            seq: 0, // ignored on publish
        };
        h.publish(snap);
        let read = h.snapshot();
        assert_eq!(read.seq, 1);
        assert_eq!(read.conflicts, 10);
        assert_eq!(read.arena_bytes, 4096);
        // Clones share state.
        let h2 = h.clone();
        h2.clear();
        let read = h.snapshot();
        assert_eq!(read.seq, 2);
        assert_eq!(read.conflicts, 0);
    }
}
