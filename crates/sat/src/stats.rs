//! Solver statistics, mirroring the measurements reported in the paper's
//! Figure 2 (CNF clause count, conflict-clause count, SAT time).

use std::fmt;
use std::time::Duration;

/// Counters accumulated by [`Solver`](crate::Solver) across `solve` calls.
#[derive(Debug, Default, Clone, PartialEq)]
#[non_exhaustive]
pub struct Stats {
    /// Number of conflicts encountered (== conflict clauses derived; the
    /// paper's "Conflict Clauses" column).
    pub conflicts: u64,
    /// Learnt clauses actually stored in the database (unit learnt clauses
    /// are asserted directly and not stored).
    pub learnt_clauses: u64,
    /// Total literals in learnt clauses after minimization.
    pub learnt_literals: u64,
    /// Decision count.
    pub decisions: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt-database reductions performed.
    pub reductions: u64,
    /// Original (problem) clauses added, after top-level simplification;
    /// the paper's "# of CNF Clauses" column.
    pub original_clauses: u64,
    /// Compacting clause-arena garbage collections performed.
    pub gc_runs: u64,
    /// Variables eliminated by preprocessing (net of later restores).
    pub eliminated_vars: u64,
    /// Clauses deleted by preprocessing subsumption.
    pub subsumed_clauses: u64,
    /// Clauses strengthened by self-subsuming resolution.
    pub strengthened_clauses: u64,
    /// Wall-clock time spent inside `solve`.
    pub solve_time: Duration,
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "clauses={} conflicts={} learnt={} learnt-lits={} decisions={} \
             propagations={} restarts={} reductions={} gcs={} eliminated={} \
             subsumed={} strengthened={} time={:?}",
            self.original_clauses,
            self.conflicts,
            self.learnt_clauses,
            self.learnt_literals,
            self.decisions,
            self.propagations,
            self.restarts,
            self.reductions,
            self.gc_runs,
            self.eliminated_vars,
            self.subsumed_clauses,
            self.strengthened_clauses,
            self.solve_time
        )
    }
}

/// Computes the `i`-th element (1-based) of the Luby restart sequence
/// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
pub(crate) fn luby(index: u64) -> u64 {
    // Find the finite subsequence containing the index and the position
    // within it.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < index + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut i = index;
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_reports_every_counter() {
        let stats = Stats {
            conflicts: 1,
            learnt_clauses: 2,
            learnt_literals: 3,
            decisions: 4,
            propagations: 5,
            restarts: 6,
            reductions: 7,
            original_clauses: 8,
            gc_runs: 10,
            eliminated_vars: 11,
            subsumed_clauses: 12,
            strengthened_clauses: 13,
            solve_time: Duration::from_millis(9),
        };
        let s = stats.to_string();
        for needle in [
            "clauses=8",
            "conflicts=1",
            "learnt=2",
            "learnt-lits=3",
            "decisions=4",
            "propagations=5",
            "restarts=6",
            "reductions=7",
            "gcs=10",
            "eliminated=11",
            "subsumed=12",
            "strengthened=13",
        ] {
            assert!(s.contains(needle), "`{s}` missing `{needle}`");
        }
    }

    #[test]
    fn luby_prefix_matches_reference() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }
}
