//! The CDCL solver proper.

use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::clause::{ClauseDb, ClauseRef, Watcher, NO_REASON};
use crate::heap::VarHeap;
use crate::lit::{LBool, Lit, Var};
use crate::progress::{ProgressHandle, ProgressSnapshot};
use crate::proof::Proof;
use crate::stats::{luby, Stats};

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::model_value`]
    /// or [`Solver::model`].
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
    /// A resource budget (conflicts or wall clock) was exhausted first.
    Unknown(Interrupt),
}

/// Why a solve call stopped without an answer.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum Interrupt {
    /// The conflict budget set by [`Solver::set_conflict_budget`] ran out.
    ConflictBudget,
    /// The wall-clock timeout set by [`Solver::set_timeout`] elapsed.
    Timeout,
    /// Another thread raised the [`CancelToken`] installed with
    /// [`Solver::set_cancel_token`].
    Cancelled,
}

/// Tunable solver parameters. The defaults follow MiniSat/zChaff practice.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Multiplicative VSIDS activity decay per conflict.
    pub var_decay: f64,
    /// Multiplicative clause activity decay per conflict.
    pub clause_decay: f64,
    /// Base interval (in conflicts) scaled by the Luby sequence for restarts.
    pub restart_base: u64,
    /// Initial learnt-clause capacity before the first DB reduction.
    pub first_reduce: usize,
    /// Additional capacity granted after each reduction.
    pub reduce_increment: usize,
    /// Enable phase saving when picking decision polarity.
    pub phase_saving: bool,
    /// Enable restarts.
    pub restarts: bool,
    /// Enable learnt-clause DB reduction.
    pub reduce_db: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100,
            first_reduce: 4000,
            reduce_increment: 1000,
            phase_saving: true,
            restarts: true,
            reduce_db: true,
        }
    }
}

/// A conflict-driven clause-learning SAT solver.
///
/// Implements the techniques of the Chaff/MiniSat lineage that the paper's
/// experiments relied on (zChaff 2001.2.17): two-watched-literal propagation,
/// VSIDS decisions with phase saving, first-UIP learning with clause
/// minimization, Luby restarts and activity/LBD-based clause-database
/// reduction.
///
/// # Examples
///
/// ```
/// use sufsat_sat::{Solver, SolveResult};
///
/// let mut solver = Solver::new();
/// let a = solver.new_var();
/// let b = solver.new_var();
/// solver.add_clause([a.positive(), b.positive()]);
/// solver.add_clause([a.negative()]);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// assert_eq!(solver.model_value(b), Some(true));
/// ```
#[derive(Debug)]
pub struct Solver {
    config: Config,
    pub(crate) db: ClauseDb,
    pub(crate) watches: Vec<Vec<Watcher>>,
    pub(crate) assigns: Vec<LBool>,
    pub(crate) level: Vec<u32>,
    pub(crate) reason: Vec<ClauseRef>,
    pub(crate) trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    heap: VarHeap,
    var_inc: f64,
    clause_inc: f64,
    phase: Vec<bool>,
    seen: Vec<bool>,
    /// Scratch for recursive minimization.
    analyze_stack: Vec<Lit>,
    analyze_clear: Vec<Var>,
    /// False once the clause set is known unsatisfiable at level 0.
    pub(crate) ok: bool,
    pub(crate) model: Vec<bool>,
    /// Variables protected from preprocessing elimination.
    pub(crate) frozen: Vec<bool>,
    /// Variables eliminated by preprocessing (no live clause mentions them).
    pub(crate) eliminated: Vec<bool>,
    /// Clauses removed by variable elimination, in elimination order; used
    /// for model reconstruction and for restoring a variable when later
    /// clauses or assumptions mention it again.
    pub(crate) elim_records: Vec<crate::preprocess::ElimRecord>,
    /// Assumptions of the current `solve_with_assumptions` call.
    assumptions: Vec<Lit>,
    /// Failed-assumption subset from the last assumption-UNSAT answer.
    conflict_assumptions: Vec<Lit>,
    proof: Option<Proof>,
    /// Verbatim input clauses, recorded while proof logging is enabled so
    /// UNSAT answers can be replayed through the RUP checker without the
    /// caller tracking clauses itself.
    input_clauses: Vec<Vec<Lit>>,
    pub(crate) stats: Stats,
    conflict_budget: Option<u64>,
    timeout: Option<Duration>,
    cancel: Option<CancelToken>,
    progress: Option<ProgressHandle>,
    max_learnts: usize,
    restarts_done: u64,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

/// Per-solve heartbeat state: the conflict-rate window and trace-event
/// throttle (see [`Solver::heartbeat`]).
#[derive(Default)]
struct Heartbeat {
    window_start_us: u64,
    window_conflicts: u64,
    window_closed: bool,
    rate: u64,
    last_event_us: u64,
}

impl Solver {
    /// Creates an empty solver with default [`Config`].
    pub fn new() -> Solver {
        Solver::with_config(Config::default())
    }

    /// Creates an empty solver with an explicit configuration.
    pub fn with_config(config: Config) -> Solver {
        let max_learnts = config.first_reduce;
        Solver {
            config,
            db: ClauseDb::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            heap: VarHeap::new(),
            var_inc: 1.0,
            clause_inc: 1.0,
            phase: Vec::new(),
            seen: Vec::new(),
            analyze_stack: Vec::new(),
            analyze_clear: Vec::new(),
            ok: true,
            model: Vec::new(),
            frozen: Vec::new(),
            eliminated: Vec::new(),
            elim_records: Vec::new(),
            assumptions: Vec::new(),
            conflict_assumptions: Vec::new(),
            proof: None,
            input_clauses: Vec::new(),
            stats: Stats::default(),
            conflict_budget: None,
            timeout: None,
            cancel: None,
            progress: None,
            max_learnts,
            restarts_done: 0,
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow_to(self.assigns.len());
        self.heap.insert(v, &self.activity);
        v
    }

    /// Ensures at least `n` variables exist, returning the highest one.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.assigns.len() < n {
            self.new_var();
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live clauses (problem + learnt).
    pub fn num_clauses(&self) -> usize {
        self.db.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Enables DRAT proof logging. Call before adding clauses; derived
    /// clauses, deletions and the final empty clause are then recorded and
    /// can be retrieved with [`Solver::proof`] after an UNSAT answer.
    /// Input clauses are recorded verbatim as well, so
    /// [`Solver::check_proof`] can certify the answer without the caller
    /// keeping its own copy.
    pub fn enable_proof(&mut self) {
        if self.proof.is_none() {
            self.proof = Some(Proof::new());
        }
    }

    /// The recorded DRAT proof, if logging was enabled.
    pub fn proof(&self) -> Option<&Proof> {
        self.proof.as_ref()
    }

    /// The input clauses recorded verbatim since proof logging was enabled
    /// (empty if [`Solver::enable_proof`] was never called).
    pub fn input_clauses(&self) -> &[Vec<Lit>] {
        &self.input_clauses
    }

    /// Replays the recorded DRAT proof through the built-in forward RUP
    /// checker against the recorded input clauses.
    ///
    /// Returns `None` when proof logging was never enabled, otherwise
    /// whether the proof is a valid refutation of the inputs. Only
    /// meaningful after an `Unsat` answer; intended for certification at
    /// test and fuzzing scale.
    pub fn check_proof(&self) -> Option<bool> {
        let proof = self.proof.as_ref()?;
        let _span = sufsat_obs::span_with!(
            "sat.check_proof",
            inputs = self.input_clauses.len(),
            steps = proof.steps().len(),
        );
        let ok = crate::proof::check_refutation(&self.input_clauses, proof);
        sufsat_obs::event!("sat.check_proof.result", ok = ok);
        Some(ok)
    }

    pub(crate) fn proof_add(&mut self, clause: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.add(clause);
        }
    }

    pub(crate) fn proof_delete(&mut self, clause: &[Lit]) {
        if let Some(p) = self.proof.as_mut() {
            p.delete(clause);
        }
    }

    /// Limits the next `solve` call to at most `budget` conflicts
    /// (`None` removes the limit).
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Installs (or removes) a cooperative cancellation token.
    ///
    /// While `solve` runs, any thread holding a clone of the token can call
    /// [`CancelToken::cancel`] to make the search return
    /// [`SolveResult::Unknown`]`(`[`Interrupt::Cancelled`]`)` promptly. The
    /// solver remains valid after an interrupted call: reset the token (or
    /// install a fresh one) and solve again.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The currently installed cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    #[inline]
    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Limits the next `solve` call to roughly `timeout` wall-clock time
    /// (`None` removes the limit). Checked every few hundred conflicts.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Installs (or removes) a progress heartbeat handle.
    ///
    /// While `solve` runs, the solver periodically publishes a
    /// [`ProgressSnapshot`] (conflicts, decisions, trail depth, learnt-db
    /// size, restarts, arena bytes, conflict rate) that any thread holding
    /// a clone of the handle can read with
    /// [`ProgressHandle::snapshot`]. Publication rides the same amortized
    /// credit counter as timeout polling, so an installed handle costs a
    /// handful of relaxed atomic stores every ~256 search cycles.
    pub fn set_progress_handle(&mut self, handle: Option<ProgressHandle>) {
        self.progress = handle;
    }

    /// Adds a clause, simplifying against the top-level assignment.
    ///
    /// Returns `false` iff the clause set became (or already was) trivially
    /// unsatisfiable; once that happens the solver stays unsatisfiable.
    /// Clauses may be added between `solve` calls (incremental use).
    pub fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        if !self.ok {
            return false;
        }
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(
                l.var().index() < self.assigns.len(),
                "literal {l} refers to an unknown variable; call new_var first"
            );
        }
        // Incremental additions may mention variables eliminated by
        // preprocessing; restoring their saved clauses first keeps the
        // clause set equivalent (see `preprocess` module docs).
        self.restore_mentioned(&clause);
        if self.proof.is_some() {
            self.input_clauses.push(clause.clone());
        }
        self.add_clause_core(clause, true)
    }

    /// Shared tail of [`Solver::add_clause`] and elimination restore:
    /// backtracks to level 0, simplifies the clause against the top-level
    /// assignment and stores it. `count_original` controls whether the
    /// clause counts toward the original-clause statistic (restored
    /// elimination clauses were already counted when first added).
    pub(crate) fn add_clause_core(&mut self, mut clause: Vec<Lit>, count_original: bool) -> bool {
        if !self.ok {
            return false;
        }
        // Adding clauses is only sound at decision level 0.
        self.backtrack_to(0);
        clause.sort_unstable();
        clause.dedup();
        // Drop tautologies and literals false at level 0.
        let mut i = 0;
        while i + 1 < clause.len() {
            if clause[i].var() == clause[i + 1].var() {
                return true; // contains l and !l: tautology
            }
            i += 1;
        }
        let before = clause.len();
        clause.retain(|&l| self.value(l) != LBool::False);
        if clause.iter().any(|&l| self.value(l) == LBool::True) {
            return true;
        }
        if clause.len() != before {
            // The stored clause is a simplification of the input; record
            // the derived version so DRAT checking sees it added.
            self.proof_add(&clause.clone());
        }
        if count_original {
            self.stats.original_clauses += 1;
        }
        match clause.len() {
            0 => {
                if before == 0 {
                    // The input itself was empty; the simplification branch
                    // above did not run, so the refutation step is recorded
                    // here.
                    self.proof_add(&[]);
                }
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(clause[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                    self.proof_add(&[]);
                }
                self.ok
            }
            _ => {
                let cref = self.db.alloc(&clause, false, 0);
                self.attach(cref);
                true
            }
        }
    }

    /// Top-level simplification: removes clauses satisfied at decision
    /// level 0 and strips literals falsified there, re-watching shrunk
    /// clauses. Sound to call between `solve` calls; DRAT lines are emitted
    /// for every strengthened clause and deletion.
    ///
    /// Returns `false` iff the clause set is (or becomes) unsatisfiable.
    pub fn simplify(&mut self) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            self.proof_add(&[]);
            return false;
        }
        let crefs: Vec<ClauseRef> = self
            .db
            .crefs()
            .into_iter()
            .filter(|&c| !self.db.is_removed(c) && self.db.size(c) >= 2)
            .collect();
        for cref in crefs {
            let lits = self.db.lits_vec(cref);
            if lits.iter().any(|&l| self.value(l) == LBool::True) {
                // Satisfied forever: drop it.
                if !self.locked(cref) {
                    self.proof_delete(&lits);
                    self.detach(cref);
                    self.db.remove(cref);
                }
                continue;
            }
            let kept: Vec<Lit> = lits
                .iter()
                .copied()
                .filter(|&l| self.value(l) != LBool::False)
                .collect();
            if kept.len() == lits.len() {
                continue;
            }
            // Strengthened: emit the new clause, replace the old one.
            self.proof_add(&kept);
            self.proof_delete(&lits);
            self.detach(cref);
            let learnt = self.db.learnt(cref);
            let lbd = self.db.lbd(cref);
            self.db.remove(cref);
            match kept.len() {
                0 => {
                    self.ok = false;
                    return false;
                }
                1 => {
                    if self.value(kept[0]) == LBool::Undef {
                        self.enqueue(kept[0], NO_REASON);
                        if self.propagate().is_some() {
                            self.ok = false;
                            self.proof_add(&[]);
                            return false;
                        }
                    }
                }
                _ => {
                    let new_ref = self.db.alloc(&kept, learnt, lbd);
                    self.attach(new_ref);
                }
            }
        }
        self.maybe_gc();
        true
    }

    /// Runs the CDCL search.
    ///
    /// Statistics accumulate across calls; after `Sat`, the model is available
    /// until clauses are added or `solve` is called again.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Runs the CDCL search under `assumptions`: literals treated as the
    /// first decisions of the search. `Unsat` then means "unsatisfiable
    /// under the assumptions"; [`Solver::failed_assumptions`] returns a
    /// subset of the assumptions sufficient for the conflict, and the
    /// solver remains usable with different assumptions afterwards.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        // An assumption over an eliminated variable forces its saved
        // clauses back in first, so the assumption actually constrains
        // the search (see the `preprocess` module).
        self.restore_mentioned(assumptions);
        let span = sufsat_obs::span_with!(
            "sat.solve",
            vars = self.num_vars(),
            clauses = self.stats.original_clauses,
            assumptions = assumptions.len(),
        );
        let before = self.stats.clone();
        let start = Instant::now();
        self.assumptions = assumptions.to_vec();
        self.conflict_assumptions.clear();
        let result = self.search(start);
        self.assumptions.clear();
        self.stats.solve_time += start.elapsed();
        if span.is_recording() {
            self.trace_solve(&before, &result);
        }
        result
    }

    /// Emits the per-solve event and bumps the cumulative counters
    /// (deltas against `before`, so stats accumulating across solve calls
    /// are not double-counted).
    fn trace_solve(&self, before: &Stats, result: &SolveResult) {
        static CONFLICTS: sufsat_obs::Counter = sufsat_obs::Counter::new("sat.conflicts");
        static DECISIONS: sufsat_obs::Counter = sufsat_obs::Counter::new("sat.decisions");
        static PROPAGATIONS: sufsat_obs::Counter = sufsat_obs::Counter::new("sat.propagations");
        static RESTARTS: sufsat_obs::Counter = sufsat_obs::Counter::new("sat.restarts");
        static SOLVES: sufsat_obs::Counter = sufsat_obs::Counter::new("sat.solves");
        let s = &self.stats;
        CONFLICTS.add(s.conflicts - before.conflicts);
        DECISIONS.add(s.decisions - before.decisions);
        PROPAGATIONS.add(s.propagations - before.propagations);
        RESTARTS.add(s.restarts - before.restarts);
        SOLVES.incr();
        let verdict = match result {
            SolveResult::Sat => "sat",
            SolveResult::Unsat => "unsat",
            SolveResult::Unknown(Interrupt::ConflictBudget) => "conflict_budget",
            SolveResult::Unknown(Interrupt::Timeout) => "timeout",
            SolveResult::Unknown(Interrupt::Cancelled) => "cancelled",
        };
        sufsat_obs::event!(
            "sat.result",
            result = verdict,
            conflicts = s.conflicts - before.conflicts,
            decisions = s.decisions - before.decisions,
            propagations = s.propagations - before.propagations,
            restarts = s.restarts - before.restarts,
            learnt_clauses = s.learnt_clauses - before.learnt_clauses,
            reductions = s.reductions - before.reductions,
            cnf_clauses = s.original_clauses,
            proof_steps = self.proof.as_ref().map_or(0, |p| p.steps().len()),
        );
    }

    /// After `Unsat` from [`Solver::solve_with_assumptions`]: a subset of
    /// the assumptions sufficient to cause the conflict (empty when the
    /// clause set is unsatisfiable outright).
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.conflict_assumptions
    }

    fn search(&mut self, start: Instant) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            self.proof_add(&[]);
            return SolveResult::Unsat;
        }
        let budget_start = self.stats.conflicts;
        let mut conflicts_this_restart = 0u64;
        let mut restart_limit = self.restart_limit();
        // Deadline polling is amortized over a credit counter rather than
        // the conflict count: each cycle earns 1 credit and each conflict
        // 16 more, and the clock is read once 256 credits accrue. On
        // conflict-heavy search that is the old every-few-conflicts rate,
        // while conflict-free search (huge easy instances) still polls
        // every 256 cycles instead of never. Progress heartbeats ride the
        // same credit counter, so they share its amortization.
        let mut deadline_credit = 0u32;
        let mut heartbeat = Heartbeat::default();
        loop {
            // One relaxed atomic load per propagate/decide cycle — cheap
            // next to propagation, and prompt enough that cancellation
            // lands within milliseconds even on hard instances.
            if self.cancel_requested() {
                self.backtrack_to(0);
                return SolveResult::Unknown(Interrupt::Cancelled);
            }
            deadline_credit += 1;
            if deadline_credit >= 256 {
                deadline_credit = 0;
                // One clock read serves the deadline check, the progress
                // heartbeat and the throttled trace event; skipped
                // entirely when none of the three is active.
                if self.timeout.is_some() || self.progress.is_some() || sufsat_obs::enabled() {
                    let elapsed = start.elapsed();
                    if let Some(limit) = self.timeout {
                        if elapsed >= limit {
                            self.backtrack_to(0);
                            return SolveResult::Unknown(Interrupt::Timeout);
                        }
                    }
                    self.heartbeat(elapsed, &mut heartbeat);
                }
            }
            if let Some(confl) = self.propagate() {
                // Conflict.
                self.stats.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.proof_add(&[]);
                    return SolveResult::Unsat;
                }
                let (learnt, bt_level, lbd) = self.analyze(confl);
                self.backtrack_to(bt_level);
                self.learn(learnt, lbd);
                self.decay_activities();
                deadline_credit += 16;
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= budget {
                        self.backtrack_to(0);
                        return SolveResult::Unknown(Interrupt::ConflictBudget);
                    }
                }
            } else {
                if self.config.restarts && conflicts_this_restart >= restart_limit {
                    self.stats.restarts += 1;
                    self.restarts_done += 1;
                    conflicts_this_restart = 0;
                    restart_limit = self.restart_limit();
                    self.backtrack_to(0);
                    continue;
                }
                if self.config.reduce_db && self.db.num_learnts() > self.max_learnts {
                    self.reduce_db();
                }
                // Assumption literals act as the first decisions.
                if (self.decision_level() as usize) < self.assumptions.len() {
                    let a = self.assumptions[self.decision_level() as usize];
                    match self.value(a) {
                        LBool::True => {
                            // Already implied: open an empty decision level.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                        }
                        LBool::False => {
                            // Conflicting assumption: analyze which earlier
                            // assumptions force its negation. The conflicting
                            // assumption itself belongs in the core — the
                            // earlier ones only imply its negation.
                            let mut core = self.analyze_final(!a);
                            if !core.contains(&a) {
                                core.push(a);
                            }
                            self.conflict_assumptions = core;
                            self.backtrack_to(0);
                            return SolveResult::Unsat;
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        // All variables assigned: satisfying assignment.
                        self.model = self.assigns.iter().map(|&a| a == LBool::True).collect();
                        self.extend_model();
                        self.backtrack_to(0);
                        return SolveResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        let polarity = if self.config.phase_saving {
                            self.phase[v.index()]
                        } else {
                            false
                        };
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(Lit::new(v, polarity), NO_REASON);
                    }
                }
            }
        }
    }

    /// Publishes a progress snapshot to the installed handle and, when
    /// tracing is enabled, emits a throttled `sat.progress` event.
    /// Called from the search loop's amortized credit-poll block.
    fn heartbeat(&self, elapsed: Duration, beat: &mut Heartbeat) {
        let now_us = elapsed.as_micros() as u64;
        // Conflict rate over the last throttle window (>= 100 ms apart so
        // short windows don't produce noisy rates); until the first window
        // closes, fall back to the whole-solve average.
        if now_us.saturating_sub(beat.window_start_us) >= 100_000 {
            let dt = now_us - beat.window_start_us;
            let dc = self.stats.conflicts.saturating_sub(beat.window_conflicts);
            beat.rate = dc.saturating_mul(1_000_000) / dt;
            beat.window_start_us = now_us;
            beat.window_conflicts = self.stats.conflicts;
            beat.window_closed = true;
        }
        let rate = if beat.window_closed {
            beat.rate
        } else if now_us > 0 {
            self.stats.conflicts.saturating_mul(1_000_000) / now_us
        } else {
            0
        };
        let snap = ProgressSnapshot {
            conflicts: self.stats.conflicts,
            decisions: self.stats.decisions,
            propagations: self.stats.propagations,
            restarts: self.stats.restarts,
            trail_depth: self.trail.len() as u64,
            learnt_clauses: self.db.num_learnts() as u64,
            arena_bytes: (self.db.arena_words() * 4) as u64,
            elapsed_us: now_us,
            conflicts_per_s: rate,
            seq: 0, // assigned by publish
        };
        if let Some(handle) = self.progress.as_ref() {
            handle.publish(snap);
        }
        if sufsat_obs::enabled() && now_us.saturating_sub(beat.last_event_us) >= 100_000 {
            beat.last_event_us = now_us;
            sufsat_obs::event!(
                "sat.progress",
                conflicts = snap.conflicts,
                decisions = snap.decisions,
                propagations = snap.propagations,
                restarts = snap.restarts,
                trail_depth = snap.trail_depth,
                learnt_clauses = snap.learnt_clauses,
                arena_bytes = snap.arena_bytes,
                conflicts_per_s = snap.conflicts_per_s,
            );
        }
    }

    /// The satisfying value of `v` from the last `Sat` answer.
    ///
    /// Returns `None` if no model is available.
    pub fn model_value(&self, v: Var) -> Option<bool> {
        self.model.get(v.index()).copied()
    }

    /// The satisfying value of a literal from the last `Sat` answer.
    pub fn model_lit_value(&self, l: Lit) -> Option<bool> {
        self.model_value(l.var()).map(|b| b == l.is_positive())
    }

    /// The full model from the last `Sat` answer (indexed by variable).
    pub fn model(&self) -> &[bool] {
        &self.model
    }

    // ---- internals -----------------------------------------------------

    fn restart_limit(&self) -> u64 {
        self.config.restart_base * luby(self.restarts_done)
    }

    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    pub(crate) fn value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    pub(crate) fn enqueue(&mut self, l: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = LBool::from_bool(l.is_positive());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail.push(l);
    }

    pub(crate) fn attach(&mut self, cref: ClauseRef) {
        debug_assert!(self.db.size(cref) >= 2);
        let w0 = self.db.lit(cref, 0);
        let w1 = self.db.lit(cref, 1);
        self.watches[(!w0).index()].push(Watcher { cref, blocker: w1 });
        self.watches[(!w1).index()].push(Watcher { cref, blocker: w0 });
    }

    pub(crate) fn detach(&mut self, cref: ClauseRef) {
        let w0 = self.db.lit(cref, 0);
        let w1 = self.db.lit(cref, 1);
        self.watches[(!w0).index()].retain(|w| w.cref != cref);
        self.watches[(!w1).index()].retain(|w| w.cref != cref);
    }

    /// Two-watched-literal Boolean constraint propagation.
    ///
    /// Returns the conflicting clause, if any.
    pub(crate) fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching !p must be visited: p became true, so their
            // watched literal !p became false.
            let mut watchers = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            let mut conflict = None;
            'watchers: while i < watchers.len() {
                let w = watchers[i];
                if self.value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let false_lit = !p;
                // Normalize so the false literal is at position 1.
                if self.db.lit(w.cref, 0) == false_lit {
                    self.db.swap_lits(w.cref, 0, 1);
                }
                debug_assert_eq!(self.db.lit(w.cref, 1), false_lit);
                let first = self.db.lit(w.cref, 0);
                let len = self.db.size(w.cref);
                if first != w.blocker && self.value(first) == LBool::True {
                    watchers[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..len {
                    let lk = self.db.lit(w.cref, k);
                    if self.value(lk) != LBool::False {
                        self.db.swap_lits(w.cref, 1, k);
                        self.watches[(!lk).index()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        watchers.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No new watch: the clause is unit or conflicting.
                watchers[i].blocker = first;
                if self.value(first) == LBool::False {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.enqueue(first, w.cref);
                i += 1;
            }
            // Put back any remaining watchers (including on conflict).
            let dest = &mut self.watches[p.index()];
            if dest.is_empty() {
                *dest = watchers;
            } else {
                // attach() during the loop may have pushed new entries here.
                watchers.append(dest);
                *dest = watchers;
            }
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis with recursive clause minimization.
    ///
    /// Returns the learnt clause (asserting literal first), the backtrack
    /// level, and the clause's LBD.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_index(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();
        let current_level = self.decision_level();

        loop {
            self.bump_clause(confl);
            let nlits = self.db.size(confl);
            let skip = usize::from(p.is_some());
            for k in skip..nlits {
                let q = self.db.lit(confl, k);
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[lit.var().index()];
            debug_assert_ne!(confl, NO_REASON);
        }
        let uip = p.expect("conflict at level > 0 has a UIP");
        learnt[0] = !uip;

        // Mark all learnt vars seen (UIP var was unmarked above).
        self.seen[uip.var().index()] = true;
        self.analyze_clear = learnt.iter().map(|l| l.var()).collect();

        // Recursive minimization: drop literals implied by the rest.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| self.reason[l.var().index()] == NO_REASON || !self.lit_redundant(l))
            .collect();
        learnt.truncate(1);
        learnt.extend(keep);
        self.stats.learnt_literals += learnt.len() as u64;

        // LBD: number of distinct decision levels.
        let mut levels: Vec<u32> = learnt.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;

        // Backtrack level: highest level among non-UIP literals.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        for v in std::mem::take(&mut self.analyze_clear) {
            self.seen[v.index()] = false;
        }
        (learnt, bt_level, lbd)
    }

    /// Collects the subset of assumptions that imply `p` (used when an
    /// assumption is found already false): walks reasons backwards from the
    /// trail, gathering decision literals.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut out = Vec::new();
        if self.decision_level() == 0 {
            return out;
        }
        let mut seen = vec![false; self.assigns.len()];
        seen[p.var().index()] = true;
        let start = self.trail_lim[0];
        for i in (start..self.trail.len()).rev() {
            let q = self.trail[i];
            if !seen[q.var().index()] {
                continue;
            }
            let reason = self.reason[q.var().index()];
            if reason == NO_REASON {
                out.push(q);
            } else {
                let n = self.db.size(reason);
                for k in 1..n {
                    let r = self.db.lit(reason, k);
                    if self.level[r.var().index()] > 0 {
                        seen[r.var().index()] = true;
                    }
                }
            }
        }
        out
    }

    /// Checks whether `l` is redundant in the learnt clause: every literal in
    /// its reason (transitively) is already marked seen or at level 0.
    fn lit_redundant(&mut self, l: Lit) -> bool {
        self.analyze_stack.clear();
        self.analyze_stack.push(l);
        let mut newly_seen: Vec<Var> = Vec::new();
        while let Some(q) = self.analyze_stack.pop() {
            let reason = self.reason[q.var().index()];
            debug_assert_ne!(reason, NO_REASON);
            let nlits = self.db.size(reason);
            for k in 1..nlits {
                let r = self.db.lit(reason, k);
                let v = r.var();
                if self.seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                if self.reason[v.index()] == NO_REASON {
                    // Hit a decision not in the clause: not redundant.
                    for nv in newly_seen {
                        self.seen[nv.index()] = false;
                    }
                    return false;
                }
                self.seen[v.index()] = true;
                newly_seen.push(v);
                self.analyze_stack.push(r);
            }
        }
        // Keep the transitive marks so sibling checks can reuse them, but
        // remember to clear them at the end of analyze().
        self.analyze_clear.extend(newly_seen);
        true
    }

    fn learn(&mut self, learnt: Vec<Lit>, lbd: u32) {
        debug_assert!(!learnt.is_empty());
        self.proof_add(&learnt.clone());
        let asserting = learnt[0];
        if learnt.len() == 1 {
            self.enqueue(asserting, NO_REASON);
        } else {
            self.stats.learnt_clauses += 1;
            let cref = self.db.alloc(&learnt, true, lbd);
            self.bump_clause(cref);
            self.attach(cref);
            self.enqueue(asserting, cref);
        }
    }

    pub(crate) fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let keep = self.trail_lim[level as usize];
        for i in (keep..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.phase[v.index()] = l.is_positive();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = NO_REASON;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.db.learnt(cref) {
            return;
        }
        let bumped = self.db.activity(cref) + self.clause_inc as f32;
        self.db.set_activity(cref, bumped);
        if bumped > 1e20 {
            self.clause_inc *= 1e-20;
            for lc in std::mem::take(&mut self.db.learnts) {
                if self.db.learnt(lc) && !self.db.is_removed(lc) {
                    let a = self.db.activity(lc);
                    self.db.set_activity(lc, a * 1e-20);
                }
                self.db.learnts.push(lc);
            }
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.clause_inc /= self.config.clause_decay;
    }

    /// Whether `cref` is the reason for its first literal's assignment.
    pub(crate) fn locked(&self, cref: ClauseRef) -> bool {
        if self.db.size(cref) == 0 {
            return false;
        }
        let v = self.db.lit(cref, 0).var();
        self.reason[v.index()] == cref && self.assigns[v.index()].is_assigned()
    }

    /// Removes the worst half of learnt clauses (by LBD then activity),
    /// keeping binary, glue (LBD <= 2) and locked clauses.
    fn reduce_db(&mut self) {
        self.stats.reductions += 1;
        self.max_learnts += self.config.reduce_increment;
        let mut live: Vec<ClauseRef> = self
            .db
            .learnts
            .iter()
            .copied()
            .filter(|&c| self.db.learnt(c) && !self.db.is_removed(c))
            .collect();
        live.sort_by(|&a, &b| {
            self.db.lbd(a).cmp(&self.db.lbd(b)).then(
                self.db
                    .activity(b)
                    .partial_cmp(&self.db.activity(a))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let keep_from = live.len() / 2;
        let mut kept: Vec<ClauseRef> = live[..keep_from].to_vec();
        for &cref in &live[keep_from..] {
            if self.db.size(cref) <= 2 || self.db.lbd(cref) <= 2 || self.locked(cref) {
                kept.push(cref);
                continue;
            }
            let lits = self.db.lits_vec(cref);
            self.proof_delete(&lits);
            self.detach(cref);
            self.db.remove(cref);
        }
        self.db.learnts = kept;
        self.maybe_gc();
    }

    /// Runs a compacting arena collection when enough of it is tombstoned.
    pub(crate) fn maybe_gc(&mut self) {
        if self.db.wants_gc() {
            self.garbage_collect();
        }
    }

    /// Compacts the clause arena: relocates every live clause into a fresh
    /// arena and rewrites all [`ClauseRef`] holders — watch lists, reason
    /// slots of assigned variables, and the learnt-clause list.
    fn garbage_collect(&mut self) {
        static GC_RUNS: sufsat_obs::Counter = sufsat_obs::Counter::new("sat.gc.runs");
        static GC_BYTES: sufsat_obs::Counter =
            sufsat_obs::Counter::new("sat.gc.bytes_reclaimed");
        let before_words = self.db.arena_words();
        let wasted_words = self.db.wasted_words();
        let mut to = ClauseDb::new();
        for wl in &mut self.watches {
            for w in wl.iter_mut() {
                w.cref = self.db.reloc(w.cref, &mut to);
            }
        }
        for vi in 0..self.reason.len() {
            let r = self.reason[vi];
            if r != NO_REASON {
                // Reason slots are reset on backtrack, so a non-sentinel
                // entry always points at a live (locked) clause.
                self.reason[vi] = self.db.reloc(r, &mut to);
            }
        }
        let old_learnts = std::mem::take(&mut self.db.learnts);
        let learnts: Vec<ClauseRef> = old_learnts
            .into_iter()
            .filter_map(|c| {
                (!self.db.is_removed(c)).then(|| self.db.reloc(c, &mut to))
            })
            .collect();
        let reclaimed_bytes = (before_words - to.arena_words()) * 4;
        sufsat_obs::event!(
            "sat.gc",
            arena_words = before_words,
            wasted_words = wasted_words,
            reclaimed_bytes = reclaimed_bytes,
        );
        self.db.finish_gc(to, learnts);
        self.stats.gc_runs += 1;
        GC_RUNS.incr();
        GC_BYTES.add(reclaimed_bytes as u64);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop, clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    fn nvars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn empty_problem_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn single_unit_clause() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause([v.positive()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v), Some(true));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause([v.positive()]));
        assert!(!s.add_clause([v.negative()]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause([v.positive(), v.negative()]));
        assert_eq!(s.stats().original_clauses, 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause([v.positive(), v.positive()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v), Some(true));
    }

    #[test]
    fn implication_chain_propagates() {
        // x0 and (x_i -> x_{i+1}) forces all true.
        let mut s = Solver::new();
        let vs = nvars(&mut s, 30);
        s.add_clause([vs[0].positive()]);
        for w in vs.windows(2) {
            s.add_clause([w[0].negative(), w[1].positive()]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in vs {
            assert_eq!(s.model_value(v), Some(true));
        }
    }

    #[test]
    fn xor_chain_unsat() {
        // Odd-length XOR cycle with odd parity is unsat.
        let mut s = Solver::new();
        let vs = nvars(&mut s, 3);
        // x0 xor x1, x1 xor x2, x2 xor x0: requires 3 pairwise-different
        // booleans in a cycle of odd length -> unsat.
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            s.add_clause([vs[a].positive(), vs[b].positive()]);
            s.add_clause([vs[a].negative(), vs[b].negative()]);
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// Pigeonhole principle PHP(n+1, n): unsat, exercises learning.
    fn pigeonhole(holes: usize) -> Solver {
        let pigeons = holes + 1;
        let mut s = Solver::new();
        let var = |s: &mut Solver, grid: &mut Vec<Vec<Var>>| {
            for _ in 0..pigeons {
                grid.push((0..holes).map(|_| s.new_var()).collect());
            }
        };
        let mut grid: Vec<Vec<Var>> = Vec::new();
        var(&mut s, &mut grid);
        // Each pigeon in some hole.
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| grid[p][h].positive()));
        }
        // No two pigeons share a hole.
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause([grid[p1][h].negative(), grid[p2][h].negative()]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_is_unsat() {
        for holes in 2..=5 {
            let mut s = pigeonhole(holes);
            assert_eq!(s.solve(), SolveResult::Unsat, "php({holes}) must be unsat");
            assert!(s.stats().conflicts > 0);
        }
    }

    #[test]
    fn pigeonhole_proof_validates() {
        // PHP(4,3) with aggressive DB reduction: the proof includes both
        // learnt additions and deletions, and must still check.
        let mut config = Config::default();
        config.first_reduce = 8;
        config.reduce_increment = 8;
        let mut s = Solver::with_config(config);
        s.enable_proof();
        let holes = 3;
        let pigeons = holes + 1;
        let grid: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        let mut original: Vec<Vec<Lit>> = Vec::new();
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| grid[p][h].positive()).collect();
            original.push(clause.clone());
            s.add_clause(clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    let clause = vec![grid[p1][h].negative(), grid[p2][h].negative()];
                    original.push(clause.clone());
                    s.add_clause(clause);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.proof().expect("enabled");
        assert!(proof.is_refutation());
        assert!(crate::proof::check_refutation(&original, proof));
        // And the textual form is non-trivial.
        let mut text = Vec::new();
        proof.write_drat(&mut text).unwrap();
        assert!(text.ends_with(b"0\n"));
    }

    #[test]
    fn check_proof_certifies_unsat_from_recorded_inputs() {
        // Same property as `pigeonhole_proof_validates`, but through the
        // public solve-path capture: no caller-side clause tracking.
        let mut s = Solver::new();
        s.enable_proof();
        let holes = 3;
        let pigeons = holes + 1;
        let grid: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| grid[p][h].positive()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause([grid[p1][h].negative(), grid[p2][h].negative()]);
                }
            }
        }
        assert_eq!(s.input_clauses().len(), pigeons + holes * pigeons * (pigeons - 1) / 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.check_proof(), Some(true));
    }

    #[test]
    fn check_proof_without_logging_is_none() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([v.positive()]);
        s.add_clause([v.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.check_proof(), None);
        assert!(s.input_clauses().is_empty());
    }

    #[test]
    fn conflict_budget_interrupts() {
        let mut s = pigeonhole(8);
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(), SolveResult::Unknown(Interrupt::ConflictBudget));
        // Removing the budget finds the answer.
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// Pigeonhole clauses guarded by a fresh literal `g`: assuming `g`
    /// makes the instance hard-UNSAT, assuming `!g` makes it trivial.
    fn guarded_pigeonhole(holes: usize) -> (Solver, Var) {
        let pigeons = holes + 1;
        let mut s = Solver::new();
        let g = s.new_var();
        let grid: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in 0..pigeons {
            let mut clause = vec![g.negative()];
            clause.extend((0..holes).map(|h| grid[p][h].positive()));
            s.add_clause(clause);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause([
                        g.negative(),
                        grid[p1][h].negative(),
                        grid[p2][h].negative(),
                    ]);
                }
            }
        }
        (s, g)
    }

    #[test]
    fn pre_cancelled_token_interrupts_immediately() {
        let mut s = pigeonhole(8);
        let token = CancelToken::new();
        token.cancel();
        s.set_cancel_token(Some(token.clone()));
        assert_eq!(s.solve(), SolveResult::Unknown(Interrupt::Cancelled));
        // Resetting the token restores the solver's full behaviour.
        token.reset();
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(), SolveResult::Unknown(Interrupt::ConflictBudget));
    }

    #[test]
    fn cancellation_mid_search_is_prompt_and_solver_stays_usable() {
        let (mut s, g) = guarded_pigeonhole(9);
        let token = CancelToken::new();
        s.set_cancel_token(Some(token.clone()));
        // Backstop so a broken cancellation path cannot hang the suite.
        s.set_timeout(Some(Duration::from_secs(60)));
        let handle = std::thread::spawn(move || {
            let result = s.solve_with_assumptions(&[g.positive()]);
            (result, s)
        });
        // Let the search sink into the hard instance, then pull the plug.
        std::thread::sleep(Duration::from_millis(100));
        let cancelled_at = Instant::now();
        token.cancel();
        let (result, mut s) = handle.join().expect("solver thread");
        let reaction = cancelled_at.elapsed();
        assert_eq!(result, SolveResult::Unknown(Interrupt::Cancelled));
        assert!(
            reaction < Duration::from_millis(50),
            "cancellation took {reaction:?}"
        );
        // The same solver answers a fresh query correctly afterwards.
        token.reset();
        assert_eq!(s.solve_with_assumptions(&[g.negative()]), SolveResult::Sat);
        assert_eq!(s.model_value(g), Some(false));
    }

    #[test]
    fn incremental_add_after_sat() {
        let mut s = Solver::new();
        let vs = nvars(&mut s, 4);
        s.add_clause([vs[0].positive(), vs[1].positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([vs[0].negative()]);
        s.add_clause([vs[1].negative(), vs[2].positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(vs[0]), Some(false));
        assert_eq!(s.model_value(vs[1]), Some(true));
        assert_eq!(s.model_value(vs[2]), Some(true));
        // Force unsat incrementally.
        s.add_clause([vs[1].negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Solver stays unsat.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn simplify_removes_satisfied_and_strengthens() {
        let mut s = Solver::new();
        s.enable_proof();
        let vs = nvars(&mut s, 4);
        // Clauses first, then the unit: add_clause only pre-simplifies
        // against units already present, so these stay stored verbatim.
        s.add_clause([vs[0].positive(), vs[1].positive()]); // will be satisfied
        s.add_clause([vs[0].negative(), vs[2].positive(), vs[3].positive()]); // will strengthen
        s.add_clause([vs[0].positive()]); // unit: x0
        let before = s.num_clauses();
        assert_eq!(before, 2);
        assert!(s.simplify());
        assert!(s.num_clauses() < before, "satisfied clause dropped");
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(vs[0]), Some(true));
        // The strengthened clause still constrains: force x2 false.
        s.add_clause([vs[2].negative()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(vs[3]), Some(true));
    }

    #[test]
    fn simplify_detects_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        let w = s.new_var();
        s.add_clause([v.positive()]);
        s.add_clause([w.positive()]);
        s.add_clause([v.negative(), w.negative()]);
        assert!(!s.simplify());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn simplify_preserves_satisfiability() {
        // Randomized-ish check: simplify then solve equals solve.
        for seed in 0..20u64 {
            let mut h = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            let mut next = || {
                h ^= h << 13;
                h ^= h >> 7;
                h ^= h << 17;
                h
            };
            let build = |simplify: bool| -> SolveResult {
                let mut s = Solver::new();
                let vs: Vec<Var> = (0..5).map(|_| s.new_var()).collect();
                let mut hh = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
                let mut nn = || {
                    hh ^= hh << 13;
                    hh ^= hh >> 7;
                    hh ^= hh << 17;
                    hh
                };
                for _ in 0..12 {
                    let len = 1 + (nn() % 3) as usize;
                    let lits: Vec<Lit> = (0..len)
                        .map(|_| Lit::new(vs[(nn() % 5) as usize], nn() & 1 == 1))
                        .collect();
                    s.add_clause(lits);
                }
                if simplify {
                    let _ = s.simplify();
                }
                s.solve()
            };
            let _ = next();
            let plain = build(false);
            let simplified = build(true);
            assert_eq!(
                plain == SolveResult::Sat,
                simplified == SolveResult::Sat,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn assumptions_restrict_and_release() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive(), b.positive()]);
        // Under (!a, !b) the clause is unsatisfiable...
        assert_eq!(
            s.solve_with_assumptions(&[a.negative(), b.negative()]),
            SolveResult::Unsat
        );
        let failed = s.failed_assumptions().to_vec();
        assert!(!failed.is_empty());
        assert!(failed.iter().all(|l| *l == a.negative() || *l == b.negative()));
        // ...but the solver is still usable without them.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with_assumptions(&[a.negative()]), SolveResult::Sat);
        assert_eq!(s.model_value(b), Some(true));
    }

    #[test]
    fn failed_assumptions_are_a_relevant_subset() {
        let mut s = Solver::new();
        let vs = nvars(&mut s, 4);
        // x0 -> x1, x1 -> x2.
        s.add_clause([vs[0].negative(), vs[1].positive()]);
        s.add_clause([vs[1].negative(), vs[2].positive()]);
        // Assume x0, !x2 and an irrelevant x3.
        let assumptions = [vs[3].positive(), vs[0].positive(), vs[2].negative()];
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        let failed = s.failed_assumptions().to_vec();
        assert!(
            !failed.contains(&vs[3].positive()),
            "irrelevant assumption must not appear: {failed:?}"
        );
        assert!(failed.contains(&vs[0].positive()) || failed.contains(&vs[2].negative()));
    }

    #[test]
    fn hard_unsat_reports_empty_failed_set() {
        let mut s = Solver::new();
        let v = s.new_var();
        let w = s.new_var();
        s.add_clause([v.positive()]);
        s.add_clause([v.negative()]);
        assert_eq!(
            s.solve_with_assumptions(&[w.positive()]),
            SolveResult::Unsat
        );
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn already_true_assumptions_are_harmless() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([a.positive()]);
        s.add_clause([a.negative(), b.positive()]);
        // `a` is implied at level 0; assuming it again must not break.
        assert_eq!(
            s.solve_with_assumptions(&[a.positive(), b.positive()]),
            SolveResult::Sat
        );
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // A formula with a unique model: x0=1, x1=0, x2=1.
        let mut s = Solver::new();
        let vs = nvars(&mut s, 3);
        let cls: Vec<Vec<Lit>> = vec![
            vec![vs[0].positive()],
            vec![vs[0].negative(), vs[1].negative()],
            vec![vs[1].positive(), vs[2].positive()],
            vec![vs[2].positive()],
        ];
        for c in &cls {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for c in &cls {
            assert!(c.iter().any(|&l| s.model_lit_value(l) == Some(true)));
        }
    }

    #[test]
    fn no_restart_no_reduce_configs_still_work() {
        let mut config = Config::default();
        config.restarts = false;
        config.reduce_db = false;
        config.phase_saving = false;
        let mut s = Solver::with_config(config);
        // Reuse pigeonhole structure at small size.
        let holes = 4;
        let pigeons = holes + 1;
        let grid: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| grid[p][h].positive()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause([grid[p1][h].negative(), grid[p2][h].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn db_reduction_triggers_on_long_runs() {
        let mut config = Config::default();
        config.first_reduce = 10;
        config.reduce_increment = 10;
        let mut s = Solver::with_config(config);
        let holes = 7;
        let pigeons = holes + 1;
        let grid: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| grid[p][h].positive()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause([grid[p1][h].negative(), grid[p2][h].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().reductions > 0, "reduction should have triggered");
    }

    #[test]
    fn reduce_db_gc_keeps_search_consistent() {
        // Aggressive reduction tombstones enough learnt clauses that the
        // arena compacts mid-run; watchers/reasons/learnts must survive.
        let mut config = Config::default();
        config.first_reduce = 10;
        config.reduce_increment = 10;
        let mut s = Solver::with_config(config);
        let holes = 7;
        let pigeons = holes + 1;
        let grid: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| grid[p][h].positive()));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause([grid[p1][h].negative(), grid[p2][h].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().gc_runs > 0, "arena GC should have triggered");
    }

    #[test]
    fn simplify_gc_rewrites_watchers_and_solving_continues() {
        let mut s = Solver::new();
        let vs = nvars(&mut s, 20);
        let sat_lit = vs[0].positive();
        // Fat clauses that all become satisfied (tombstoned) at once.
        for i in 1..19 {
            s.add_clause([sat_lit, vs[i].positive(), vs[i + 1].negative()]);
        }
        // A live implication chain v1 -> v2 -> ... -> v5.
        for w in vs[1..6].windows(2) {
            s.add_clause([w[0].negative(), w[1].positive()]);
        }
        s.add_clause([sat_lit]);
        assert!(s.simplify());
        assert!(s.stats().gc_runs >= 1, "simplify should have compacted");
        // Watchers were rewritten to the compacted arena: propagation over
        // the chain and failed-assumption extraction still work.
        let r = s.solve_with_assumptions(&[vs[1].positive(), vs[5].negative()]);
        assert_eq!(r, SolveResult::Unsat);
        assert!(
            !s.failed_assumptions().is_empty(),
            "failed-assumption extraction over the compacted arena"
        );
        assert_eq!(s.solve_with_assumptions(&[vs[1].positive()]), SolveResult::Sat);
        assert_eq!(s.model_value(vs[5]), Some(true));
    }
}
