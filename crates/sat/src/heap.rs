//! Indexed binary max-heap ordering variables by VSIDS activity.

use crate::lit::Var;

/// A binary max-heap over variables keyed by an external activity table.
///
/// Supports `O(log n)` insertion and removal plus `decrease`/`increase`
/// notifications when a variable's activity changes, which is what the VSIDS
/// decision heuristic needs.
#[derive(Debug, Default, Clone)]
pub(crate) struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `NONE` if absent.
    position: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl VarHeap {
    pub(crate) fn new() -> VarHeap {
        VarHeap::default()
    }

    /// Registers storage for one more variable (does not insert it).
    pub(crate) fn grow_to(&mut self, n_vars: usize) {
        self.position.resize(n_vars, NONE);
    }

    pub(crate) fn contains(&self, v: Var) -> bool {
        self.position[v.index()] != NONE
    }

    /// Inserts `v`; no-op if already present.
    pub(crate) fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.position[v.index()] = self.heap.len() as u32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with maximum activity.
    pub(crate) fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.position[top.index()] = NONE;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order after `v`'s activity increased.
    pub(crate) fn update(&mut self, v: Var, activity: &[f64]) {
        let pos = self.position[v.index()];
        if pos != NONE {
            self.sift_up(pos as usize, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let left = 2 * i + 1;
            let right = 2 * i + 2;
            let mut best = i;
            if left < self.heap.len()
                && activity[self.heap[left].index()] > activity[self.heap[best].index()]
            {
                best = left;
            }
            if right < self.heap.len()
                && activity[self.heap[right].index()] > activity[self.heap[best].index()]
            {
                best = right;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.position[self.heap[i].index()] = i as u32;
        self.position[self.heap[j].index()] = j as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var::from_index(i)
    }

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut heap = VarHeap::new();
        heap.grow_to(5);
        for i in 0..5 {
            heap.insert(v(i), &activity);
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop(&activity))
            .map(Var::index)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn double_insert_is_noop() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarHeap::new();
        heap.grow_to(2);
        heap.insert(v(0), &activity);
        heap.insert(v(0), &activity);
        heap.insert(v(1), &activity);
        assert_eq!(heap.pop(&activity), Some(v(1)));
        assert_eq!(heap.pop(&activity), Some(v(0)));
        assert_eq!(heap.pop(&activity), None);
    }

    #[test]
    fn update_reorders_after_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        heap.grow_to(3);
        for i in 0..3 {
            heap.insert(v(i), &activity);
        }
        activity[0] = 10.0;
        heap.update(v(0), &activity);
        assert_eq!(heap.pop(&activity), Some(v(0)));
    }
}
