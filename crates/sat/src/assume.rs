//! Unsat-core minimization over assumption literals.
//!
//! [`Solver::failed_assumptions`] returns a core that is *sufficient* for
//! the conflict but often far from minimal — conflict analysis pulls in
//! every assumption on the trail below the conflict. Incremental sessions
//! surface the core to users (which pushed frames contradict?), so a
//! cheap destructive-minimization pass pays for itself: iteratively
//! re-solve with one candidate dropped; if the rest is still unsat, the
//! candidate was redundant (and the new failed set may shrink the core
//! further), otherwise it is kept.
//!
//! The pass is budget-capped by solve count; on budget exhaustion (or an
//! interrupted solve) the current — still sufficient — core is returned.

use crate::lit::Lit;
use crate::solver::{SolveResult, Solver};

/// Measurements of one [`minimize_assumptions`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct MinimizeStats {
    /// Re-solves performed.
    pub solves: u64,
    /// Assumptions dropped from the initial core.
    pub removed: usize,
    /// Whether the solve budget ran out before the pass converged.
    pub budget_exhausted: bool,
}

/// Shrinks an unsat core of assumption literals by iterative deletion.
///
/// `core` must be a set of assumptions under which `solver` is unsat
/// (typically the result of [`Solver::failed_assumptions`] after an
/// unsat [`Solver::solve_with_assumptions`] call). At most `max_solves`
/// re-solves are spent. The returned core is a subset of `core` under
/// which the solver is still unsat; it is subset-minimal when the pass
/// converged within budget and no solve was interrupted.
pub fn minimize_assumptions(
    solver: &mut Solver,
    core: &[Lit],
    max_solves: u64,
) -> (Vec<Lit>, MinimizeStats) {
    let mut working: Vec<Lit> = Vec::with_capacity(core.len());
    for &l in core {
        if !working.contains(&l) {
            working.push(l);
        }
    }
    let initial = working.len();
    let mut stats = MinimizeStats::default();
    let mut i = 0;
    while i < working.len() {
        if stats.solves >= max_solves {
            stats.budget_exhausted = true;
            break;
        }
        let candidate: Vec<Lit> = working
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &l)| l)
            .collect();
        stats.solves += 1;
        match solver.solve_with_assumptions(&candidate) {
            SolveResult::Unsat => {
                // Redundant: keep only what the new conflict needed,
                // preserving order. (An outright-unsat formula yields an
                // empty failed set, collapsing the core to nothing.)
                let failed = solver.failed_assumptions().to_vec();
                working.retain(|l| failed.contains(l));
            }
            SolveResult::Sat | SolveResult::Unknown(_) => {
                // Necessary (or undecided within budget): keep it.
                i += 1;
            }
        }
    }
    stats.removed = initial - working.len();
    (working, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Crafted instance where the eager failed-assumption core is strictly
    /// larger than the minimal one: assuming `a1` propagates `x`, so the
    /// conflict on `a2`'s clauses pulls `a1` into the analyzed core even
    /// though `a2`'s two clauses alone are contradictory.
    #[test]
    fn minimization_strictly_shrinks_a_crafted_core() {
        let mut solver = Solver::new();
        let a1 = solver.new_var().positive();
        let a2 = solver.new_var().positive();
        let x = solver.new_var();
        solver.add_clause([!a1, x.positive()]);
        solver.add_clause([!a2, x.negative()]);
        solver.add_clause([!a2, x.positive()]);

        assert_eq!(solver.solve_with_assumptions(&[a1, a2]), SolveResult::Unsat);
        let eager = solver.failed_assumptions().to_vec();
        assert!(eager.contains(&a2));

        let (minimal, stats) = minimize_assumptions(&mut solver, &[a1, a2], 16);
        assert_eq!(minimal, vec![a2], "only a2's clauses are contradictory");
        assert!(minimal.len() < 2, "strictly smaller than the assumed set");
        assert_eq!(stats.removed, 1);
        assert!(!stats.budget_exhausted);
        // The minimized core still refutes.
        assert_eq!(solver.solve_with_assumptions(&minimal), SolveResult::Unsat);
    }

    #[test]
    fn necessary_assumptions_are_all_kept() {
        // x and !x only under both assumptions: the core {a1, a2} is
        // already minimal.
        let mut solver = Solver::new();
        let a1 = solver.new_var().positive();
        let a2 = solver.new_var().positive();
        let x = solver.new_var();
        solver.add_clause([!a1, x.positive()]);
        solver.add_clause([!a2, x.negative()]);
        assert_eq!(solver.solve_with_assumptions(&[a1, a2]), SolveResult::Unsat);
        let (minimal, stats) = minimize_assumptions(&mut solver, &[a1, a2], 16);
        assert_eq!(minimal.len(), 2);
        assert_eq!(stats.removed, 0);
    }

    #[test]
    fn outright_unsat_collapses_to_empty_core() {
        let mut solver = Solver::new();
        let a = solver.new_var().positive();
        let x = solver.new_var();
        solver.add_clause([x.positive()]);
        solver.add_clause([x.negative()]);
        assert_eq!(solver.solve_with_assumptions(&[a]), SolveResult::Unsat);
        let (minimal, _) = minimize_assumptions(&mut solver, &[a], 16);
        assert!(minimal.is_empty());
    }

    #[test]
    fn zero_budget_returns_input_core() {
        let mut solver = Solver::new();
        let a1 = solver.new_var().positive();
        let a2 = solver.new_var().positive();
        let x = solver.new_var();
        solver.add_clause([!a1, x.positive()]);
        solver.add_clause([!a2, x.negative()]);
        solver.add_clause([!a2, x.positive()]);
        assert_eq!(solver.solve_with_assumptions(&[a1, a2]), SolveResult::Unsat);
        let (core, stats) = minimize_assumptions(&mut solver, &[a1, a2], 0);
        assert_eq!(core, vec![a1, a2]);
        assert!(stats.budget_exhausted);
    }

    /// Activation-literal hygiene: retiring an activation literal with a
    /// level-0 unit and simplifying removes its guarded clauses without
    /// disturbing unrelated state, and fresh activation literals keep
    /// working afterwards — the retraction pattern incremental sessions
    /// rely on.
    #[test]
    fn retired_activation_literals_survive_simplify() {
        let mut solver = Solver::new();
        let act1 = solver.new_var().positive();
        let act2 = solver.new_var().positive();
        let x = solver.new_var();
        let y = solver.new_var();
        // act1 guards x; act2 guards !x and y.
        solver.add_clause([!act1, x.positive()]);
        solver.add_clause([!act2, x.negative()]);
        solver.add_clause([!act2, y.positive()]);

        assert_eq!(
            solver.solve_with_assumptions(&[act1, act2]),
            SolveResult::Unsat
        );
        // Retire act2 (pop): its guarded clauses become level-0 satisfied.
        assert!(solver.add_clause([!act2]));
        assert!(solver.simplify());
        // act1 alone is consistent again, and act2's content is gone.
        assert_eq!(solver.solve_with_assumptions(&[act1]), SolveResult::Sat);
        assert_eq!(solver.model_value(x), Some(true));
        // A fresh activation literal re-introduces the retracted content.
        let act3 = solver.new_var().positive();
        solver.add_clause([!act3, x.negative()]);
        assert_eq!(
            solver.solve_with_assumptions(&[act1, act3]),
            SolveResult::Unsat
        );
        assert_eq!(solver.solve_with_assumptions(&[act3]), SolveResult::Sat);
        assert_eq!(solver.model_value(x), Some(false));
        let _ = y;
    }
}
