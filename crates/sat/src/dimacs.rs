//! DIMACS CNF parsing and emission.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::lit::{Lit, Var};

/// A CNF formula in memory: a variable count plus clauses of literals.
///
/// # Examples
///
/// ```
/// use sufsat_sat::dimacs::Cnf;
///
/// let cnf = Cnf::parse("p cnf 2 2\n1 -2 0\n2 0\n".as_bytes())?;
/// assert_eq!(cnf.num_vars, 2);
/// assert_eq!(cnf.clauses.len(), 2);
/// # Ok::<(), sufsat_sat::dimacs::ParseDimacsError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables declared in the problem line.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

/// Error produced when DIMACS input is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl ParseDimacsError {
    fn new(line: usize, message: impl Into<String>) -> ParseDimacsError {
        ParseDimacsError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

impl Cnf {
    /// Creates an empty CNF.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Parses DIMACS CNF text from a reader.
    ///
    /// Accepts comment lines (`c ...`), requires a `p cnf <vars> <clauses>`
    /// problem line before any clause, and clauses terminated by `0`.
    /// The declared clause count is checked against the actual count.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDimacsError`] on malformed input (missing or duplicate
    /// problem line, bad integers, out-of-range variables, unterminated
    /// clauses, or count mismatches).
    pub fn parse<R: BufRead>(reader: R) -> Result<Cnf, ParseDimacsError> {
        let mut num_vars: Option<usize> = None;
        let mut declared_clauses = 0usize;
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        let mut current: Vec<Lit> = Vec::new();
        for (lineno, line) in reader.lines().enumerate() {
            let lineno = lineno + 1;
            let line = line.map_err(|e| ParseDimacsError::new(lineno, format!("io error: {e}")))?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                if num_vars.is_some() {
                    return Err(ParseDimacsError::new(lineno, "duplicate problem line"));
                }
                let mut parts = rest.split_whitespace();
                if parts.next() != Some("cnf") {
                    return Err(ParseDimacsError::new(lineno, "expected `p cnf`"));
                }
                let nv = parts
                    .next()
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| ParseDimacsError::new(lineno, "bad variable count"))?;
                let nc = parts
                    .next()
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| ParseDimacsError::new(lineno, "bad clause count"))?;
                if parts.next().is_some() {
                    return Err(ParseDimacsError::new(
                        lineno,
                        "trailing tokens on problem line",
                    ));
                }
                num_vars = Some(nv);
                declared_clauses = nc;
                continue;
            }
            let nv = num_vars
                .ok_or_else(|| ParseDimacsError::new(lineno, "clause before problem line"))?;
            for tok in line.split_whitespace() {
                let x: i64 = tok
                    .parse()
                    .map_err(|_| ParseDimacsError::new(lineno, format!("bad literal `{tok}`")))?;
                if x == 0 {
                    clauses.push(std::mem::take(&mut current));
                } else {
                    let v = x.unsigned_abs() as usize;
                    if v > nv {
                        return Err(ParseDimacsError::new(
                            lineno,
                            format!("variable {v} exceeds declared count {nv}"),
                        ));
                    }
                    current.push(Lit::new(Var::from_index(v - 1), x > 0));
                }
            }
        }
        if !current.is_empty() {
            return Err(ParseDimacsError::new(0, "unterminated final clause"));
        }
        let num_vars = num_vars.ok_or_else(|| ParseDimacsError::new(0, "missing problem line"))?;
        if clauses.len() != declared_clauses {
            return Err(ParseDimacsError::new(
                0,
                format!(
                    "declared {declared_clauses} clauses but found {}",
                    clauses.len()
                ),
            ));
        }
        Ok(Cnf { num_vars, clauses })
    }

    /// Writes this CNF in DIMACS format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "p cnf {} {}", self.num_vars, self.clauses.len())?;
        for clause in &self.clauses {
            for &l in clause {
                let v = l.var().index() as i64 + 1;
                let x = if l.is_positive() { v } else { -v };
                write!(writer, "{x} ")?;
            }
            writeln!(writer, "0")?;
        }
        Ok(())
    }

    /// Loads this CNF into a fresh [`Solver`](crate::Solver).
    pub fn to_solver(&self) -> crate::Solver {
        let mut solver = crate::Solver::new();
        solver.reserve_vars(self.num_vars);
        for clause in &self.clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Cnf, ParseDimacsError> {
        Cnf::parse(s.as_bytes())
    }

    #[test]
    fn parses_simple_cnf() {
        let cnf = parse("c a comment\np cnf 3 2\n1 -2 0\n3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0].len(), 2);
        assert!(cnf.clauses[0][0].is_positive());
        assert!(!cnf.clauses[0][1].is_positive());
    }

    #[test]
    fn clause_may_span_lines() {
        let cnf = parse("p cnf 3 1\n1 2\n3 0\n").unwrap();
        assert_eq!(cnf.clauses[0].len(), 3);
    }

    #[test]
    fn rejects_missing_problem_line() {
        assert!(parse("1 2 0\n").is_err());
    }

    #[test]
    fn rejects_unterminated_clause() {
        assert!(parse("p cnf 2 1\n1 2\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_variable() {
        assert!(parse("p cnf 1 1\n2 0\n").is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        assert!(parse("p cnf 2 2\n1 0\n").is_err());
    }

    #[test]
    fn rejects_duplicate_problem_line() {
        assert!(parse("p cnf 1 0\np cnf 1 0\n").is_err());
    }

    #[test]
    fn round_trips() {
        let cnf = parse("p cnf 4 3\n1 -2 0\n-3 4 0\n2 0\n").unwrap();
        let mut out = Vec::new();
        cnf.write(&mut out).unwrap();
        let again = Cnf::parse(out.as_slice()).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn to_solver_solves() {
        let cnf = parse("p cnf 2 2\n1 0\n-1 2 0\n").unwrap();
        let mut s = cnf.to_solver();
        assert_eq!(s.solve(), crate::SolveResult::Sat);
        assert_eq!(s.model_value(crate::Var::from_index(0)), Some(true));
        assert_eq!(s.model_value(crate::Var::from_index(1)), Some(true));
    }
}
