//! DIMACS CNF parsing and emission.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::lit::{Lit, Var};

/// A CNF formula in memory: a variable count plus clauses of literals.
///
/// # Examples
///
/// ```
/// use sufsat_sat::dimacs::Cnf;
///
/// let cnf = Cnf::parse("p cnf 2 2\n1 -2 0\n2 0\n".as_bytes())?;
/// assert_eq!(cnf.num_vars, 2);
/// assert_eq!(cnf.clauses.len(), 2);
/// # Ok::<(), sufsat_sat::dimacs::ParseDimacsError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables declared in the problem line.
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

/// Error produced when DIMACS input is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl ParseDimacsError {
    fn new(line: usize, message: impl Into<String>) -> ParseDimacsError {
        ParseDimacsError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

impl Cnf {
    /// Creates an empty CNF.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Parses DIMACS CNF text from a reader.
    ///
    /// Accepts comment lines (`c ...`), requires a `p cnf <vars> <clauses>`
    /// problem line before any clause, and clauses terminated by `0`.
    /// The declared clause count is checked against the actual count.
    ///
    /// The input is consumed in one read and scanned byte-by-byte: no
    /// per-line `String`, per-token slice, or UTF-8 validation is performed
    /// on the hot path (literal digits are plain ASCII arithmetic).
    ///
    /// # Errors
    ///
    /// Returns [`ParseDimacsError`] on malformed input (missing or duplicate
    /// problem line, bad integers, out-of-range variables, unterminated
    /// clauses, or count mismatches).
    pub fn parse<R: BufRead>(mut reader: R) -> Result<Cnf, ParseDimacsError> {
        /// Reads an unsigned integer on the current line, skipping leading
        /// spaces/tabs. `None` if the next token is not a whole number.
        fn read_uint_same_line(b: &[u8], at: &mut usize) -> Option<u64> {
            let len = b.len();
            while *at < len && matches!(b[*at], b' ' | b'\t' | b'\r') {
                *at += 1;
            }
            let start = *at;
            let mut val = 0u64;
            while *at < len && b[*at].is_ascii_digit() {
                val = val.checked_mul(10)?.checked_add(u64::from(b[*at] - b'0'))?;
                *at += 1;
            }
            if *at == start || (*at < len && !b[*at].is_ascii_whitespace()) {
                return None;
            }
            Some(val)
        }

        let mut buf = Vec::new();
        reader
            .read_to_end(&mut buf)
            .map_err(|e| ParseDimacsError::new(0, format!("io error: {e}")))?;
        let b = buf.as_slice();
        let len = b.len();
        let mut at = 0usize;
        let mut line = 1usize;
        // Comment and problem lines are only recognized as the first token
        // of a line, exactly like the old per-line parser.
        let mut line_has_token = false;

        let mut num_vars: Option<usize> = None;
        let mut declared_clauses = 0usize;
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        let mut current: Vec<Lit> = Vec::new();

        loop {
            // Skip whitespace and line-initial comment lines.
            loop {
                while at < len {
                    match b[at] {
                        b' ' | b'\t' | b'\r' => at += 1,
                        b'\n' => {
                            at += 1;
                            line += 1;
                            line_has_token = false;
                        }
                        _ => break,
                    }
                }
                if at < len && !line_has_token && (b[at] == b'c' || b[at] == b'%') {
                    while at < len && b[at] != b'\n' {
                        at += 1;
                    }
                    continue;
                }
                break;
            }
            if at >= len {
                break;
            }

            if !line_has_token && b[at] == b'p' {
                if num_vars.is_some() {
                    return Err(ParseDimacsError::new(line, "duplicate problem line"));
                }
                line_has_token = true;
                at += 1;
                while at < len && matches!(b[at], b' ' | b'\t' | b'\r') {
                    at += 1;
                }
                let cnf_tag = b.get(at..at + 3) == Some(b"cnf")
                    && (at + 3 == len || b[at + 3].is_ascii_whitespace());
                if !cnf_tag {
                    return Err(ParseDimacsError::new(line, "expected `p cnf`"));
                }
                at += 3;
                let nv = read_uint_same_line(b, &mut at)
                    .ok_or_else(|| ParseDimacsError::new(line, "bad variable count"))?;
                let nc = read_uint_same_line(b, &mut at)
                    .ok_or_else(|| ParseDimacsError::new(line, "bad clause count"))?;
                while at < len && matches!(b[at], b' ' | b'\t' | b'\r') {
                    at += 1;
                }
                if at < len && b[at] != b'\n' {
                    return Err(ParseDimacsError::new(line, "trailing tokens on problem line"));
                }
                num_vars = Some(nv as usize);
                declared_clauses = nc as usize;
                continue;
            }

            // A literal token.
            line_has_token = true;
            let Some(nv) = num_vars else {
                return Err(ParseDimacsError::new(line, "clause before problem line"));
            };
            let start = at;
            let negative = b[at] == b'-';
            if negative {
                at += 1;
            }
            let digits_start = at;
            let mut magnitude = 0u64;
            let mut overflow = false;
            while at < len && b[at].is_ascii_digit() {
                magnitude = match magnitude
                    .checked_mul(10)
                    .and_then(|m| m.checked_add(u64::from(b[at] - b'0')))
                {
                    Some(m) => m,
                    None => {
                        overflow = true;
                        0
                    }
                };
                at += 1;
            }
            if at == digits_start || overflow || (at < len && !b[at].is_ascii_whitespace()) {
                while at < len && !b[at].is_ascii_whitespace() {
                    at += 1;
                }
                let tok = String::from_utf8_lossy(&b[start..at]);
                return Err(ParseDimacsError::new(line, format!("bad literal `{tok}`")));
            }
            if magnitude == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let v = magnitude as usize;
                if v > nv {
                    return Err(ParseDimacsError::new(
                        line,
                        format!("variable {v} exceeds declared count {nv}"),
                    ));
                }
                current.push(Lit::new(Var::from_index(v - 1), !negative));
            }
        }
        if !current.is_empty() {
            return Err(ParseDimacsError::new(0, "unterminated final clause"));
        }
        let num_vars = num_vars.ok_or_else(|| ParseDimacsError::new(0, "missing problem line"))?;
        if clauses.len() != declared_clauses {
            return Err(ParseDimacsError::new(
                0,
                format!(
                    "declared {declared_clauses} clauses but found {}",
                    clauses.len()
                ),
            ));
        }
        Ok(Cnf { num_vars, clauses })
    }

    /// Writes this CNF in DIMACS format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "p cnf {} {}", self.num_vars, self.clauses.len())?;
        for clause in &self.clauses {
            for &l in clause {
                let v = l.var().index() as i64 + 1;
                let x = if l.is_positive() { v } else { -v };
                write!(writer, "{x} ")?;
            }
            writeln!(writer, "0")?;
        }
        Ok(())
    }

    /// Loads this CNF into a fresh [`Solver`](crate::Solver).
    pub fn to_solver(&self) -> crate::Solver {
        let mut solver = crate::Solver::new();
        solver.reserve_vars(self.num_vars);
        for clause in &self.clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Cnf, ParseDimacsError> {
        Cnf::parse(s.as_bytes())
    }

    #[test]
    fn parses_simple_cnf() {
        let cnf = parse("c a comment\np cnf 3 2\n1 -2 0\n3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0].len(), 2);
        assert!(cnf.clauses[0][0].is_positive());
        assert!(!cnf.clauses[0][1].is_positive());
    }

    #[test]
    fn clause_may_span_lines() {
        let cnf = parse("p cnf 3 1\n1 2\n3 0\n").unwrap();
        assert_eq!(cnf.clauses[0].len(), 3);
    }

    #[test]
    fn rejects_missing_problem_line() {
        assert!(parse("1 2 0\n").is_err());
    }

    #[test]
    fn rejects_unterminated_clause() {
        assert!(parse("p cnf 2 1\n1 2\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_variable() {
        assert!(parse("p cnf 1 1\n2 0\n").is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        assert!(parse("p cnf 2 2\n1 0\n").is_err());
    }

    #[test]
    fn rejects_duplicate_problem_line() {
        assert!(parse("p cnf 1 0\np cnf 1 0\n").is_err());
    }

    #[test]
    fn comments_allowed_between_clause_lines() {
        let cnf = parse("p cnf 3 1\n1 2\nc interrupting comment\n% another\n3 0\n").unwrap();
        assert_eq!(cnf.clauses[0].len(), 3);
    }

    #[test]
    fn rejects_comment_marker_mid_line() {
        // `c` is a comment only as the first token of a line; mid-line it
        // is a bad literal, as in the old per-line parser.
        assert!(parse("p cnf 2 1\n1 c 2 0\n").is_err());
    }

    #[test]
    fn handles_crlf_and_tabs() {
        let cnf = parse("c crlf\r\np cnf 2 2\r\n1\t-2 0\r\n2 0\r\n").unwrap();
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.clauses, vec![
            vec![Lit::new(Var::from_index(0), true), Lit::new(Var::from_index(1), false)],
            vec![Lit::new(Var::from_index(1), true)],
        ]);
    }

    #[test]
    fn rejects_malformed_literals() {
        assert!(parse("p cnf 2 1\n1a 2 0\n").is_err());
        assert!(parse("p cnf 2 1\n- 1 0\n").is_err());
        assert!(parse("p cnf 2 1\n99999999999999999999999 0\n").is_err());
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = parse("c one\np cnf 1 1\n2 0\n").unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn round_trips() {
        let cnf = parse("p cnf 4 3\n1 -2 0\n-3 4 0\n2 0\n").unwrap();
        let mut out = Vec::new();
        cnf.write(&mut out).unwrap();
        let again = Cnf::parse(out.as_slice()).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn to_solver_solves() {
        let cnf = parse("p cnf 2 2\n1 0\n-1 2 0\n").unwrap();
        let mut s = cnf.to_solver();
        assert_eq!(s.solve(), crate::SolveResult::Sat);
        assert_eq!(s.model_value(crate::Var::from_index(0)), Some(true));
        assert_eq!(s.model_value(crate::Var::from_index(1)), Some(true));
    }
}
