//! `sufsat-sat` — a standalone DIMACS CNF solver over the workspace's CDCL
//! engine, usable as a drop-in SAT solver for external tooling.
//!
//! ```text
//! sufsat-sat [--conflicts N] [--timeout SECS] [FILE.cnf]
//! ```
//!
//! Prints `s SATISFIABLE` with a `v …` model line, `s UNSATISFIABLE`, or
//! `s UNKNOWN`, following the SAT-competition output conventions.
//! Exit codes: 10 sat, 20 unsat, 0 unknown, 2 usage/parse error.

use std::io::Read;
use std::time::Duration;

use sufsat_sat::dimacs::Cnf;
use sufsat_sat::{SolveResult, Var};

fn main() {
    let mut conflicts: Option<u64> = None;
    let mut timeout: Option<Duration> = None;
    let mut file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--conflicts" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--conflicts needs a value"));
                conflicts = Some(v.parse().unwrap_or_else(|_| die("bad --conflicts")));
            }
            "--timeout" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| die("--timeout needs a value"));
                let secs: f64 = v.parse().unwrap_or_else(|_| die("bad --timeout"));
                timeout = Some(Duration::from_secs_f64(secs));
            }
            "--help" | "-h" => {
                println!("usage: sufsat-sat [--conflicts N] [--timeout SECS] [FILE.cnf]");
                return;
            }
            other if !other.starts_with('-') => file = Some(other.to_owned()),
            other => die(&format!("unknown option `{other}`")),
        }
    }

    let text = match &file {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| die(&format!("cannot read stdin: {e}")));
            buf
        }
    };
    let cnf = Cnf::parse(text.as_bytes()).unwrap_or_else(|e| die(&e.to_string()));
    let mut solver = cnf.to_solver();
    solver.set_conflict_budget(conflicts);
    solver.set_timeout(timeout);
    match solver.solve() {
        SolveResult::Sat => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for i in 0..cnf.num_vars {
                let v = Var::from_index(i);
                let value = solver.model_value(v).unwrap_or(false);
                line.push_str(&format!(" {}{}", if value { "" } else { "-" }, i + 1));
            }
            line.push_str(" 0");
            println!("{line}");
            print_stats(&solver);
            std::process::exit(10);
        }
        SolveResult::Unsat => {
            println!("s UNSATISFIABLE");
            print_stats(&solver);
            std::process::exit(20);
        }
        SolveResult::Unknown(_) => {
            println!("s UNKNOWN");
            print_stats(&solver);
        }
    }
}

fn print_stats(solver: &sufsat_sat::Solver) {
    let s = solver.stats();
    println!(
        "c conflicts={} decisions={} propagations={} restarts={} time={:.3}s",
        s.conflicts,
        s.decisions,
        s.propagations,
        s.restarts,
        s.solve_time.as_secs_f64()
    );
}

fn die(msg: &str) -> ! {
    eprintln!("sufsat-sat: {msg}");
    std::process::exit(2);
}
