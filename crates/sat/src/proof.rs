//! DRAT proof logging.
//!
//! When enabled via [`Solver::enable_proof`](crate::Solver::enable_proof),
//! the solver records every derived clause (conflict clauses, simplified
//! input clauses, the final empty clause) and every learnt-clause deletion
//! in DRAT order. UNSAT answers can then be independently validated —
//! either with an external checker via [`Proof::write_drat`], or with the
//! built-in forward RUP checker used by the test suite.

use std::io::Write;

use crate::lit::Lit;

/// One step of a DRAT proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofStep {
    /// A derived clause (reverse-unit-propagation redundant).
    Add(Vec<Lit>),
    /// A clause deletion.
    Delete(Vec<Lit>),
}

/// A recorded DRAT proof.
#[derive(Debug, Clone, Default)]
pub struct Proof {
    steps: Vec<ProofStep>,
}

impl Proof {
    pub(crate) fn new() -> Proof {
        Proof::default()
    }

    pub(crate) fn add(&mut self, clause: &[Lit]) {
        self.steps.push(ProofStep::Add(clause.to_vec()));
    }

    pub(crate) fn delete(&mut self, clause: &[Lit]) {
        self.steps.push(ProofStep::Delete(clause.to_vec()));
    }

    /// The recorded steps, in derivation order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Whether the proof ends in the empty clause (a refutation).
    pub fn is_refutation(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s, ProofStep::Add(c) if c.is_empty()))
    }

    /// Writes the proof in the textual DRAT format (`d` lines for
    /// deletions, literals in DIMACS numbering, `0` terminated).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_drat<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        for step in &self.steps {
            let (prefix, clause) = match step {
                ProofStep::Add(c) => ("", c),
                ProofStep::Delete(c) => ("d ", c),
            };
            write!(writer, "{prefix}")?;
            for &l in clause {
                let v = l.var().index() as i64 + 1;
                write!(writer, "{} ", if l.is_positive() { v } else { -v })?;
            }
            writeln!(writer, "0")?;
        }
        Ok(())
    }
}

/// Forward RUP check of `proof` against the original clauses.
///
/// Returns `true` iff every added clause is reverse-unit-propagation
/// redundant with respect to the clauses live at that point, and the proof
/// derives the empty clause. Intended for validation at test scale — the
/// propagation is a simple fixpoint scan, not watched literals.
pub fn check_refutation(original: &[Vec<Lit>], proof: &Proof) -> bool {
    let mut db: Vec<Vec<Lit>> = original.iter().map(|c| normalize(c)).collect();
    for step in proof.steps() {
        match step {
            ProofStep::Add(clause) => {
                if !rup(&db, clause) {
                    return false;
                }
                if clause.is_empty() {
                    return true;
                }
                db.push(normalize(clause));
            }
            ProofStep::Delete(clause) => {
                let key = normalize(clause);
                if let Some(pos) = db.iter().position(|c| *c == key) {
                    db.swap_remove(pos);
                }
            }
        }
    }
    false
}

fn normalize(clause: &[Lit]) -> Vec<Lit> {
    let mut c = clause.to_vec();
    c.sort_unstable();
    c.dedup();
    c
}

/// Reverse unit propagation: asserting the negation of `clause` and unit
/// propagating over `db` must yield a conflict.
fn rup(db: &[Vec<Lit>], clause: &[Lit]) -> bool {
    // Assignment: literal -> bool (true literal set).
    let mut assigned: std::collections::HashMap<Lit, bool> = std::collections::HashMap::new();
    let set_true = |l: Lit, assigned: &mut std::collections::HashMap<Lit, bool>| -> bool {
        if assigned.get(&!l).copied().unwrap_or(false) {
            return false; // conflict
        }
        assigned.insert(l, true);
        true
    };
    for &l in clause {
        if !set_true(!l, &mut assigned) {
            return true; // the negation is itself contradictory
        }
    }
    loop {
        let mut changed = false;
        for c in db {
            let mut unassigned: Option<Lit> = None;
            let mut satisfied = false;
            let mut unit = true;
            for &l in c {
                if assigned.get(&l).copied().unwrap_or(false) {
                    satisfied = true;
                    break;
                }
                if !assigned.get(&!l).copied().unwrap_or(false) {
                    if unassigned.is_some() {
                        unit = false;
                        break;
                    }
                    unassigned = Some(l);
                }
            }
            if satisfied || !unit {
                continue;
            }
            match unassigned {
                None => return true, // conflict: all literals false
                Some(l) => {
                    if !set_true(l, &mut assigned) {
                        return true;
                    }
                    changed = true;
                }
            }
        }
        if !changed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    fn l(x: i32) -> Lit {
        Lit::new(Var::from_index(x.unsigned_abs() as usize - 1), x > 0)
    }

    fn cl(xs: &[i32]) -> Vec<Lit> {
        xs.iter().map(|&x| l(x)).collect()
    }

    #[test]
    fn rup_detects_resolvents() {
        // (1 2), (-1 2) |= (2) by RUP.
        let db = vec![cl(&[1, 2]), cl(&[-1, 2])];
        assert!(rup(&db, &cl(&[2])));
        assert!(!rup(&db, &cl(&[1])), "(1) is not implied");
    }

    #[test]
    fn hand_built_refutation_checks() {
        // x1, -x1: the empty clause is directly RUP.
        let original = vec![cl(&[1]), cl(&[-1])];
        let mut proof = Proof::new();
        proof.add(&[]);
        assert!(check_refutation(&original, &proof));
    }

    #[test]
    fn missing_empty_clause_fails() {
        let original = vec![cl(&[1]), cl(&[-1])];
        let proof = Proof::new();
        assert!(!check_refutation(&original, &proof));
    }

    #[test]
    fn bogus_addition_fails() {
        let original = vec![cl(&[1, 2])];
        let mut proof = Proof::new();
        proof.add(&cl(&[-1])); // not RUP from (1 2)
        proof.add(&[]);
        assert!(!check_refutation(&original, &proof));
    }

    #[test]
    fn drat_text_round_trip_shape() {
        let mut proof = Proof::new();
        proof.add(&cl(&[1, -2]));
        proof.delete(&cl(&[1, -2]));
        proof.add(&[]);
        let mut out = Vec::new();
        proof.write_drat(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "1 -2 0\nd 1 -2 0\n0\n");
        assert!(proof.is_refutation());
    }
}
