//! SatELite-style CNF preprocessing (Eén & Biere, SAT 2005).
//!
//! [`Solver::preprocess`] runs three classical simplifications over the
//! clause arena before search, driven by per-variable occurrence lists:
//!
//! 1. **Subsumption** — a clause `C ⊆ D` deletes `D`.
//! 2. **Self-subsuming resolution** — if `C \ {l} ⊆ D` and `¬l ∈ D`, the
//!    resolvent strengthens `D` by removing `¬l`.
//! 3. **Bounded variable elimination (BVE)** — a variable whose
//!    clause-distribution resolvents do not outnumber the clauses they
//!    replace is resolved away entirely.
//!
//! # Model reconstruction
//!
//! Elimination changes the formula to an equisatisfiable one that says
//! nothing about the eliminated variable, but callers (`model_value`,
//! counterexample decoding, certification replay) still expect a value for
//! every variable. Each elimination therefore pushes the removed clauses
//! onto a reconstruction stack ([`ElimRecord`]); after every `Sat` answer
//! the solver walks the stack backwards and patches the model so all saved
//! clauses are satisfied (`extend_model`).
//!
//! The same records make elimination safe for *incremental* use: when a
//! later `add_clause` or assumption mentions an eliminated variable, the
//! saved clauses are restored verbatim (`restore_mentioned`), which brings
//! the clause set back to one logically equivalent to the original — the
//! resolvents left behind are implied, so they can stay.
//!
//! # Certification compatibility
//!
//! Subsumption emits DRAT deletion lines and self-subsumption emits the
//! resolvent (an RUP-derivable clause) before deleting the fat original,
//! so both remain active under proof logging. BVE is *disabled* while a
//! proof is being logged: restored clauses and reconstruction have no DRAT
//! story, and refutation replay must see the eliminated clauses as inputs.
//! The restriction is reported with a traced `sat.preprocess.restricted`
//! event so benchmark runs can tell which flavour they measured.
//! Variables that must survive for external reasons (e.g. the incremental
//! session's activation literals) are protected with [`Solver::set_frozen`].

use std::collections::HashMap;

use crate::clause::{ClauseRef, NO_REASON};
use crate::lit::{LBool, Lit, Var};
use crate::solver::Solver;

/// Clauses removed when a variable was eliminated, in elimination order.
///
/// Used both for model reconstruction after `Sat` answers and for
/// restoring the variable when later additions mention it.
#[derive(Debug, Clone)]
pub(crate) struct ElimRecord {
    pub(crate) var: Var,
    pub(crate) clauses: Vec<Vec<Lit>>,
}

/// Skip BVE for variables occurring in more clauses than this.
const ELIM_OCC_LIMIT: usize = 40;
/// Abort the whole preprocessing pass after this many candidate checks;
/// stopping early is always sound.
const EFFORT_BUDGET: u64 = 4_000_000;
/// Elimination/subsumption alternation rounds.
const MAX_ROUNDS: usize = 4;

impl Solver {
    /// Protects `v` from (or re-exposes it to) preprocessing elimination.
    ///
    /// Freeze variables whose clauses arrive only after
    /// [`Solver::preprocess`] has run, or that must stay available as
    /// assumption literals — e.g. activation literals in incremental use.
    pub fn set_frozen(&mut self, v: Var, frozen: bool) {
        self.frozen[v.index()] = frozen;
    }

    /// Whether `v` is currently eliminated by preprocessing.
    pub fn is_eliminated(&self, v: Var) -> bool {
        self.eliminated[v.index()]
    }

    /// Number of currently eliminated variables.
    pub fn num_eliminated(&self) -> usize {
        self.elim_records.len()
    }

    /// Runs SatELite-style preprocessing: subsumption, self-subsuming
    /// resolution and bounded variable elimination (see the module docs).
    /// Sound to call between `solve` calls; under proof logging,
    /// elimination is skipped so refutation certificates stay checkable.
    ///
    /// Returns `false` iff the clause set is (or becomes) unsatisfiable.
    pub fn preprocess(&mut self) -> bool {
        static ELIMINATED: sufsat_obs::Counter =
            sufsat_obs::Counter::new("sat.preprocess.eliminated_vars");
        static SUBSUMED: sufsat_obs::Counter =
            sufsat_obs::Counter::new("sat.preprocess.subsumed");
        static STRENGTHENED: sufsat_obs::Counter =
            sufsat_obs::Counter::new("sat.preprocess.strengthened");

        if !self.ok {
            return false;
        }
        let span = sufsat_obs::span_with!(
            "sat.preprocess",
            vars = self.num_vars(),
            clauses = self.db.len(),
        );
        let before_elim = self.stats.eliminated_vars;
        let before_sub = self.stats.subsumed_clauses;
        let before_str = self.stats.strengthened_clauses;

        // Level-0 propagation plus satisfied/falsified-literal cleanup
        // first, so occurrence lists are built over clean clauses.
        if !self.simplify() {
            return false;
        }
        let allow_elim = self.proof().is_none();
        if !allow_elim {
            sufsat_obs::event!("sat.preprocess.restricted", reason = "proof-logging");
        }

        let mut st = PreState::build(self);
        let mut ok = drain_subsumption(self, &mut st);
        let mut rounds = 0;
        while ok && allow_elim && rounds < MAX_ROUNDS && !st.exhausted() {
            if !eliminate_sweep(self, &mut st) {
                ok = self.ok;
                break;
            }
            ok = self.ok && drain_subsumption(self, &mut st);
            rounds += 1;
        }
        // Propagations above may have falsified literals inside surviving
        // clauses; a final simplify cleans them up and compacts the arena.
        if ok {
            ok = self.simplify();
        }

        let eliminated = self.stats.eliminated_vars - before_elim;
        let subsumed = self.stats.subsumed_clauses - before_sub;
        let strengthened = self.stats.strengthened_clauses - before_str;
        ELIMINATED.add(eliminated);
        SUBSUMED.add(subsumed);
        STRENGTHENED.add(strengthened);
        if span.is_recording() {
            sufsat_obs::event!(
                "sat.preprocess.result",
                ok = ok,
                eliminated_vars = eliminated,
                subsumed = subsumed,
                strengthened = strengthened,
                clauses = self.db.len(),
                exhausted = st.exhausted(),
            );
        }
        ok
    }

    /// Restores every eliminated variable mentioned by `lits` (and,
    /// transitively, eliminated variables mentioned by the restored
    /// clauses), re-adding the saved clauses so the clause set is again
    /// equivalent to the original over those variables.
    pub(crate) fn restore_mentioned(&mut self, lits: &[Lit]) {
        if self.elim_records.is_empty() {
            return;
        }
        let mut work: Vec<Var> = lits
            .iter()
            .map(|l| l.var())
            .filter(|v| self.eliminated[v.index()])
            .collect();
        while let Some(v) = work.pop() {
            if !self.eliminated[v.index()] {
                continue;
            }
            self.eliminated[v.index()] = false;
            self.stats.eliminated_vars = self.stats.eliminated_vars.saturating_sub(1);
            sufsat_obs::event!("sat.preprocess.restore", var = v.index());
            let idx = self
                .elim_records
                .iter()
                .position(|r| r.var == v)
                .expect("eliminated variable has a reconstruction record");
            let rec = self.elim_records.remove(idx);
            for clause in rec.clauses {
                // A saved clause may mention variables eliminated later;
                // they must come back too.
                work.extend(
                    clause
                        .iter()
                        .map(|l| l.var())
                        .filter(|w| self.eliminated[w.index()]),
                );
                // BVE never runs under proof logging, so restored clauses
                // need no DRAT bookkeeping (debug-checked here).
                debug_assert!(self.proof().is_none());
                self.add_clause_core(clause, false);
            }
        }
    }

    /// Extends the model over eliminated variables: walks the
    /// reconstruction stack backwards and gives each eliminated variable a
    /// value satisfying all of its saved clauses.
    pub(crate) fn extend_model(&mut self) {
        for i in (0..self.elim_records.len()).rev() {
            let rec = &self.elim_records[i];
            let mut forced: Option<bool> = None;
            for clause in &rec.clauses {
                let mut pol = true;
                let mut other_sat = false;
                for &l in clause {
                    if l.var() == rec.var {
                        pol = l.is_positive();
                    } else if self.model[l.var().index()] == l.is_positive() {
                        other_sat = true;
                        break;
                    }
                }
                if !other_sat {
                    // Two otherwise-unsatisfied clauses of opposite
                    // polarity would falsify their resolvent, which is in
                    // the formula the model satisfies — impossible.
                    debug_assert!(
                        forced.is_none() || forced == Some(pol),
                        "contradictory model reconstruction for {}",
                        rec.var
                    );
                    forced = Some(pol);
                }
            }
            if let Some(value) = forced {
                self.model[rec.var.index()] = value;
            }
        }
    }
}

/// Occurrence lists plus signatures for the clauses preprocessing may
/// touch (live, length >= 2, no top-level-assigned literal at build time).
struct PreState {
    /// Per-variable occurrence lists (both polarities, lazily cleaned).
    occ: Vec<Vec<ClauseRef>>,
    /// Variable-set signature per in-universe clause; doubles as the
    /// "still in the universe" marker.
    sig: HashMap<ClauseRef, u64>,
    /// Clauses pending a backward-subsumption pass.
    queue: Vec<ClauseRef>,
    /// Remaining candidate-check budget.
    budget: u64,
}

fn signature(lits: &[Lit]) -> u64 {
    lits.iter()
        .fold(0u64, |acc, l| acc | 1u64 << (l.var().index() % 64))
}

impl PreState {
    fn build(s: &Solver) -> PreState {
        let mut st = PreState {
            occ: vec![Vec::new(); s.num_vars()],
            sig: HashMap::new(),
            queue: Vec::new(),
            budget: EFFORT_BUDGET,
        };
        for cref in s.db.crefs() {
            if s.db.is_removed(cref) || s.db.size(cref) < 2 {
                continue;
            }
            let lits = s.db.lits_vec(cref);
            if lits.iter().any(|&l| s.value(l) != LBool::Undef) {
                // Post-simplify this is a satisfied clause locked as a
                // level-0 reason: permanently satisfied, never touched.
                continue;
            }
            st.register(cref, &lits);
        }
        st
    }

    fn register(&mut self, cref: ClauseRef, lits: &[Lit]) {
        for &l in lits {
            self.occ[l.var().index()].push(cref);
        }
        self.sig.insert(cref, signature(lits));
        self.queue.push(cref);
    }

    fn deregister(&mut self, cref: ClauseRef) {
        // Occurrence entries are cleaned lazily: scans skip refs without a
        // signature entry.
        self.sig.remove(&cref);
    }

    fn in_universe(&self, cref: ClauseRef) -> bool {
        self.sig.contains_key(&cref)
    }

    fn spend(&mut self, amount: u64) -> bool {
        self.budget = self.budget.saturating_sub(amount);
        self.budget > 0
    }

    fn exhausted(&self) -> bool {
        self.budget == 0
    }
}

enum Sub {
    Subsumes,
    /// `D` can be strengthened by removing this literal of `D`.
    Strengthen(Lit),
    None,
}

/// Does `c_lits` subsume `d`, possibly modulo one flipped literal
/// (self-subsuming resolution)?
fn subsumes(s: &Solver, c_lits: &[Lit], d: ClauseRef) -> Sub {
    let dn = s.db.size(d);
    if c_lits.len() > dn {
        return Sub::None;
    }
    let mut flipped: Option<Lit> = None;
    'outer: for &l in c_lits {
        for k in 0..dn {
            let dl = s.db.lit(d, k);
            if dl == l {
                continue 'outer;
            }
            if dl == !l && flipped.is_none() {
                flipped = Some(dl);
                continue 'outer;
            }
        }
        return Sub::None;
    }
    match flipped {
        None => Sub::Subsumes,
        Some(dl) => Sub::Strengthen(dl),
    }
}

/// Deletes a subsumed clause.
fn delete_clause(s: &mut Solver, st: &mut PreState, d: ClauseRef) {
    let lits = s.db.lits_vec(d);
    s.proof_delete(&lits);
    st.deregister(d);
    s.detach(d);
    s.db.remove(d);
    s.stats.subsumed_clauses += 1;
}

/// Strengthens `d` by removing `dl` (self-subsuming resolution). Returns
/// `false` iff the clause set became unsatisfiable.
fn strengthen_clause(s: &mut Solver, st: &mut PreState, d: ClauseRef, dl: Lit) -> bool {
    let old = s.db.lits_vec(d);
    let new: Vec<Lit> = old.iter().copied().filter(|&x| x != dl).collect();
    debug_assert!(!new.is_empty());
    // The resolvent is RUP against its two parents, so this order (add,
    // then delete the fat original) keeps DRAT replay happy.
    s.proof_add(&new);
    s.proof_delete(&old);
    st.deregister(d);
    s.detach(d);
    let learnt = s.db.learnt(d);
    let lbd = s.db.lbd(d);
    s.db.remove(d);
    s.stats.strengthened_clauses += 1;
    if new.len() == 1 {
        match s.value(new[0]) {
            LBool::True => {}
            LBool::False => {
                s.ok = false;
                s.proof_add(&[]);
                return false;
            }
            LBool::Undef => {
                s.enqueue(new[0], NO_REASON);
                if s.propagate().is_some() {
                    s.ok = false;
                    s.proof_add(&[]);
                    return false;
                }
            }
        }
    } else {
        let nref = s.db.alloc(&new, learnt, lbd);
        s.attach(nref);
        st.register(nref, &new);
    }
    true
}

/// Backward subsumption + self-subsumption to fixpoint over the queue.
/// Returns `false` iff the clause set became unsatisfiable.
fn drain_subsumption(s: &mut Solver, st: &mut PreState) -> bool {
    while let Some(c) = st.queue.pop() {
        if !st.in_universe(c) || s.db.is_removed(c) {
            continue;
        }
        if s.cancel_requested() || !st.spend(1) {
            return true;
        }
        let c_lits = s.db.lits_vec(c);
        let csig = st.sig[&c];
        let best = c_lits
            .iter()
            .map(|l| l.var())
            .min_by_key(|v| st.occ[v.index()].len())
            .expect("clauses in the universe are non-empty");
        let cands = st.occ[best.index()].clone();
        if !st.spend(cands.len() as u64) {
            return true;
        }
        for d in cands {
            if d == c || !st.in_universe(d) || s.db.is_removed(d) {
                continue;
            }
            let dsig = st.sig[&d];
            if csig & !dsig != 0 {
                continue;
            }
            match subsumes(s, &c_lits, d) {
                Sub::Subsumes => {
                    if !s.locked(d) {
                        // A learnt subsumer now justifies deleting an input
                        // clause: promote it to irredundant first, or a
                        // later reduce_db could drop it too and leave the
                        // clause set weaker than the input formula.
                        if s.db.learnt(c) && !s.db.learnt(d) {
                            s.db.make_irredundant(c);
                        }
                        delete_clause(s, st, d);
                    }
                }
                Sub::Strengthen(dl) => {
                    if !s.locked(d) && !strengthen_clause(s, st, d, dl) {
                        return false;
                    }
                }
                Sub::None => {}
            }
        }
    }
    true
}

/// The resolvent of `p` (containing `v`) and `n` (containing `¬v`), or
/// `None` when it is a tautology.
fn resolve(s: &Solver, p: ClauseRef, n: ClauseRef, v: Var) -> Option<Vec<Lit>> {
    let mut out: Vec<Lit> = Vec::with_capacity(s.db.size(p) + s.db.size(n) - 2);
    for k in 0..s.db.size(p) {
        let l = s.db.lit(p, k);
        if l.var() != v {
            out.push(l);
        }
    }
    for k in 0..s.db.size(n) {
        let l = s.db.lit(n, k);
        if l.var() == v {
            continue;
        }
        if out.contains(&!l) {
            return None;
        }
        if !out.contains(&l) {
            out.push(l);
        }
    }
    Some(out)
}

/// One bounded-variable-elimination sweep over all candidate variables.
/// Returns whether any variable was eliminated; `Solver::ok` goes false if
/// a conflict is derived.
fn eliminate_sweep(s: &mut Solver, st: &mut PreState) -> bool {
    let mut order: Vec<Var> = (0..s.num_vars()).map(Var::from_index).collect();
    order.sort_by_key(|v| st.occ[v.index()].len());
    let mut changed = false;
    for v in order {
        if !s.ok || s.cancel_requested() || !st.spend(1) {
            break;
        }
        let vi = v.index();
        if s.frozen[vi] || s.eliminated[vi] || s.assigns[vi].is_assigned() {
            continue;
        }
        changed |= try_eliminate(s, st, v);
    }
    changed
}

/// Tries to eliminate `v` by clause distribution. Returns whether it was
/// eliminated.
fn try_eliminate(s: &mut Solver, st: &mut PreState, v: Var) -> bool {
    let occs: Vec<ClauseRef> = st.occ[v.index()]
        .iter()
        .copied()
        .filter(|&c| st.in_universe(c) && !s.db.is_removed(c))
        .collect();
    if occs.is_empty() || occs.len() > ELIM_OCC_LIMIT {
        return false;
    }
    // Reason clauses must never be deleted.
    if occs.iter().any(|&c| s.locked(c)) {
        return false;
    }
    let pos_lit = v.positive();
    let (pos, neg): (Vec<ClauseRef>, Vec<ClauseRef>) = occs
        .iter()
        .partition(|&&c| s.db.lits_vec(c).contains(&pos_lit));
    if !st.spend((pos.len() * neg.len()) as u64) {
        return false;
    }
    // Distribution: collect non-tautological resolvents, giving up as soon
    // as they would outnumber the clauses they replace.
    let mut resolvents: Vec<Vec<Lit>> = Vec::new();
    for &p in &pos {
        for &n in &neg {
            if let Some(r) = resolve(s, p, n, v) {
                resolvents.push(r);
                if resolvents.len() > occs.len() {
                    return false;
                }
            }
        }
    }
    // Commit: save and delete the originals, then add the resolvents.
    let mut record = ElimRecord {
        var: v,
        clauses: Vec::with_capacity(occs.len()),
    };
    for &c in &occs {
        let lits = s.db.lits_vec(c);
        s.proof_delete(&lits);
        record.clauses.push(lits);
        st.deregister(c);
        s.detach(c);
        s.db.remove(c);
    }
    s.eliminated[v.index()] = true;
    s.elim_records.push(record);
    s.stats.eliminated_vars += 1;
    for r in resolvents {
        s.proof_add(&r);
        match r.len() {
            0 => {
                s.ok = false;
                return true;
            }
            1 => match s.value(r[0]) {
                LBool::True => {}
                LBool::False => {
                    s.ok = false;
                    s.proof_add(&[]);
                    return true;
                }
                LBool::Undef => {
                    s.enqueue(r[0], NO_REASON);
                    if s.propagate().is_some() {
                        s.ok = false;
                        s.proof_add(&[]);
                        return true;
                    }
                }
            },
            _ => {
                let nref = s.db.alloc(&r, false, 0);
                s.attach(nref);
                st.register(nref, &r);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    fn nvars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn subsumption_deletes_superset_clauses() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        s.add_clause([v[0].positive(), v[1].positive()]);
        s.add_clause([v[0].positive(), v[1].positive(), v[2].positive()]);
        assert_eq!(s.num_clauses(), 2);
        assert!(s.preprocess());
        assert_eq!(s.stats().subsumed_clauses, 1);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (a ∨ b) and (¬a ∨ b ∨ c): the second strengthens to (b ∨ c)?
        // No — (a ∨ b) self-subsumes (¬a ∨ b ∨ c) on a, giving (b ∨ c).
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        s.add_clause([v[0].positive(), v[1].positive()]);
        s.add_clause([v[0].negative(), v[1].positive(), v[2].positive()]);
        assert!(s.preprocess());
        assert!(s.stats().strengthened_clauses >= 1);
        // Forcing ¬b now implies a (first clause) and c (strengthened one).
        s.add_clause([v[1].negative()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(v[0]), Some(true));
        assert_eq!(s.model_value(v[2]), Some(true));
    }

    #[test]
    fn bve_eliminates_and_reconstructs_model() {
        // x is a pure connective: (¬x ∨ a), (¬x ∨ b), (x ∨ ¬a ∨ ¬b) — an
        // AND gate. Eliminating x must keep the formula satisfiable and
        // the reconstructed model must satisfy all original clauses.
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        let (x, a, b) = (v[0], v[1], v[2]);
        // Freeze the gate inputs so x is the elimination target (a and b
        // would otherwise go first — their resolvents are all tautologies).
        s.set_frozen(a, true);
        s.set_frozen(b, true);
        let original: Vec<Vec<Lit>> = vec![
            vec![x.negative(), a.positive()],
            vec![x.negative(), b.positive()],
            vec![x.positive(), a.negative(), b.negative()],
        ];
        for c in &original {
            s.add_clause(c.iter().copied());
        }
        assert!(s.preprocess());
        assert!(s.is_eliminated(x), "gate variable should be eliminated");
        assert_eq!(s.stats().eliminated_vars, 1);
        // Force a and b true; x must reconstruct to true.
        s.add_clause([a.positive()]);
        s.add_clause([b.positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for c in &original {
            assert!(
                c.iter().any(|&l| s.model_lit_value(l) == Some(true)),
                "reconstructed model violates {c:?}"
            );
        }
        assert_eq!(s.model_value(x), Some(true));
    }

    #[test]
    fn bve_reconstruction_round_trips_many_seeds() {
        // Random small formulas: preprocess+solve and plain solve agree on
        // satisfiability, and reconstructed models satisfy every original
        // clause.
        for seed in 0..40u64 {
            let mut h = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            let mut next = || {
                h ^= h << 13;
                h ^= h >> 7;
                h ^= h << 17;
                h
            };
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..14 {
                let len = 1 + (next() % 3) as usize;
                clauses.push(
                    (0..len)
                        .map(|_| ((next() % 6) as usize, next() & 1 == 1))
                        .collect(),
                );
            }
            let build = |pre: bool| -> (SolveResult, Option<Vec<bool>>) {
                let mut s = Solver::new();
                let vs = (0..6).map(|_| s.new_var()).collect::<Vec<_>>();
                for c in &clauses {
                    s.add_clause(c.iter().map(|&(v, pos)| Lit::new(vs[v], pos)));
                }
                if pre {
                    let _ = s.preprocess();
                }
                let r = s.solve();
                let model = (r == SolveResult::Sat).then(|| s.model().to_vec());
                (r, model)
            };
            let (plain, _) = build(false);
            let (pre, model) = build(true);
            assert_eq!(plain, pre, "seed {seed}");
            if let Some(model) = model {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&(v, pos)| model[v] == pos),
                        "seed {seed}: reconstructed model violates {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn learnt_subsumer_is_promoted_before_deleting_original() {
        // A learnt clause subsuming an original clause must become
        // irredundant when the original is deleted: if it stayed learnt, a
        // later reduce_db could drop it too, leaving the clause set weaker
        // than the input formula.
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        let (a, b, c) = (v[0], v[1], v[2]);
        // Freeze everything so BVE stays out of the picture.
        for &x in &v {
            s.set_frozen(x, true);
        }
        s.add_clause([a.positive(), b.positive(), c.positive()]);
        let lref = s.db.alloc(&[a.positive(), b.positive()], true, 2);
        s.attach(lref);
        assert_eq!(s.db.num_learnts(), 1);
        assert!(s.preprocess());
        assert_eq!(s.stats().subsumed_clauses, 1);
        // `lref` may have been relocated by arena GC inside preprocess;
        // assert over the whole live arena instead: the subsumer survives
        // promoted, so no learnt clause is left for reduce_db to drop.
        assert_eq!(s.db.num_learnts(), 0);
        assert!(s.db.learnts.is_empty(), "promoted clause leaves the learnt index");
        let live: Vec<_> = s
            .db
            .crefs()
            .into_iter()
            .filter(|&c| !s.db.is_removed(c))
            .collect();
        assert_eq!(live.len(), 1);
        assert!(!s.db.learnt(live[0]), "subsumer must be promoted");
        assert_eq!(s.db.size(live[0]), 2);
        // The promoted clause now carries the deleted original's content:
        // ¬a ∧ ¬b must refute the formula.
        s.add_clause([a.negative()]);
        s.add_clause([b.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn preprocess_detects_unsat() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 2);
        s.add_clause([v[0].positive(), v[1].positive()]);
        s.add_clause([v[0].positive(), v[1].negative()]);
        s.add_clause([v[0].negative(), v[1].positive()]);
        s.add_clause([v[0].negative(), v[1].negative()]);
        assert!(!s.preprocess() || s.solve() == SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn frozen_variables_survive() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        s.set_frozen(v[0], true);
        s.add_clause([v[0].negative(), v[1].positive()]);
        s.add_clause([v[0].positive(), v[1].negative(), v[2].positive()]);
        assert!(s.preprocess());
        assert!(!s.is_eliminated(v[0]));
        // A frozen variable still works as an assumption.
        assert_eq!(s.solve_with_assumptions(&[v[0].positive()]), SolveResult::Sat);
        assert_eq!(s.model_value(v[1]), Some(true));
    }

    #[test]
    fn adding_clause_on_eliminated_var_restores_it() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        let (x, a, b) = (v[0], v[1], v[2]);
        s.set_frozen(a, true);
        s.set_frozen(b, true);
        s.add_clause([x.negative(), a.positive()]);
        s.add_clause([x.negative(), b.positive()]);
        s.add_clause([x.positive(), a.negative(), b.negative()]);
        assert!(s.preprocess());
        assert!(s.is_eliminated(x));
        // New clauses force x true and b false: a must come back true via
        // the restored (¬x ∨ a), and (¬x ∨ b) must make this unsat once b
        // is false.
        s.add_clause([x.positive()]);
        assert!(!s.is_eliminated(x), "restore on add_clause");
        assert_eq!(s.num_eliminated(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
        assert_eq!(s.model_value(b), Some(true));
        s.add_clause([b.negative()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assuming_an_eliminated_var_restores_it() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 3);
        let (x, a, b) = (v[0], v[1], v[2]);
        s.add_clause([x.negative(), a.positive()]);
        s.add_clause([x.negative(), b.positive()]);
        s.add_clause([x.positive(), a.negative(), b.negative()]);
        s.add_clause([b.negative()]);
        assert!(s.preprocess());
        if s.is_eliminated(x) {
            // Assuming x must now behave exactly like the original
            // formula: x ∧ ¬b is contradictory.
            assert_eq!(s.solve_with_assumptions(&[x.positive()]), SolveResult::Unsat);
            assert!(!s.is_eliminated(x));
            assert!(!s.failed_assumptions().is_empty());
        }
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn proof_logging_restricts_elimination_but_stays_checkable() {
        // Satisfiable formula with an obvious elimination candidate: BVE
        // must stay off while a proof is being logged.
        let mut s = Solver::new();
        s.enable_proof();
        let v = nvars(&mut s, 3);
        s.add_clause([v[0].negative(), v[1].positive()]);
        s.add_clause([v[0].negative(), v[2].positive()]);
        s.add_clause([v[0].positive(), v[1].negative(), v[2].negative()]);
        assert!(s.preprocess());
        assert_eq!(s.num_eliminated(), 0, "BVE must be off under proof logging");
        assert_eq!(s.solve(), SolveResult::Sat);

        // Unsat formula: subsumption + self-subsumption during
        // preprocessing (which here refutes the formula outright) must
        // leave a checkable DRAT refutation.
        let mut s = Solver::new();
        s.enable_proof();
        let v = nvars(&mut s, 4);
        s.add_clause([v[2].positive(), v[3].positive()]);
        s.add_clause([v[2].positive(), v[3].positive(), v[0].positive()]);
        s.add_clause([v[0].positive(), v[1].positive()]);
        s.add_clause([v[0].positive(), v[1].negative()]);
        s.add_clause([v[0].negative(), v[1].positive()]);
        s.add_clause([v[0].negative(), v[1].negative()]);
        let pre_ok = s.preprocess();
        assert!(s.stats().subsumed_clauses + s.stats().strengthened_clauses >= 1);
        assert_eq!(s.num_eliminated(), 0);
        assert!(!pre_ok, "self-subsumption refutes this formula outright");
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.check_proof(), Some(true));
    }

    #[test]
    fn preprocess_twice_is_idempotent_enough() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 4);
        s.add_clause([v[0].positive(), v[1].positive()]);
        s.add_clause([v[1].negative(), v[2].positive()]);
        s.add_clause([v[2].negative(), v[3].positive()]);
        assert!(s.preprocess());
        assert!(s.preprocess());
        assert_eq!(s.solve(), SolveResult::Sat);
    }
}
