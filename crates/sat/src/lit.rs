//! Propositional variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense non-negative index.
///
/// Variables are created by [`Solver::new_var`](crate::Solver::new_var); the
/// solver hands them out in increasing index order starting from 0.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    ///
    /// Mostly useful when decoding external formats (e.g. DIMACS) whose
    /// variable numbering is already dense.
    pub fn from_index(index: usize) -> Var {
        Var(u32::try_from(index).expect("variable index overflow"))
    }

    /// Returns the dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// Returns the negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Internally encoded as `2 * var + sign` where `sign == 1` means negated,
/// which makes literals directly usable as indices into watch lists.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal over `var` that is true iff `positive` matches the
    /// variable's assignment.
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The variable underlying this literal.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal of its variable.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index of the literal (`2 * var + sign`), suitable for indexing
    /// per-literal tables such as watch lists.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from the dense index produced by [`Lit::index`].
    pub fn from_index(index: usize) -> Lit {
        Lit(u32::try_from(index).expect("literal index overflow"))
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// Three-valued assignment state of a variable.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts a concrete boolean.
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// Logical negation; `Undef` stays `Undef`.
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// Whether this value is decided (not `Undef`).
    pub fn is_assigned(self) -> bool {
        self != LBool::Undef
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var::from_index(7);
        assert_eq!(v.index(), 7);
        let p = v.positive();
        let n = v.negative();
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(Lit::from_index(p.index()), p);
        assert_eq!(Lit::from_index(n.index()), n);
    }

    #[test]
    fn literal_indices_are_adjacent() {
        let v = Var::from_index(3);
        assert_eq!(v.positive().index(), 6);
        assert_eq!(v.negative().index(), 7);
    }

    #[test]
    fn lbool_negation() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::False.negate(), LBool::True);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert!(LBool::True.is_assigned());
        assert!(!LBool::Undef.is_assigned());
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(2);
        assert_eq!(v.to_string(), "x2");
        assert_eq!(v.positive().to_string(), "x2");
        assert_eq!(v.negative().to_string(), "!x2");
    }
}
