//! DIMACS parser micro-benchmark. Ignored by default; run with
//!
//! ```text
//! cargo test -p sufsat-sat --release --test dimacs_bench -- --ignored --nocapture
//! ```
//!
//! Generates a synthetic random-3-SAT instance in memory (so the numbers
//! measure parsing, not disk I/O) and reports `Cnf::parse` throughput.
//! `BENCH_solver.json` records before/after numbers for the byte-level
//! scanner that replaced the `split_whitespace`-based parser.

use std::fmt::Write as _;
use std::time::Instant;

use sufsat_sat::dimacs::Cnf;

/// Deterministic xorshift so before/after runs parse identical bytes.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn synthetic_cnf(vars: u64, clauses: u64, seed: u64) -> String {
    let mut rng = Rng(seed);
    let mut text = String::with_capacity(clauses as usize * 16);
    writeln!(text, "c synthetic random 3-SAT parse benchmark").unwrap();
    writeln!(text, "p cnf {vars} {clauses}").unwrap();
    for _ in 0..clauses {
        for _ in 0..3 {
            let v = rng.next() % vars + 1;
            let sign = if rng.next() & 1 == 0 { "" } else { "-" };
            write!(text, "{sign}{v} ").unwrap();
        }
        writeln!(text, "0").unwrap();
    }
    text
}

#[test]
#[ignore = "micro-benchmark; run explicitly with --ignored --nocapture"]
fn parse_throughput() {
    let text = synthetic_cnf(200_000, 1_000_000, 0x5eed_2026);
    let bytes = text.len();
    // Warm-up pass, then the timed passes.
    let warm = Cnf::parse(text.as_bytes()).expect("synthetic CNF parses");
    assert_eq!(warm.clauses.len(), 1_000_000);
    const ITERS: u32 = 5;
    let start = Instant::now();
    for _ in 0..ITERS {
        let cnf = Cnf::parse(text.as_bytes()).expect("synthetic CNF parses");
        assert_eq!(cnf.clauses.len(), 1_000_000);
    }
    let elapsed = start.elapsed();
    let per_pass = elapsed / ITERS;
    let mib_s = bytes as f64 / 1048576.0 / per_pass.as_secs_f64();
    println!(
        "dimacs parse: {} bytes, {} clauses, {:?}/pass over {ITERS} passes ({mib_s:.1} MiB/s)",
        bytes, 1_000_000, per_pass
    );
}
