//! Cross-thread progress heartbeat: a long-running search publishes
//! monotone, live snapshots through a shared `ProgressHandle`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use sufsat_sat::{ProgressHandle, SolveResult, Solver, Var};

/// Pigeonhole principle PHP(holes+1, holes): unsat with exponential-size
/// resolution proofs, so CDCL grinds through conflicts for a long time —
/// the shape of instance a heartbeat exists for.
fn pigeonhole(holes: usize) -> Solver {
    let pigeons = holes + 1;
    let mut s = Solver::new();
    let grid: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| s.new_var()).collect())
        .collect();
    for p in 0..pigeons {
        s.add_clause((0..holes).map(|h| grid[p][h].positive()));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                s.add_clause([grid[p1][h].negative(), grid[p2][h].negative()]);
            }
        }
    }
    s
}

#[test]
fn heartbeat_shows_monotone_live_conflicts() {
    let handle = ProgressHandle::new();
    let solver_handle = handle.clone();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Big enough that the search outlives the timeout by orders
            // of magnitude; the timeout bounds test runtime.
            let mut solver = pigeonhole(10);
            solver.set_progress_handle(Some(solver_handle));
            solver.set_timeout(Some(Duration::from_millis(1500)));
            let result = solver.solve();
            // PHP(11,10) cannot finish in 1.5 s; only the deadline stops it.
            assert!(
                matches!(result, SolveResult::Unknown(_)),
                "expected an interrupted search, got {result:?}"
            );
            done.store(true, Ordering::SeqCst);
        });

        // Sample the handle from this thread while the search runs.
        let mut samples = Vec::new();
        while !done.load(Ordering::SeqCst) {
            let snap = handle.snapshot();
            if snap.seq > 0 {
                samples.push(snap);
            }
            std::thread::sleep(Duration::from_millis(20));
        }

        assert!(
            samples.len() >= 3,
            "expected several live snapshots over a 1.5 s search, got {}",
            samples.len()
        );
        for pair in samples.windows(2) {
            assert!(
                pair[1].conflicts >= pair[0].conflicts,
                "conflict count regressed: {} -> {}",
                pair[0].conflicts,
                pair[1].conflicts
            );
            assert!(pair[1].seq >= pair[0].seq, "seq must never regress");
            assert!(
                pair[1].elapsed_us >= pair[0].elapsed_us,
                "elapsed time regressed"
            );
        }
        let last = samples.last().unwrap();
        assert!(
            last.seq > samples[0].seq,
            "publication must advance over the sampling interval"
        );
        assert!(last.conflicts > 0, "PHP search must conflict");
        assert!(last.decisions > 0);
        assert!(last.learnt_clauses > 0, "learnt DB must be non-empty");
        assert!(last.arena_bytes > 0);
    });
}
