//! Regression test for deadline-polling granularity.
//!
//! `Solver::search` used to read the clock only every 256 *conflicts*, so
//! an instance that propagates or enumerates its way to an answer without
//! ever conflicting would blow straight through any timeout — the serve
//! daemon's per-request deadlines made that latency visible. The poll is
//! now amortized over a credit counter fed by every search cycle, so even
//! conflict-free search honors the deadline.

use std::time::{Duration, Instant};

use sufsat_sat::{Interrupt, Lit, SolveResult, Solver};

/// A large, trivially satisfiable instance: hundreds of thousands of
/// variables, each with a unit-free binary clause `(x_i ∨ x_i+1)` that the
/// default false-first phase never falsifies into a conflict. The solver
/// must decide every variable one by one — plenty of conflict-free cycles.
fn big_easy_solver(vars: u32) -> Solver {
    let mut solver = Solver::new();
    let lits: Vec<Lit> = (0..vars).map(|_| solver.new_var().positive()).collect();
    for w in lits.windows(2) {
        solver.add_clause([w[0], w[1]]);
    }
    solver
}

#[test]
fn timeout_fires_without_conflicts() {
    let mut solver = big_easy_solver(400_000);
    solver.set_timeout(Some(Duration::from_millis(1)));
    let started = Instant::now();
    let result = solver.solve();
    let elapsed = started.elapsed();
    // The instance has zero conflicts, so the old conflict-gated check
    // never ran and the solver returned Sat after enumerating all 400k
    // variables. The credit-based poll must interrupt instead.
    assert_eq!(
        result,
        SolveResult::Unknown(Interrupt::Timeout),
        "a 1 ms deadline on a conflict-free instance must time out, got {result:?}"
    );
    // Generous machine-independent bound: polling every 256 cycles keeps
    // the overshoot far below the full enumeration time.
    assert!(
        elapsed < Duration::from_secs(5),
        "timeout overshoot too large: {elapsed:?}"
    );
}

#[test]
fn generous_timeout_still_solves() {
    let mut solver = big_easy_solver(50_000);
    solver.set_timeout(Some(Duration::from_secs(60)));
    assert_eq!(solver.solve(), SolveResult::Sat);
}
