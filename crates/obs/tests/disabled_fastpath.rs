//! The disabled-tracing fast path must cost one atomic load per call site:
//! no allocation, no lock, no registration. Verified under a counting
//! global allocator — this test runs in its own process (integration test
//! binary) so nothing else can enable tracing or allocate concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

static HOT_COUNTER: sufsat_obs::Counter = sufsat_obs::Counter::new("test.hot_counter");
static HOT_GAUGE: sufsat_obs::Gauge = sufsat_obs::Gauge::new("test.hot_gauge");
static HOT_HIST: sufsat_obs::Histogram = sufsat_obs::Histogram::new("test.hot_hist");

#[test]
fn disabled_instrumentation_never_allocates() {
    assert!(!sufsat_obs::enabled());

    // Warm up thread-locals (the lazy thread-id init may allocate once in
    // the std runtime) before taking the baseline.
    let _ = sufsat_obs::span("warmup");
    sufsat_obs::event!("warmup", n = 0u64);
    HOT_COUNTER.add(1);

    // The allocation counter is process-global, and the std runtime keeps
    // threads of its own (libtest's harness) that may allocate at any
    // moment. The claim under test is per-iteration, so measure several
    // windows and judge the *minimum*: a fast path that allocates shows a
    // nonzero count in every window, while unrelated background noise
    // cannot land in all of them.
    let mut min_delta = u64::MAX;
    for _ in 0..8 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for i in 0..100_000u64 {
            HOT_COUNTER.add(i);
            HOT_GAUGE.set(i as i64);
            HOT_HIST.record(i);
            let span = sufsat_obs::span_with!("test.span", iteration = i);
            assert!(!span.is_recording());
            sufsat_obs::event!("test.event", iteration = i, label = "disabled");
            drop(span);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        min_delta = min_delta.min(after - before);
    }
    assert_eq!(
        min_delta, 0,
        "disabled tracing fast path allocated {min_delta} times per 100k-call window"
    );

    // Nothing registered either: the metrics registry stayed empty and the
    // counter never left zero.
    assert_eq!(HOT_COUNTER.value(), 0);
    assert_eq!(HOT_GAUGE.value(), 0);
    assert_eq!(HOT_HIST.snapshot().count(), 0);
    assert!(sufsat_obs::metrics_snapshot().is_empty());
}
