//! Concurrency hammer: counters, spans and events from many
//! `thread::scope` workers must stay consistent and produce a trace whose
//! every line is valid JSON. Runs in its own process because it installs a
//! global sink.

use std::sync::Arc;
use std::thread;

use sufsat_obs::json::{self, Json};

static HAMMERED: sufsat_obs::Counter = sufsat_obs::Counter::new("test.hammered");

const WORKERS: u64 = 8;
const ITERS: u64 = 10_000;

#[test]
fn counters_and_spans_survive_contention() {
    let ring = Arc::new(sufsat_obs::RingSink::new(1_000_000));
    sufsat_obs::install(ring.clone());

    thread::scope(|scope| {
        for worker in 0..WORKERS {
            scope.spawn(move || {
                let _span = sufsat_obs::span_with!("test.worker", worker = worker);
                for i in 0..ITERS {
                    HAMMERED.add(1);
                    if i % 1000 == 0 {
                        sufsat_obs::event!("test.progress", worker = worker, i = i);
                    }
                }
            });
        }
    });

    sufsat_obs::emit_counter_records();
    sufsat_obs::shutdown();

    // Every increment landed despite contention.
    assert_eq!(HAMMERED.value(), WORKERS * ITERS);
    let snapshot = sufsat_obs::metrics_snapshot();
    let (_, total) = snapshot
        .iter()
        .find(|(name, _)| name == "test.hammered")
        .expect("registered");
    assert_eq!(*total, (WORKERS * ITERS) as i64);

    // The interleaved trace is line-wise valid JSON with balanced spans
    // and per-worker events attributed to that worker's span.
    let lines = ring.lines();
    let mut opens = 0u64;
    let mut closes = 0u64;
    let mut events = 0u64;
    for line in &lines {
        let record = json::parse(line).expect("valid json under contention");
        assert!(record.get("ts").and_then(Json::as_u64).is_some(), "{line}");
        assert!(record.get("thread").and_then(Json::as_u64).is_some(), "{line}");
        match record.get("kind").and_then(Json::as_str).expect("kind") {
            "span_open" => opens += 1,
            "span_close" => {
                closes += 1;
                assert!(record.get("dur_us").and_then(Json::as_u64).is_some());
            }
            "event" => {
                events += 1;
                assert!(record.get("span").and_then(Json::as_u64).unwrap_or(0) > 0);
            }
            "counter" => {}
            other => panic!("unexpected kind {other}"),
        }
    }
    assert_eq!(opens, WORKERS);
    assert_eq!(closes, WORKERS);
    assert_eq!(events, WORKERS * ITERS.div_ceil(1000));
}
