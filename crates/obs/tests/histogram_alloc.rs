//! The histogram record path must stay allocation-free even while tracing
//! is ENABLED: registration (one `Arc` + registry push) happens on the
//! first record, after which every record is a handful of relaxed atomic
//! RMWs. Verified under a counting global allocator in its own process,
//! like the disabled-fastpath test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

static HIST: sufsat_obs::Histogram = sufsat_obs::Histogram::new("test.alloc_hist");

#[test]
fn enabled_record_path_never_allocates() {
    // Enable tracing with a sink that swallows records; the install and
    // the first record (lazy registration) may allocate.
    sufsat_obs::install(Arc::new(sufsat_obs::NoopSink));
    assert!(sufsat_obs::enabled());
    HIST.record(0); // registers
    let raw = sufsat_obs::HistogramBins::new();

    // Same windowed-minimum scheme as the disabled-fastpath test: the
    // allocation counter is process-global, so judge the minimum delta
    // across several windows to filter background noise.
    let mut min_delta = u64::MAX;
    for _ in 0..8 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for i in 0..100_000u64 {
            HIST.record(i * 37);
            raw.record(i * 53);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        min_delta = min_delta.min(after - before);
    }
    assert_eq!(
        min_delta, 0,
        "enabled histogram record path allocated {min_delta} times per 100k-record window"
    );

    assert_eq!(HIST.snapshot().count(), 1 + 8 * 100_000);
    assert_eq!(raw.count(), 8 * 100_000);
    sufsat_obs::shutdown();
}
