//! Histogram accuracy, concurrency and merge-law tests.
//!
//! The log-linear bucket scheme promises every reported quantile `est`
//! satisfies `exact <= est <= exact + exact/16` (upper bucket bound,
//! capped at the exact max). These tests check that bound empirically
//! against exact order statistics on three differently-shaped
//! distributions, then exercise concurrent recording and the merge
//! algebra a rolling window relies on.

use std::sync::Arc;
use std::thread;

use sufsat_obs::{HistogramBins, HistogramSnapshot};
use sufsat_prng::Prng;

const QUANTILES: [f64; 4] = [0.50, 0.90, 0.95, 0.99];

/// Exact order statistic matching the histogram's convention: the
/// smallest recorded value such that at least `ceil(q*n)` observations
/// are <= it.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

fn check_distribution(name: &str, samples: &[u64]) {
    let bins = HistogramBins::new();
    for &v in samples {
        bins.record(v);
    }
    let snap = bins.snapshot();
    assert_eq!(snap.count(), samples.len() as u64, "{name}: count");
    assert_eq!(snap.sum(), samples.iter().sum::<u64>(), "{name}: sum");

    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    assert_eq!(snap.max(), *sorted.last().unwrap(), "{name}: max is exact");

    for q in QUANTILES {
        let exact = exact_quantile(&sorted, q);
        let est = snap.quantile(q);
        assert!(
            est >= exact,
            "{name}: p{q} under-reports: est {est} < exact {exact}"
        );
        assert!(
            est <= exact + exact / 16 + 1,
            "{name}: p{q} outside bucket error bound: est {est}, exact {exact}"
        );
    }
}

#[test]
fn quantiles_match_exact_order_statistics_uniform() {
    let mut rng = Prng::seed_from_u64(11);
    let samples: Vec<u64> = (0..50_000).map(|_| rng.random_range(0u64..2_000_000)).collect();
    check_distribution("uniform", &samples);
}

#[test]
fn quantiles_match_exact_order_statistics_exponentialish() {
    // Heavy tail: latency-shaped. 2^(0..=20) scaled by a uniform factor.
    let mut rng = Prng::seed_from_u64(23);
    let samples: Vec<u64> = (0..50_000)
        .map(|_| {
            let magnitude = rng.random_range(0u32..21);
            let base = 1u64 << magnitude;
            base + rng.random_range(0u64..base.max(1))
        })
        .collect();
    check_distribution("exponential-ish", &samples);
}

#[test]
fn quantiles_match_exact_order_statistics_bimodal() {
    // Fast path around ~100, slow path around ~1M — the shape a serve
    // latency histogram sees when some requests hit the SAT core.
    let mut rng = Prng::seed_from_u64(47);
    let samples: Vec<u64> = (0..50_000)
        .map(|_| {
            if rng.random_bool(0.8) {
                rng.random_range(50u64..200)
            } else {
                rng.random_range(800_000u64..1_500_000)
            }
        })
        .collect();
    check_distribution("bimodal", &samples);
}

#[test]
fn concurrent_recording_loses_nothing() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let bins = Arc::new(HistogramBins::new());
    thread::scope(|scope| {
        for t in 0..THREADS {
            let bins = Arc::clone(&bins);
            scope.spawn(move || {
                let mut rng = Prng::seed_from_u64(t);
                for _ in 0..PER_THREAD {
                    bins.record(rng.random_range(0u64..1_000_000));
                }
            });
        }
    });
    let snap = bins.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
    // Bucket totals must agree with the count: no torn or dropped updates.
    let bucket_total: u64 = snap.nonzero_buckets().iter().map(|(_, _, n)| n).sum();
    assert_eq!(bucket_total, THREADS * PER_THREAD);
}

#[test]
fn merge_is_associative_and_commutative() {
    let mut rng = Prng::seed_from_u64(5);
    let parts: Vec<HistogramSnapshot> = (0..3)
        .map(|_| {
            let bins = HistogramBins::new();
            for _ in 0..5_000 {
                bins.record(rng.random_range(0u64..3_000_000));
            }
            bins.snapshot()
        })
        .collect();
    let (a, b, c) = (&parts[0], &parts[1], &parts[2]);

    // (a ⊕ b) ⊕ c
    let mut left = a.clone();
    left.merge(b);
    left.merge(c);
    // a ⊕ (b ⊕ c)
    let mut bc = b.clone();
    bc.merge(c);
    let mut right = a.clone();
    right.merge(&bc);
    // c ⊕ b ⊕ a
    let mut rev = c.clone();
    rev.merge(b);
    rev.merge(a);

    for m in [&right, &rev] {
        assert_eq!(left.count(), m.count());
        assert_eq!(left.sum(), m.sum());
        assert_eq!(left.max(), m.max());
        assert_eq!(left.nonzero_buckets(), m.nonzero_buckets());
        for q in QUANTILES {
            assert_eq!(left.quantile(q), m.quantile(q));
        }
    }
    assert_eq!(
        left.count(),
        a.count() + b.count() + c.count(),
        "merge accumulates counts"
    );
}
