//! Lock-free log-linear histograms and rolling-window aggregation.
//!
//! A [`HistogramBins`] is a fixed array of atomic buckets laid out in the
//! HDR style: values below 16 are counted exactly, and every power-of-two
//! octave above that is split into 16 linear sub-buckets, bounding the
//! relative quantile error at 1/16 (~6.25 %). Recording is a handful of
//! relaxed atomic RMWs — no locks, no allocation — so it is safe on the
//! hottest serve/solver paths. A [`Histogram`] wraps a set of bins behind
//! the same `static`-declaration / lazy-registration pattern as
//! [`Counter`](crate::Counter); a [`RollingWindow`] keeps several bins
//! rotating over time so a scraper can ask for "the last N seconds".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Linear sub-buckets per power-of-two octave. 16 bounds the relative
/// error of a reported quantile at 1/16 of the true value.
const SUB_BUCKETS: u64 = 16;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 4;
/// Bucket count: 16 exact low values plus 60 octaves × 16 sub-buckets
/// covering the rest of the `u64` range.
pub const NUM_BUCKETS: usize = 976;

/// Maps a value to its bucket index. Total order preserving: a larger
/// value never lands in a smaller bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let h = 63 - v.leading_zeros(); // highest set bit, >= SUB_BITS
    let shift = h - SUB_BITS;
    ((h - SUB_BITS + 1) as u64 * SUB_BUCKETS + (v >> shift) - SUB_BUCKETS) as usize
}

/// The smallest value that maps to bucket `i`.
#[inline]
fn bucket_lower(i: usize) -> u64 {
    let i = i as u64;
    if i < 2 * SUB_BUCKETS {
        return i;
    }
    (SUB_BUCKETS + i % SUB_BUCKETS) << (i / SUB_BUCKETS - 1)
}

/// The largest value that maps to bucket `i`.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        return u64::MAX;
    }
    bucket_lower(i + 1) - 1
}

/// A fixed-size set of atomic histogram buckets.
///
/// This is the always-on recording surface: unlike [`Histogram`] it is not
/// gated on [`enabled`](crate::enabled), so a server can feed its latency
/// distribution regardless of whether tracing is installed. `record` is
/// wait-free (relaxed atomic adds plus a `fetch_max`) and never allocates.
pub struct HistogramBins {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramBins {
    /// An empty set of bins. `const`, so usable in `static` position.
    pub const fn new() -> HistogramBins {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        HistogramBins {
            buckets: [ZERO; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Wait-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets every bucket to zero. Concurrent `record` calls may be
    /// partially lost around a reset; acceptable for monitoring use.
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// A point-in-time plain copy of the bins. Concurrent recording makes
    /// the copy approximate (bucket totals may straddle in-flight
    /// updates), never torn per bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Adds every bucket of `self` into `snap`.
    fn merge_into(&self, snap: &mut HistogramSnapshot) {
        for (dst, src) in snap.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst += src.load(Ordering::Relaxed);
        }
        snap.count += self.count.load(Ordering::Relaxed);
        snap.sum += self.sum.load(Ordering::Relaxed);
        snap.max = snap.max.max(self.max.load(Ordering::Relaxed));
    }
}

impl Default for HistogramBins {
    fn default() -> HistogramBins {
        HistogramBins::new()
    }
}

/// A plain (non-atomic) copy of histogram state: quantiles, merging and
/// rendering happen here, off the hot path.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The largest recorded observation (exact).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The mean of recorded observations, 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the containing
    /// bucket's upper bound (capped at the exact max), so the estimate
    /// never under-reports and over-reports by at most 1/16 of the true
    /// value. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges `other` into `self` bucket-wise. Associative and
    /// commutative: merge order never changes any reported quantile.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, inclusive_upper_bound, count)`
    /// triples in increasing value order — the raw material for
    /// Prometheus-style cumulative bucket exposition.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lower(i), bucket_upper(i), n))
            .collect()
    }
}

/// A named histogram declared as a `static`, mirroring
/// [`Counter`](crate::Counter): the first `record` while tracing is
/// enabled registers it (one short-lived lock), after which every record
/// is a few relaxed atomic RMWs. While tracing is disabled, `record`
/// returns after one relaxed atomic load.
///
/// ```
/// static LATENCY: sufsat_obs::Histogram = sufsat_obs::Histogram::new("serve.latency_us");
/// LATENCY.record(1234); // no-op unless tracing is enabled
/// ```
pub struct Histogram {
    name: &'static str,
    slot: OnceLock<Arc<HistogramBins>>,
}

impl Histogram {
    /// Declares a histogram. Registration is deferred to the first record
    /// with tracing enabled.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Records one observation. A no-op (one atomic load) while tracing
    /// is disabled; allocation-free once registered.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.slot
            .get_or_init(|| crate::metrics::register_histogram(self.name))
            .record(v);
    }

    /// A snapshot of the current state (empty if never registered).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.slot
            .get()
            .map_or_else(HistogramSnapshot::empty, |bins| bins.snapshot())
    }
}

/// How many time slots a [`RollingWindow`] rotates through.
const WINDOW_SLOTS: usize = 6;

/// A time-windowed histogram: recent observations only, so a dashboard
/// can show "p99 over the last minute" instead of since-process-start.
///
/// The window is divided into [`WINDOW_SLOTS`] equal slots, each backed by
/// its own [`HistogramBins`] and stamped with the slot number it currently
/// holds. Recording writes to the current slot, lazily reclaiming it (one
/// short mutex section per slot period, not per record) when the stamp is
/// stale; a snapshot merges every slot still inside the window. The
/// effective span of a snapshot therefore varies between
/// `window - window/SLOTS` and `window`.
pub struct RollingWindow {
    slots: Box<[WindowSlot]>,
    slot_millis: u64,
    epoch: Instant,
    rotate: Mutex<()>,
}

struct WindowSlot {
    id: AtomicU64,
    bins: HistogramBins,
}

impl RollingWindow {
    /// A window covering roughly `window` of recent time. Sub-second
    /// windows are rounded up so each slot spans at least 1 ms.
    pub fn new(window: Duration) -> RollingWindow {
        let slot_millis = (window.as_millis() as u64 / WINDOW_SLOTS as u64).max(1);
        let slots = (0..WINDOW_SLOTS)
            .map(|_| WindowSlot {
                // u64::MAX marks "never used": no real slot number matches.
                id: AtomicU64::new(u64::MAX),
                bins: HistogramBins::new(),
            })
            .collect();
        RollingWindow {
            slots,
            slot_millis,
            epoch: Instant::now(),
            rotate: Mutex::new(()),
        }
    }

    /// Records one observation at the current time.
    pub fn record(&self, v: u64) {
        self.record_at(v, self.epoch.elapsed());
    }

    /// Records one observation at an explicit offset from the window's
    /// creation. Exposed so tests can drive rotation deterministically.
    pub fn record_at(&self, v: u64, elapsed: Duration) {
        let slot_no = elapsed.as_millis() as u64 / self.slot_millis;
        let slot = &self.slots[(slot_no % WINDOW_SLOTS as u64) as usize];
        if slot.id.load(Ordering::Acquire) != slot_no {
            let _guard = self.rotate.lock().unwrap_or_else(|e| e.into_inner());
            if slot.id.load(Ordering::Acquire) != slot_no {
                slot.bins.clear();
                slot.id.store(slot_no, Ordering::Release);
            }
        }
        slot.bins.record(v);
    }

    /// Merged snapshot of every slot still inside the window.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.snapshot_at(self.epoch.elapsed())
    }

    /// Merged snapshot at an explicit offset from the window's creation.
    pub fn snapshot_at(&self, elapsed: Duration) -> HistogramSnapshot {
        let now_slot = elapsed.as_millis() as u64 / self.slot_millis;
        let oldest = now_slot.saturating_sub(WINDOW_SLOTS as u64 - 1);
        let mut snap = HistogramSnapshot::empty();
        for slot in self.slots.iter() {
            let id = slot.id.load(Ordering::Acquire);
            if id != u64::MAX && id >= oldest && id <= now_slot {
                slot.bins.merge_into(&mut snap);
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_round_trips() {
        let mut prev = 0usize;
        let probes: Vec<u64> = (0..2048)
            .chain((11..63).flat_map(|h| {
                let base = 1u64 << h;
                [base - 1, base, base + base / 3, base + base / 2]
            }))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        for v in probes {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            assert!(i >= prev || v < bucket_lower(prev), "non-monotone at {v}");
            assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
            assert!(v <= bucket_upper(i), "upper({i}) < {v}");
            prev = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_tile_the_range() {
        for i in 1..NUM_BUCKETS {
            assert_eq!(
                bucket_upper(i - 1),
                bucket_lower(i) - 1,
                "gap between buckets {} and {}",
                i - 1,
                i
            );
            assert_eq!(bucket_index(bucket_lower(i)), i);
            assert_eq!(bucket_index(bucket_upper(i)), i);
        }
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_on_small_exact_values() {
        let bins = HistogramBins::new();
        for v in 0..10u64 {
            bins.record(v);
        }
        let snap = bins.snapshot();
        assert_eq!(snap.count(), 10);
        assert_eq!(snap.sum(), 45);
        assert_eq!(snap.max(), 9);
        // Values < 16 live in exact buckets: quantiles are exact.
        assert_eq!(snap.quantile(0.0), 0);
        assert_eq!(snap.quantile(0.5), 4);
        assert_eq!(snap.quantile(1.0), 9);
    }

    #[test]
    fn rolling_window_expires_old_slots() {
        let w = RollingWindow::new(Duration::from_millis(600)); // 100 ms slots
        let at = Duration::from_millis;
        w.record_at(5, at(0));
        w.record_at(7, at(50));
        assert_eq!(w.snapshot_at(at(60)).count(), 2);
        // 650 ms later the slot-0 observations have aged out.
        w.record_at(9, at(650));
        let snap = w.snapshot_at(at(660));
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.max(), 9);
        // A slot number that wraps onto the same backing slot reclaims it,
        // dropping the expired observation recorded at 650 ms.
        w.record_at(11, at(1250));
        let snap = w.snapshot_at(at(1250));
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.max(), 11);
    }
}
