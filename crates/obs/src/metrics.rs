//! Named atomic counters and gauges.
//!
//! A [`Counter`] or [`Gauge`] is declared as a `static` at the use site;
//! the first update while tracing is enabled registers it in the global
//! registry (one short-lived lock, once per site), after which every
//! update is a single relaxed atomic RMW. While tracing is disabled,
//! updates return after one relaxed atomic load — no lock, no allocation,
//! no registration.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::HistogramBins;

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramBins>),
}

static REGISTRY: Mutex<Vec<(&'static str, Metric)>> = Mutex::new(Vec::new());

fn register_counter(name: &'static str) -> Arc<AtomicU64> {
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for (existing, metric) in registry.iter() {
        if *existing == name {
            if let Metric::Counter(cell) = metric {
                return Arc::clone(cell);
            }
        }
    }
    let cell = Arc::new(AtomicU64::new(0));
    registry.push((name, Metric::Counter(Arc::clone(&cell))));
    cell
}

fn register_gauge(name: &'static str) -> Arc<AtomicI64> {
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for (existing, metric) in registry.iter() {
        if *existing == name {
            if let Metric::Gauge(cell) = metric {
                return Arc::clone(cell);
            }
        }
    }
    let cell = Arc::new(AtomicI64::new(0));
    registry.push((name, Metric::Gauge(Arc::clone(&cell))));
    cell
}

pub(crate) fn register_histogram(name: &'static str) -> Arc<HistogramBins> {
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for (existing, metric) in registry.iter() {
        if *existing == name {
            if let Metric::Histogram(cell) = metric {
                return Arc::clone(cell);
            }
        }
    }
    let cell = Arc::new(HistogramBins::new());
    registry.push((name, Metric::Histogram(Arc::clone(&cell))));
    cell
}

/// A monotonically increasing named counter.
///
/// ```
/// static CONFLICTS: sufsat_obs::Counter = sufsat_obs::Counter::new("sat.conflicts");
/// CONFLICTS.add(3); // no-op unless tracing is enabled
/// ```
pub struct Counter {
    name: &'static str,
    slot: OnceLock<Arc<AtomicU64>>,
}

impl Counter {
    /// Declares a counter. Registration is deferred to the first update
    /// with tracing enabled.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Adds `delta`. A no-op (one atomic load) while tracing is disabled.
    pub fn add(&self, delta: u64) {
        if !crate::enabled() {
            return;
        }
        self.slot
            .get_or_init(|| register_counter(self.name))
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value (0 if never registered).
    pub fn value(&self) -> u64 {
        self.slot
            .get()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A named gauge holding the last value set.
pub struct Gauge {
    name: &'static str,
    slot: OnceLock<Arc<AtomicI64>>,
}

impl Gauge {
    /// Declares a gauge. Registration is deferred to the first update with
    /// tracing enabled.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            slot: OnceLock::new(),
        }
    }

    /// Sets the gauge. A no-op (one atomic load) while tracing is disabled.
    pub fn set(&self, value: i64) {
        if !crate::enabled() {
            return;
        }
        self.slot
            .get_or_init(|| register_gauge(self.name))
            .store(value, Ordering::Relaxed);
    }

    /// The current value (0 if never registered).
    pub fn value(&self) -> i64 {
        self.slot
            .get()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Adds `delta` to the counter named `name` (dynamic-name variant: takes
/// the registry lock on every call, so prefer a `static` [`Counter`] on
/// hot paths). A no-op while tracing is disabled.
pub fn counter_add(name: &'static str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    register_counter(name).fetch_add(delta, Ordering::Relaxed);
}

/// A point-in-time copy of every registered metric, sorted by name.
/// Gauges are reported alongside counters with their `i64` value widened.
/// A histogram contributes derived entries: `<name>.count`, `<name>.p50`,
/// `<name>.p95`, `<name>.p99` and `<name>.max`.
pub fn metrics_snapshot() -> Vec<(String, i64)> {
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<(String, i64)> = Vec::with_capacity(registry.len());
    for (name, metric) in registry.iter() {
        match metric {
            Metric::Counter(c) => out.push(((*name).to_owned(), c.load(Ordering::Relaxed) as i64)),
            Metric::Gauge(g) => out.push(((*name).to_owned(), g.load(Ordering::Relaxed))),
            Metric::Histogram(h) => {
                let snap = h.snapshot();
                out.push((format!("{name}.count"), snap.count() as i64));
                out.push((format!("{name}.p50"), snap.quantile(0.50) as i64));
                out.push((format!("{name}.p95"), snap.quantile(0.95) as i64));
                out.push((format!("{name}.p99"), snap.quantile(0.99) as i64));
                out.push((format!("{name}.max"), snap.max() as i64));
            }
        }
    }
    out.sort();
    out
}

/// Emits one `counter` record per registered metric to the active sink.
/// Typically called right before [`shutdown`](crate::shutdown) so traces
/// end with a metrics summary.
pub fn emit_counter_records() {
    if !crate::enabled() {
        return;
    }
    for (name, value) in metrics_snapshot() {
        crate::counter_record(&name, value);
    }
}
