//! The record model shared by every sink: one trace is a sequence of
//! [`Record`]s, each a span boundary, a point event, or a counter dump.

use std::fmt;

/// What a [`Record`] describes.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum Kind {
    /// A span started; `span` is its fresh id, `parent` the enclosing span.
    SpanOpen,
    /// A span finished; `dur_us` carries its wall-clock duration.
    SpanClose,
    /// A point-in-time event inside the current span (`span` = enclosing).
    Event,
    /// A named counter's value at dump time (see
    /// [`emit_counter_records`](crate::emit_counter_records)).
    Counter,
}

impl Kind {
    /// The wire name used in JSON-lines output.
    pub fn label(self) -> &'static str {
        match self {
            Kind::SpanOpen => "span_open",
            Kind::SpanClose => "span_close",
            Kind::Event => "event",
            Kind::Counter => "counter",
        }
    }

    /// Parses a wire name back into a kind.
    pub fn from_label(s: &str) -> Option<Kind> {
        Some(match s {
            "span_open" => Kind::SpanOpen,
            "span_close" => Kind::SpanClose,
            "event" => Kind::Event,
            "counter" => Kind::Counter,
            _ => return None,
        })
    }
}

/// A borrowed field value. Construction never allocates, so building a
/// field slice on the stack is free enough for hot paths that are guarded
/// by [`enabled`](crate::enabled) anyway.
#[derive(Debug, Copy, Clone, PartialEq)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Borrowed string.
    Str(&'a str),
}

impl fmt::Display for Value<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$ty> for Value<'_> {
            fn from(v: $ty) -> Self {
                Value::$variant(v as $conv)
            }
        })*
    };
}

value_from!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    u16 => U64 as u64,
    u8 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}

impl<'a> From<&'a String> for Value<'a> {
    fn from(v: &'a String) -> Self {
        Value::Str(v.as_str())
    }
}

/// One trace record, borrowed from the emitting call site. Sinks that need
/// to retain records past the call must render or copy them.
#[derive(Debug, Clone)]
pub struct Record<'a> {
    /// Microseconds since the trace epoch (the first record).
    pub ts_us: u64,
    /// Record kind.
    pub kind: Kind,
    /// Span, event, or counter name (dotted lower-case, e.g. `sat.solve`).
    pub name: &'a str,
    /// The record's span id: the span itself for open/close records, the
    /// enclosing span for events (0 = no enclosing span).
    pub span: u64,
    /// Parent span id for open/close records (0 = top level).
    pub parent: u64,
    /// Id of the emitting thread (small integers assigned in first-use
    /// order, not OS thread ids).
    pub thread: u64,
    /// Wall-clock duration, present on `SpanClose` records.
    pub dur_us: Option<u64>,
    /// Additional key/value payload.
    pub fields: &'a [(&'a str, Value<'a>)],
}
