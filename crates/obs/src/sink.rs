//! Pluggable trace sinks.
//!
//! A [`Sink`] receives every [`Record`] emitted while tracing is enabled.
//! The built-in sinks cover the three needs of the pipeline: human-readable
//! text for interactive debugging ([`TextSink`]), machine-readable
//! JSON-lines for the `report`/`check-trace` tools ([`JsonLinesSink`]),
//! and an in-memory ring buffer for tests and post-mortem capture
//! ([`RingSink`]). [`TeeSink`] fans one stream out to several sinks.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::json;
use crate::record::{Kind, Record};

/// Receives trace records. Implementations must be thread-safe: records
/// arrive concurrently from every instrumented thread.
pub trait Sink: Send + Sync {
    /// Handles one record. Borrowed data is only valid for the call.
    fn record(&self, record: &Record<'_>);
    /// Flushes any buffered output (end of run, or on demand).
    fn flush(&self) {}
}

/// Discards everything. Installing it is equivalent to disabled tracing
/// except that `enabled()` stays true; exists mostly for benchmarks that
/// want to measure instrumentation overhead in isolation.
#[derive(Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _record: &Record<'_>) {}
}

/// Renders `record` as one JSON-lines object (no trailing newline).
///
/// Wire schema (validated by `paper-eval check-trace`):
/// every record has `ts`, `kind`, `name` and `thread`; span records add
/// `span`/`parent`, close records add `dur_us`, counter records add
/// `value`, and non-empty payloads ride in a nested `fields` object.
pub fn render_json(record: &Record<'_>) -> String {
    let mut line = String::with_capacity(96);
    line.push_str("{\"ts\":");
    let _ = write!(line, "{}", record.ts_us);
    line.push_str(",\"kind\":\"");
    line.push_str(record.kind.label());
    line.push_str("\",\"name\":");
    json::escape_into(&mut line, record.name);
    let _ = write!(line, ",\"thread\":{}", record.thread);
    match record.kind {
        Kind::SpanOpen | Kind::SpanClose => {
            let _ = write!(line, ",\"span\":{},\"parent\":{}", record.span, record.parent);
        }
        Kind::Event => {
            if record.span != 0 {
                let _ = write!(line, ",\"span\":{}", record.span);
            }
        }
        Kind::Counter => {}
    }
    if let Some(dur) = record.dur_us {
        let _ = write!(line, ",\"dur_us\":{dur}");
    }
    if !record.fields.is_empty() {
        line.push_str(",\"fields\":{");
        for (i, (key, value)) in record.fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            json::escape_into(&mut line, key);
            line.push(':');
            json::value_into(&mut line, value);
        }
        line.push('}');
    }
    line.push('}');
    line
}

/// Renders `record` as one human-readable line.
pub fn render_text(record: &Record<'_>) -> String {
    let mut line = String::with_capacity(96);
    let _ = write!(line, "[{:>10.3}ms] ", record.ts_us as f64 / 1000.0);
    match record.kind {
        Kind::SpanOpen => {
            let _ = write!(line, "open  #{:<4} {}", record.span, record.name);
        }
        Kind::SpanClose => {
            let _ = write!(
                line,
                "close #{:<4} {} ({:.3}ms)",
                record.span,
                record.name,
                record.dur_us.unwrap_or(0) as f64 / 1000.0
            );
        }
        Kind::Event => {
            let _ = write!(line, "event       {}", record.name);
        }
        Kind::Counter => {
            let _ = write!(line, "counter     {}", record.name);
        }
    }
    for (key, value) in record.fields {
        let _ = write!(line, " {key}={value}");
    }
    line
}

enum Target {
    Stderr,
    File(BufWriter<File>),
}

impl Target {
    fn write_line(&mut self, line: &str) {
        let result = match self {
            Target::Stderr => {
                let stderr = io::stderr();
                let mut handle = stderr.lock();
                handle
                    .write_all(line.as_bytes())
                    .and_then(|()| handle.write_all(b"\n"))
            }
            Target::File(w) => w
                .write_all(line.as_bytes())
                .and_then(|()| w.write_all(b"\n")),
        };
        // A broken trace file must not take the decision procedure down.
        let _ = result;
    }

    fn flush(&mut self) {
        let _ = match self {
            Target::Stderr => io::stderr().flush(),
            Target::File(w) => w.flush(),
        };
    }
}

/// JSON-lines sink writing to a file or stderr.
pub struct JsonLinesSink {
    target: Mutex<Target>,
}

impl JsonLinesSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonLinesSink> {
        let file = File::create(path)?;
        Ok(JsonLinesSink {
            target: Mutex::new(Target::File(BufWriter::new(file))),
        })
    }

    /// Writes JSON lines to stderr.
    pub fn stderr() -> JsonLinesSink {
        JsonLinesSink {
            target: Mutex::new(Target::Stderr),
        }
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, record: &Record<'_>) {
        let line = render_json(record);
        if let Ok(mut target) = self.target.lock() {
            target.write_line(&line);
        }
    }

    fn flush(&self) {
        if let Ok(mut target) = self.target.lock() {
            target.flush();
        }
    }
}

/// Human-readable sink writing to a file or stderr.
pub struct TextSink {
    target: Mutex<Target>,
}

impl TextSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<TextSink> {
        let file = File::create(path)?;
        Ok(TextSink {
            target: Mutex::new(Target::File(BufWriter::new(file))),
        })
    }

    /// Writes text lines to stderr.
    pub fn stderr() -> TextSink {
        TextSink {
            target: Mutex::new(Target::Stderr),
        }
    }
}

impl Sink for TextSink {
    fn record(&self, record: &Record<'_>) {
        let line = render_text(record);
        if let Ok(mut target) = self.target.lock() {
            target.write_line(&line);
        }
    }

    fn flush(&self) {
        if let Ok(mut target) = self.target.lock() {
            target.flush();
        }
    }
}

/// Thread-safe bounded ring buffer of rendered JSON lines: keeps the most
/// recent `capacity` records in memory. Used by the test suite and handy
/// as a flight recorder around a failure.
pub struct RingSink {
    capacity: usize,
    lines: Mutex<VecDeque<String>>,
}

impl RingSink {
    /// A ring holding at most `capacity` records (clamped to ≥ 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            lines: Mutex::new(VecDeque::new()),
        }
    }

    /// The retained records, oldest first, as JSON lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .map(|l| l.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.lines.lock().map(|l| l.len()).unwrap_or(0)
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all retained records.
    pub fn clear(&self) {
        if let Ok(mut lines) = self.lines.lock() {
            lines.clear();
        }
    }
}

impl Sink for RingSink {
    fn record(&self, record: &Record<'_>) {
        let line = render_json(record);
        if let Ok(mut lines) = self.lines.lock() {
            if lines.len() == self.capacity {
                lines.pop_front();
            }
            lines.push_back(line);
        }
    }
}

/// Fans every record out to several sinks.
pub struct TeeSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl TeeSink {
    /// A tee over `sinks`, notified in order.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl Sink for TeeSink {
    fn record(&self, record: &Record<'_>) {
        for sink in &self.sinks {
            sink.record(record);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;

    fn sample<'a>(fields: &'a [(&'a str, Value<'a>)]) -> Record<'a> {
        Record {
            ts_us: 1500,
            kind: Kind::Event,
            name: "unit.test",
            span: 7,
            parent: 0,
            thread: 1,
            dur_us: None,
            fields,
        }
    }

    #[test]
    fn json_rendering_is_parseable() {
        let fields = [
            ("n", Value::U64(3)),
            ("label", Value::Str("a \"b\"")),
            ("x", Value::F64(0.25)),
            ("neg", Value::I64(-4)),
            ("flag", Value::Bool(true)),
        ];
        let line = render_json(&sample(&fields));
        let v = json::parse(&line).expect("round trips");
        assert_eq!(v.get("kind").and_then(json::Json::as_str), Some("event"));
        let f = v.get("fields").expect("fields");
        assert_eq!(f.get("label").and_then(json::Json::as_str), Some("a \"b\""));
        assert_eq!(f.get("neg").and_then(json::Json::as_f64), Some(-4.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let fields = [("nan", Value::F64(f64::NAN))];
        let line = render_json(&sample(&fields));
        let v = json::parse(&line).expect("parses");
        assert_eq!(v.get("fields").and_then(|f| f.get("nan")), Some(&json::Json::Null));
    }

    #[test]
    fn ring_caps_capacity() {
        let ring = RingSink::new(3);
        for i in 0..10u64 {
            let fields = [("i", Value::U64(i))];
            ring.record(&sample(&fields));
        }
        let lines = ring.lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"i\":7"));
        assert!(lines[2].contains("\"i\":9"));
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn text_rendering_mentions_fields() {
        let fields = [("mode", Value::Str("sd"))];
        let line = render_text(&sample(&fields));
        assert!(line.contains("unit.test"));
        assert!(line.contains("mode=sd"));
    }
}
