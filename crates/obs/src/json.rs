//! Hand-rolled JSON: an escaper for the JSON-lines sink and a minimal
//! recursive-descent parser for reading traces back (the `report` and
//! `check-trace` tools). Zero dependencies by design — tier-1 verification
//! must stay offline.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a field value as a JSON literal. Non-finite floats (which JSON
/// cannot represent) are emitted as `null`.
pub fn value_into(out: &mut String, v: &crate::Value<'_>) {
    match v {
        crate::Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        crate::Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        crate::Value::F64(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        crate::Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        crate::Value::Str(s) => escape_into(out, s),
    }
}

/// A parsed JSON value. Objects preserve key order; numbers are `f64`
/// (exact for the integers the tracer emits, which stay far below 2⁵³).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(src, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_owned());
    };
    match c {
        b'{' => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(src, bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                expect(bytes, pos, b':')?;
                let value = parse_value(src, bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(src, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        b'"' => parse_string(src, bytes, pos).map(Json::Str),
        b't' => keyword(bytes, pos, "true").map(|()| Json::Bool(true)),
        b'f' => keyword(bytes, pos, "false").map(|()| Json::Bool(false)),
        b'n' => keyword(bytes, pos, "null").map(|()| Json::Null),
        _ => parse_number(src, bytes, pos),
    }
}

fn keyword(bytes: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err("unterminated string".to_owned());
        };
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_owned());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = src
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        // Surrogate pairs are not emitted by our own sink;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Copy one UTF-8 scalar.
                let s = &src[*pos..];
                let ch = s.chars().next().ok_or("invalid utf-8 boundary")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    src[start..*pos]
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        let cases = ["plain", "with \"quotes\"", "tab\tnewline\n", "bs\\", "\u{1}"];
        for case in cases {
            let mut s = String::new();
            escape_into(&mut s, case);
            let parsed = parse(&s).expect("parses");
            assert_eq!(parsed, Json::Str(case.to_owned()), "{case:?}");
        }
    }

    #[test]
    fn parses_typical_record() {
        let line = r#"{"ts":12,"kind":"span_close","name":"sat.solve","span":3,"parent":1,"thread":2,"dur_us":4500,"fields":{"result":"unsat","conflicts":7,"ratio":0.5,"ok":true}}"#;
        let v = parse(line).expect("parses");
        assert_eq!(v.get("ts").and_then(Json::as_u64), Some(12));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("span_close"));
        assert_eq!(v.get("dur_us").and_then(Json::as_u64), Some(4500));
        let fields = v.get("fields").expect("fields");
        assert_eq!(fields.get("result").and_then(Json::as_str), Some("unsat"));
        assert_eq!(fields.get("conflicts").and_then(Json::as_u64), Some(7));
        assert_eq!(fields.get("ratio").and_then(Json::as_f64), Some(0.5));
        assert_eq!(fields.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn arrays_and_negatives() {
        let v = parse("[1, -2, 3.5, null]").expect("parses");
        let Json::Arr(items) = v else { panic!("array") };
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(-2.0));
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(items[3], Json::Null);
    }
}
