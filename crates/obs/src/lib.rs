//! `sufsat-obs` — zero-dependency structured tracing and metrics for the
//! whole decision pipeline.
//!
//! The paper's entire evaluation is an observability exercise: per-run CNF
//! clause counts, conflict-clause counts, encode-vs-SAT time splits, and
//! the separation-predicate counts that drive `SEP_THOLD` selection. This
//! crate gives every layer a single cheap way to report those quantities:
//!
//! * **Hierarchical spans** with wall-clock timing ([`span`]) — one per
//!   pipeline stage (`suf.eliminate`, `encode`, `sat.solve`,
//!   `core.decide`, `portfolio.lane`, …), nested via a per-thread stack.
//! * **Point events** with typed fields ([`event`] / [`event!`]) — class
//!   method decisions, solver results, portfolio wins, oracle verdicts.
//! * **Named atomic counters and gauges** ([`Counter`], [`Gauge`]) — e.g.
//!   cumulative SAT conflicts across a whole evaluation run.
//! * **Pluggable sinks** ([`Sink`]) — JSON-lines to a file or stderr,
//!   human-readable text, an in-memory ring buffer, or a tee of several.
//!
//! # The disabled fast path
//!
//! Tracing is **off by default** and every entry point begins with one
//! relaxed atomic load. While disabled, [`span`] returns an inert guard,
//! [`event`] returns immediately, and counters skip registration — no
//! allocation, no locks, no syscalls (asserted by the crate's
//! `disabled_fastpath` test under a counting allocator). The pipeline is
//! therefore instrumented unconditionally; the < 2 % overhead budget of a
//! disabled run is spent on predictable branch-not-taken checks.
//!
//! # Enabling
//!
//! Set `SUFSAT_TRACE=<path|stderr>` and call [`init_from_env`] (the
//! binaries all do), or [`install`] a sink programmatically. Call
//! [`shutdown`] before process exit to flush buffered output.
//!
//! ```
//! use std::sync::Arc;
//!
//! let ring = Arc::new(sufsat_obs::RingSink::new(256));
//! sufsat_obs::install(ring.clone());
//! {
//!     let _span = sufsat_obs::span("example.stage");
//!     sufsat_obs::event!("example.step", items = 3usize, ok = true);
//! }
//! sufsat_obs::shutdown();
//! assert_eq!(ring.lines().len(), 3); // open, event, close
//! ```

#![warn(missing_docs)]

mod histogram;
pub mod json;
mod metrics;
mod record;
mod sink;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

pub use histogram::{Histogram, HistogramBins, HistogramSnapshot, RollingWindow, NUM_BUCKETS};
pub use metrics::{counter_add, emit_counter_records, metrics_snapshot, Counter, Gauge};
pub use record::{Kind, Record, Value};
pub use sink::{render_json, render_text, JsonLinesSink, NoopSink, RingSink, Sink, TeeSink, TextSink};

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Whether tracing is enabled. One relaxed atomic load — the guard every
/// instrumentation site checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the active sink and enables tracing. The trace epoch
/// (timestamp zero) is fixed by the first install of the process.
pub fn install(sink: Arc<dyn Sink>) {
    let _ = EPOCH.set(Instant::now());
    if let Ok(mut slot) = SINK.write() {
        *slot = Some(sink);
    }
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables tracing, flushes and removes the active sink. Spans still open
/// keep their guards; their close records are dropped, so call this only
/// once per-run instrumentation has unwound.
pub fn shutdown() {
    ENABLED.store(false, Ordering::SeqCst);
    let sink = SINK.write().ok().and_then(|mut slot| slot.take());
    if let Some(sink) = sink {
        sink.flush();
    }
}

/// Flushes the active sink without disabling tracing.
pub fn flush() {
    if let Some(sink) = sink_handle() {
        sink.flush();
    }
}

/// Installs a JSON-lines sink according to `SUFSAT_TRACE`:
/// `stderr` (or `-`) traces to stderr, any other non-empty value is
/// treated as a file path (created/truncated). Returns whether tracing
/// was enabled. Unset or empty leaves tracing disabled.
pub fn init_from_env() -> bool {
    match std::env::var("SUFSAT_TRACE") {
        Ok(value) if !value.is_empty() => init_to(&value).is_ok(),
        _ => false,
    }
}

/// Installs a JSON-lines sink writing to `target` (`stderr`/`-` or a file
/// path). Used by the binaries' `--trace` flags.
pub fn init_to(target: &str) -> std::io::Result<()> {
    let sink: Arc<dyn Sink> = if target == "stderr" || target == "-" {
        Arc::new(JsonLinesSink::stderr())
    } else {
        Arc::new(JsonLinesSink::create(target)?)
    };
    install(sink);
    Ok(())
}

fn sink_handle() -> Option<Arc<dyn Sink>> {
    SINK.read().ok()?.as_ref().map(Arc::clone)
}

fn now_us() -> u64 {
    EPOCH
        .get()
        .map_or(0, |epoch| epoch.elapsed().as_micros() as u64)
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

fn emit(record: &Record<'_>) {
    if let Some(sink) = sink_handle() {
        sink.record(record);
    }
}

/// A span guard: emits `span_close` with the wall-clock duration when
/// dropped. Inert (field-free, allocation-free) when tracing was disabled
/// at open time.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }

    /// The span id (0 when not recording).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Defensive: pop to (and including) our own id, tolerating a
            // sibling guard leaked across an unwind.
            while let Some(top) = stack.pop() {
                if top == self.id {
                    break;
                }
            }
        });
        let record = Record {
            ts_us: now_us(),
            kind: Kind::SpanClose,
            name: self.name,
            span: self.id,
            parent: self.parent,
            thread: thread_id(),
            dur_us: Some(start.elapsed().as_micros() as u64),
            fields: &[],
        };
        emit(&record);
    }
}

/// Opens a span named `name` nested under the current thread's innermost
/// open span. Returns an inert guard when tracing is disabled.
pub fn span(name: &'static str) -> Span {
    span_with(name, &[])
}

/// Opens a span with fields attached to its `span_open` record.
pub fn span_with(name: &'static str, fields: &[(&str, Value<'_>)]) -> Span {
    if !enabled() {
        return Span {
            id: 0,
            parent: 0,
            name,
            start: None,
        };
    }
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    let record = Record {
        ts_us: now_us(),
        kind: Kind::SpanOpen,
        name,
        span: id,
        parent,
        thread: thread_id(),
        dur_us: None,
        fields,
    };
    emit(&record);
    Span {
        id,
        parent,
        name,
        start: Some(Instant::now()),
    }
}

/// Emits a point event inside the current thread's innermost open span.
/// Returns immediately when tracing is disabled.
pub fn event(name: &str, fields: &[(&str, Value<'_>)]) {
    if !enabled() {
        return;
    }
    let span = SPAN_STACK.with(|stack| stack.borrow().last().copied().unwrap_or(0));
    let record = Record {
        ts_us: now_us(),
        kind: Kind::Event,
        name,
        span,
        parent: 0,
        thread: thread_id(),
        dur_us: None,
        fields,
    };
    emit(&record);
}

/// Emits one `counter` record (used by [`emit_counter_records`]).
pub(crate) fn counter_record(name: &str, value: i64) {
    let fields = [("value", Value::I64(value))];
    let record = Record {
        ts_us: now_us(),
        kind: Kind::Counter,
        name,
        span: 0,
        parent: 0,
        thread: thread_id(),
        dur_us: None,
        fields: &fields,
    };
    emit(&record);
}

/// Emits an event with `key = value` field syntax. Values go through
/// [`Value::from`], so integers, floats, bools and `&str` all work:
///
/// ```
/// sufsat_obs::event!("encode.class", class = 0usize, method = "sd", bits = 4u32);
/// ```
///
/// Field expressions are evaluated before the enabled check, so keep them
/// to cheap borrows on hot paths (or guard with [`enabled`]).
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::event($name, &[$((stringify!($key), $crate::Value::from($value))),*])
    };
}

/// Opens a span with `key = value` fields (see [`event!`]).
#[macro_export]
macro_rules! span_with {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::span_with($name, &[$((stringify!($key), $crate::Value::from($value))),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global tracing state is process-wide, so every test that installs a
    // sink runs under this lock (the remaining obs tests live in separate
    // integration-test processes).
    static GLOBAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn spans_nest_and_balance() {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let ring = Arc::new(RingSink::new(64));
        install(ring.clone());
        {
            let outer = span("outer");
            assert!(outer.is_recording());
            {
                let _inner = span_with!("inner", depth = 2u64);
                event!("tick", n = 1u64);
            }
        }
        shutdown();
        let lines = ring.lines();
        assert_eq!(lines.len(), 5, "{lines:#?}");
        let parsed: Vec<json::Json> = lines
            .iter()
            .map(|l| json::parse(l).expect("valid json"))
            .collect();
        let kind = |i: usize| parsed[i].get("kind").and_then(json::Json::as_str).unwrap().to_owned();
        assert_eq!(kind(0), "span_open");
        assert_eq!(kind(1), "span_open");
        assert_eq!(kind(2), "event");
        assert_eq!(kind(3), "span_close");
        assert_eq!(kind(4), "span_close");
        // inner's parent is outer; the event is attributed to inner.
        let outer_id = parsed[0].get("span").and_then(json::Json::as_u64).unwrap();
        let inner_id = parsed[1].get("span").and_then(json::Json::as_u64).unwrap();
        assert_eq!(
            parsed[1].get("parent").and_then(json::Json::as_u64),
            Some(outer_id)
        );
        assert_eq!(
            parsed[2].get("span").and_then(json::Json::as_u64),
            Some(inner_id)
        );
        assert!(parsed[3].get("dur_us").and_then(json::Json::as_u64).is_some());
    }

    #[test]
    fn disabled_span_is_inert() {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        shutdown();
        let s = span("nobody.listens");
        assert!(!s.is_recording());
        assert_eq!(s.id(), 0);
        event!("dropped", n = 1u64);
        drop(s);
    }

    #[test]
    fn counters_register_lazily_and_accumulate() {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        static UNIT_TEST_COUNTER: Counter = Counter::new("obs.unit_test_counter");
        static UNIT_TEST_GAUGE: Gauge = Gauge::new("obs.unit_test_gauge");
        UNIT_TEST_COUNTER.add(100); // disabled: ignored
        assert_eq!(UNIT_TEST_COUNTER.value(), 0);
        let ring = Arc::new(RingSink::new(64));
        install(ring.clone());
        UNIT_TEST_COUNTER.add(2);
        UNIT_TEST_COUNTER.incr();
        UNIT_TEST_GAUGE.set(-5);
        counter_add("obs.unit_test_dynamic", 4);
        assert_eq!(UNIT_TEST_COUNTER.value(), 3);
        assert_eq!(UNIT_TEST_GAUGE.value(), -5);
        let snapshot = metrics_snapshot();
        let find = |name: &str| {
            snapshot
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(find("obs.unit_test_counter"), Some(3));
        assert_eq!(find("obs.unit_test_gauge"), Some(-5));
        assert_eq!(find("obs.unit_test_dynamic"), Some(4));
        emit_counter_records();
        shutdown();
        assert!(ring
            .lines()
            .iter()
            .any(|l| l.contains("obs.unit_test_counter") && l.contains("\"kind\":\"counter\"")));
    }

    #[test]
    fn init_to_rejects_bad_paths() {
        let _guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        shutdown();
        assert!(init_to("/nonexistent-dir-xyz/trace.jsonl").is_err());
        assert!(!enabled());
    }
}
