//! Equivalence classes, small-model domain sizes and SepCnt estimation
//! (paper §4, steps 1–3 of the hybrid method).

use std::collections::{HashMap, HashSet};

use sufsat_suf::{Term, TermId, TermManager, VarSym};

use crate::ground::{GroundInfo, GroundTerm};

/// The two atom kinds of separation logic.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// Equality `lhs = rhs`.
    Eq,
    /// Strict inequality `lhs < rhs`.
    Lt,
}

/// One atomic comparison occurring in a separation formula.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The atom's own term id.
    pub id: TermId,
    /// Equality or strict inequality.
    pub op: AtomOp,
    /// Left integer term.
    pub lhs: TermId,
    /// Right integer term.
    pub rhs: TermId,
}

/// Collects all `Eq`/`Lt` atoms reachable from `root`.
pub fn collect_atoms(tm: &TermManager, root: TermId) -> Vec<Atom> {
    let mut out = Vec::new();
    for id in tm.postorder(root) {
        match tm.term(id) {
            Term::Eq(a, b) => out.push(Atom {
                id,
                op: AtomOp::Eq,
                lhs: *a,
                rhs: *b,
            }),
            Term::Lt(a, b) => out.push(Atom {
                id,
                op: AtomOp::Lt,
                lhs: *a,
                rhs: *b,
            }),
            _ => {}
        }
    }
    out
}

/// A normalized separation predicate over two distinct `V_g` constants.
///
/// `Eq(a, b, c)` means `a = b + c` with `a < b` by symbol order;
/// `Le(a, b, c)` means `a - b <= c` (derived from strict `<` atoms).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PredKey {
    /// `a = b + c`, `a < b` canonically.
    Eq(VarSym, VarSym, i64),
    /// `a - b <= c`.
    Le(VarSym, VarSym, i64),
}

impl PredKey {
    /// Normalizes the equality `(v1 + k1) = (v2 + k2)`.
    ///
    /// Returns `None` if the two ground terms share the variable (the atom
    /// is then a constant, not a separation predicate).
    pub fn equality(g1: GroundTerm, g2: GroundTerm) -> Option<PredKey> {
        if g1.var == g2.var {
            return None;
        }
        let (a, b) = if g1.var < g2.var { (g1, g2) } else { (g2, g1) };
        // a.var + a.offset = b.var + b.offset  <=>  a.var = b.var + c
        Some(PredKey::Eq(a.var, b.var, b.offset - a.offset))
    }

    /// Normalizes the strict inequality `(v1 + k1) < (v2 + k2)` into the
    /// bound `v1 - v2 <= c`.
    pub fn less_than(g1: GroundTerm, g2: GroundTerm) -> Option<PredKey> {
        if g1.var == g2.var {
            return None;
        }
        Some(PredKey::Le(g1.var, g2.var, g2.offset - g1.offset - 1))
    }

    /// The pair of variables the predicate relates.
    pub fn vars(self) -> (VarSym, VarSym) {
        match self {
            PredKey::Eq(a, b, _) | PredKey::Le(a, b, _) => (a, b),
        }
    }
}

/// One equivalence class of `V_g` symbolic constants (paper §4 step 1).
#[derive(Debug, Clone)]
pub struct Class {
    /// Members, in symbol order.
    pub vars: Vec<VarSym>,
    /// Small-model range `Σ_{v∈class} (u(v) - l(v) + 1)` (paper step 2).
    pub range: u64,
    /// Upper bound on the number of separation predicates relating two
    /// members of this class (paper step 3).
    pub sep_cnt: usize,
    /// The distinct normalized predicates counted by `sep_cnt`.
    pub predicates: Vec<PredKey>,
}

/// Complete structural analysis of a separation formula: ground-term leaves,
/// variable classes, small-model domain sizes, and per-class SepCnt.
#[derive(Debug, Clone)]
pub struct SepAnalysis {
    /// Ground-term leaf sets.
    pub ground: GroundInfo,
    /// The atoms of the formula.
    pub atoms: Vec<Atom>,
    /// The equivalence classes over `V_g`.
    pub classes: Vec<Class>,
    /// Class index of each `V_g` constant.
    class_of: HashMap<VarSym, usize>,
    /// Maximum positive offset `u(v)` per constant.
    upper: HashMap<VarSym, i64>,
    /// Minimum offset `l(v)` per constant.
    lower: HashMap<VarSym, i64>,
    /// `V_p` constants appearing in the formula.
    pub p_vars: HashSet<VarSym>,
    /// Largest absolute offset appearing anywhere (for diversity spacing).
    pub max_abs_offset: i64,
}

impl SepAnalysis {
    /// Analyzes an application-free formula.
    ///
    /// `p_vars` is the `V_p` classification produced by
    /// [`eliminate`](sufsat_suf::eliminate).
    ///
    /// # Panics
    ///
    /// Panics if the formula still contains applications.
    pub fn new(tm: &TermManager, root: TermId, p_vars: &HashSet<VarSym>) -> SepAnalysis {
        let obs_span = sufsat_obs::span("seplog.analyze");
        let analysis = SepAnalysis::build(tm, root, p_vars);
        if obs_span.is_recording() {
            sufsat_obs::event!(
                "seplog.analysis",
                classes = analysis.classes.len(),
                sep_predicates = analysis.total_sep_predicates(),
                p_vars = analysis.p_vars.len(),
                max_range = analysis.classes.iter().map(|c| c.range).max().unwrap_or(0),
                total_range = analysis.classes.iter().map(|c| c.range).sum::<u64>(),
            );
        }
        analysis
    }

    fn build(tm: &TermManager, root: TermId, p_vars: &HashSet<VarSym>) -> SepAnalysis {
        let ground = GroundInfo::compute(tm, root);
        let atoms = collect_atoms(tm, root);

        // Gather every leaf to compute u/l and the variable universe.
        let mut upper: HashMap<VarSym, i64> = HashMap::new();
        let mut lower: HashMap<VarSym, i64> = HashMap::new();
        let mut max_abs_offset = 0i64;
        // u(v) is "the maximum amount v can be incremented" and l(v) the
        // minimum: the variable's own position (offset 0) is always part of
        // its span, so u >= 0 >= l.
        let mut note_leaf = |g: GroundTerm| {
            let u = upper.entry(g.var).or_insert(0);
            *u = (*u).max(g.offset);
            let l = lower.entry(g.var).or_insert(0);
            *l = (*l).min(g.offset);
            max_abs_offset = max_abs_offset.max(g.offset.abs());
        };
        for atom in &atoms {
            for &side in &[atom.lhs, atom.rhs] {
                for &g in ground.leaves(side) {
                    note_leaf(g);
                }
            }
        }

        // Union-find over V_g constants: all g-constants under one atom
        // share a class (this folds the paper's ITE dependency-set merging
        // together with the per-atom merging).
        let occurring: Vec<VarSym> = {
            let mut v: Vec<VarSym> = upper.keys().copied().collect();
            v.sort_unstable();
            v
        };
        let p_present: HashSet<VarSym> = occurring
            .iter()
            .copied()
            .filter(|v| p_vars.contains(v))
            .collect();
        let mut uf = UnionFind::new(tm.num_int_vars());
        for atom in &atoms {
            let mut first: Option<VarSym> = None;
            for &side in &[atom.lhs, atom.rhs] {
                for g in ground.leaves(side) {
                    if p_vars.contains(&g.var) {
                        continue;
                    }
                    match first {
                        None => first = Some(g.var),
                        Some(f) => uf.union(f.index(), g.var.index()),
                    }
                }
            }
        }

        // Build classes.
        let mut class_index: HashMap<usize, usize> = HashMap::new();
        let mut classes: Vec<Class> = Vec::new();
        let mut class_of: HashMap<VarSym, usize> = HashMap::new();
        for &v in &occurring {
            if p_vars.contains(&v) {
                continue;
            }
            let rep = uf.find(v.index());
            let idx = *class_index.entry(rep).or_insert_with(|| {
                classes.push(Class {
                    vars: Vec::new(),
                    range: 0,
                    sep_cnt: 0,
                    predicates: Vec::new(),
                });
                classes.len() - 1
            });
            classes[idx].vars.push(v);
            class_of.insert(v, idx);
        }
        for class in &mut classes {
            class.range = class
                .vars
                .iter()
                .map(|v| (upper[v] - lower[v] + 1) as u64)
                .sum();
        }

        // SepCnt: distinct normalized predicates per class, over all pairs
        // of ground leaves of each atom (an upper bound — pairs that vanish
        // after ITE elimination are still counted, as in the paper).
        let mut per_class_preds: Vec<HashSet<PredKey>> = vec![HashSet::new(); classes.len()];
        for atom in &atoms {
            for &g1 in ground.leaves(atom.lhs) {
                for &g2 in ground.leaves(atom.rhs) {
                    if p_vars.contains(&g1.var) || p_vars.contains(&g2.var) {
                        continue;
                    }
                    let key = match atom.op {
                        AtomOp::Eq => PredKey::equality(g1, g2),
                        AtomOp::Lt => PredKey::less_than(g1, g2),
                    };
                    if let Some(key) = key {
                        let idx = class_of[&key.vars().0];
                        debug_assert_eq!(idx, class_of[&key.vars().1]);
                        per_class_preds[idx].insert(key);
                    }
                }
            }
        }
        for (class, preds) in classes.iter_mut().zip(per_class_preds) {
            class.sep_cnt = preds.len();
            let mut sorted: Vec<PredKey> = preds.into_iter().collect();
            sorted.sort_unstable();
            class.predicates = sorted;
        }

        SepAnalysis {
            ground,
            atoms,
            classes,
            class_of,
            upper,
            lower,
            p_vars: p_present,
            max_abs_offset,
        }
    }

    /// Class index of a `V_g` constant, if it occurs in the formula.
    pub fn class_of(&self, v: VarSym) -> Option<usize> {
        self.class_of.get(&v).copied()
    }

    /// Maximum offset `u(v)` over ground terms mentioning `v`.
    pub fn upper_offset(&self, v: VarSym) -> Option<i64> {
        self.upper.get(&v).copied()
    }

    /// Minimum offset `l(v)` over ground terms mentioning `v`.
    pub fn lower_offset(&self, v: VarSym) -> Option<i64> {
        self.lower.get(&v).copied()
    }

    /// Total number of distinct separation predicates across all classes —
    /// the formula feature the paper's Figure 3 sweeps.
    pub fn total_sep_predicates(&self) -> usize {
        self.classes.iter().map(|c| c.sep_cnt).sum()
    }

    /// All `V_g` constants occurring in the formula, in symbol order.
    pub fn g_vars(&self) -> Vec<VarSym> {
        let mut v: Vec<VarSym> = self.class_of.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

/// Union-find with path compression and union by rank.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while cur != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use sufsat_suf::TermManager;

    fn no_p() -> HashSet<VarSym> {
        HashSet::new()
    }

    #[test]
    fn classes_split_unrelated_variables() {
        let mut tm = TermManager::new();
        let a = tm.int_var("a");
        let b = tm.int_var("b");
        let c = tm.int_var("c");
        let d = tm.int_var("d");
        let ab = tm.mk_lt(a, b);
        let cd = tm.mk_eq(c, d);
        let phi = tm.mk_and(ab, cd);
        let an = SepAnalysis::new(&tm, phi, &no_p());
        assert_eq!(an.classes.len(), 2);
        assert_eq!(
            an.class_of(tm.find_int_var("a").unwrap()),
            an.class_of(tm.find_int_var("b").unwrap())
        );
        assert_ne!(
            an.class_of(tm.find_int_var("a").unwrap()),
            an.class_of(tm.find_int_var("c").unwrap())
        );
    }

    #[test]
    fn ite_merges_branch_classes() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let cb = tm.bool_var("cb");
        let ite = tm.mk_ite_int(cb, y, z);
        let phi = tm.mk_eq(x, ite);
        let an = SepAnalysis::new(&tm, phi, &no_p());
        assert_eq!(an.classes.len(), 1);
        assert_eq!(an.classes[0].vars.len(), 3);
        let _ = (x, y, z);
    }

    #[test]
    fn domain_ranges_follow_the_paper_formula() {
        // Ground terms for v: {v-4, v-2, v, v+3, v+7} -> u=7, l=-4,
        // span 12; for w: {w} -> span 1. Same class via v < w.
        let mut tm = TermManager::new();
        let v = tm.int_var("v");
        let w = tm.int_var("w");
        let terms = [-4i64, -2, 0, 3, 7];
        let mut conj = Vec::new();
        for k in terms {
            let t = tm.mk_offset(v, k);
            conj.push(tm.mk_lt(t, w));
        }
        let phi = tm.mk_and_many(&conj);
        let an = SepAnalysis::new(&tm, phi, &no_p());
        let vs = tm.find_int_var("v").unwrap();
        assert_eq!(an.upper_offset(vs), Some(7));
        assert_eq!(an.lower_offset(vs), Some(-4));
        assert_eq!(an.classes.len(), 1);
        assert_eq!(an.classes[0].range, 12 + 1);
    }

    #[test]
    fn sep_cnt_counts_distinct_normalized_predicates() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        // x < y, y > x (same predicate after normalization? No: x < y is
        // x-y <= -1; y > x is the same atom because mk_gt desugars to
        // mk_lt(x, y)), and x < y+1 is a different bound.
        let a1 = tm.mk_lt(x, y);
        let a2 = tm.mk_gt(y, x); // identical atom
        let sy = tm.mk_succ(y);
        let a3 = tm.mk_lt(x, sy);
        let t12 = tm.mk_and(a1, a2);
        let phi = tm.mk_and(t12, a3);
        let an = SepAnalysis::new(&tm, phi, &no_p());
        assert_eq!(an.classes.len(), 1);
        assert_eq!(an.classes[0].sep_cnt, 2);
    }

    #[test]
    fn equalities_normalize_orientation() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        // x = y + 2 and y + 2 = x are the same predicate; x = y - 1 differs.
        let y2 = tm.mk_offset(y, 2);
        let a1 = tm.mk_eq(x, y2);
        let a2 = tm.mk_eq(y2, x);
        let ym1 = tm.mk_offset(y, -1);
        let a3 = tm.mk_eq(x, ym1);
        let t = tm.mk_and(a1, a2);
        let phi = tm.mk_and(t, a3);
        let an = SepAnalysis::new(&tm, phi, &no_p());
        assert_eq!(an.classes[0].sep_cnt, 2);
    }

    #[test]
    fn p_vars_do_not_join_classes_or_sepcnt() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let p = tm.int_var("p");
        let mut p_vars = HashSet::new();
        p_vars.insert(tm.find_int_var("p").unwrap());
        let a1 = tm.mk_eq(x, p); // p-mixed: constant under diversity
        let a2 = tm.mk_lt(x, y);
        let phi = tm.mk_and(a1, a2);
        let an = SepAnalysis::new(&tm, phi, &p_vars);
        assert_eq!(an.classes.len(), 1);
        assert_eq!(an.classes[0].vars.len(), 2);
        assert_eq!(an.classes[0].sep_cnt, 1);
        assert!(an.p_vars.contains(&tm.find_int_var("p").unwrap()));
    }

    #[test]
    fn ite_pairs_inflate_sepcnt_as_an_upper_bound() {
        // ITE(c, a, b) = d contributes pairs (a,d) and (b,d).
        let mut tm = TermManager::new();
        let a = tm.int_var("a");
        let b = tm.int_var("b");
        let d = tm.int_var("d");
        let cb = tm.bool_var("cb");
        let ite = tm.mk_ite_int(cb, a, b);
        let phi = tm.mk_eq(ite, d);
        let an = SepAnalysis::new(&tm, phi, &no_p());
        assert_eq!(an.classes[0].sep_cnt, 2);
        assert_eq!(an.total_sep_predicates(), 2);
    }

    #[test]
    fn same_var_comparisons_are_not_predicates() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let x1 = tm.mk_succ(x);
        let phi = tm.mk_lt(x, x1);
        let an = SepAnalysis::new(&tm, phi, &no_p());
        // x < x+1 involves a single variable: no separation predicate, and
        // x forms a singleton class.
        assert_eq!(an.total_sep_predicates(), 0);
        assert_eq!(an.classes.len(), 1);
    }
}
