//! Separation-logic analyses for the `sufsat` decision procedure.
//!
//! After `sufsat-suf` eliminates uninterpreted function and predicate
//! applications, formulas contain only symbolic constants, `succ`/`pred`,
//! integer ITEs, equalities, inequalities and Boolean connectives — the
//! paper's *separation logic*. This crate implements the structural
//! analyses of the hybrid method (paper §4, steps 1–4):
//!
//! * ground-term leaf computation and the explicit rewriting rules
//!   ([`GroundInfo`], [`push_offsets`]),
//! * equivalence classes of symbolic constants ([`SepAnalysis`]),
//! * small-model domain sizes per class (`range(Vᵢ) = Σ (u(v) − l(v) + 1)`),
//! * per-class separation-predicate counting (`SepCnt`),
//!
//! plus two semantic engines used across the workspace:
//!
//! * a difference-logic solver with negative-cycle explanations
//!   ([`solve_bounds`], [`solve_with_disequalities`]),
//! * a brute-force small-model validity oracle ([`brute_force_validity`]).

#![warn(missing_docs)]

mod analysis;
mod diff;
mod expand;
mod ground;
mod oracle;

pub use analysis::{collect_atoms, Atom, AtomOp, Class, PredKey, SepAnalysis};
pub use diff::{
    solve_bounds, solve_with_disequalities, solve_with_disequalities_budgeted, Bound,
    DiffResult, Disequality,
};
pub use expand::{atoms_are_ground, expand_ites, expand_ites_bounded};
pub use ground::{push_offsets, GroundInfo, GroundTerm};
pub use oracle::{brute_force_validity, OracleResult, SepAssignment};

#[cfg(test)]
mod prop_tests {
    use super::*;
    use std::collections::HashSet;
    use sufsat_prng::Prng;
    use sufsat_suf::{TermId, TermManager};

    /// Random application-free separation formulas from opcode recipes.
    pub(crate) fn build_random_sep(
        tm: &mut TermManager,
        recipe: &[(u8, u8, u8)],
        n_vars: usize,
    ) -> TermId {
        let vars: Vec<TermId> = (0..n_vars).map(|i| tm.int_var(&format!("x{i}"))).collect();
        let mut ints: Vec<TermId> = vars;
        let mut bools: Vec<TermId> = Vec::new();
        for &(op, i, j) in recipe {
            let (i, j) = (i as usize, j as usize);
            match op % 8 {
                0 => {
                    let a = ints[i % ints.len()];
                    let b = ints[j % ints.len()];
                    let t = tm.mk_eq(a, b);
                    bools.push(t);
                }
                1 => {
                    let a = ints[i % ints.len()];
                    let b = ints[j % ints.len()];
                    let t = tm.mk_lt(a, b);
                    bools.push(t);
                }
                2 if !bools.is_empty() => {
                    let a = bools[i % bools.len()];
                    let t = tm.mk_not(a);
                    bools.push(t);
                }
                3 if bools.len() >= 2 => {
                    let a = bools[i % bools.len()];
                    let b = bools[j % bools.len()];
                    let t = tm.mk_and(a, b);
                    bools.push(t);
                }
                4 if bools.len() >= 2 => {
                    let a = bools[i % bools.len()];
                    let b = bools[j % bools.len()];
                    let t = tm.mk_or(a, b);
                    bools.push(t);
                }
                5 => {
                    let a = ints[i % ints.len()];
                    let t = if j % 2 == 0 {
                        tm.mk_succ(a)
                    } else {
                        tm.mk_pred(a)
                    };
                    ints.push(t);
                }
                6 if !bools.is_empty() => {
                    let c = bools[i % bools.len()];
                    let a = ints[i % ints.len()];
                    let b = ints[j % ints.len()];
                    let t = tm.mk_ite_int(c, a, b);
                    ints.push(t);
                }
                _ => {
                    let a = ints[i % ints.len()];
                    let b = ints[j % ints.len()];
                    let sb = tm.mk_succ(b);
                    let t = tm.mk_lt(a, sb);
                    bools.push(t);
                }
            }
        }
        match bools.last() {
            Some(&t) => t,
            None => tm.mk_true(),
        }
    }

    pub(crate) fn random_recipe(rng: &mut Prng) -> Vec<(u8, u8, u8)> {
        let len = rng.random_range(2usize..20);
        (0..len)
            .map(|_| (rng.random_u8(), rng.random_u8(), rng.random_u8()))
            .collect()
    }

    /// The paper's small-model bound: enumerating within `range(Vᵢ)` is
    /// as complete as enumerating a strictly larger box.
    #[test]
    fn small_model_bound_is_empirically_tight() {
        let mut rng = Prng::seed_from_u64(0x5e9_0001);
        for _case in 0..48 {
            let recipe = random_recipe(&mut rng);
            let mut tm = TermManager::new();
            let phi = build_random_sep(&mut tm, &recipe, 3);
            let an = SepAnalysis::new(&tm, phi, &HashSet::new());
            let tight = brute_force_validity(&tm, phi, &an, 0, 400_000);
            let wide = brute_force_validity(&tm, phi, &an, 3, 4_000_000);
            if let (OracleResult::TooLarge, _) | (_, OracleResult::TooLarge) = (&tight, &wide) {
                continue;
            }
            assert_eq!(
                matches!(tight, OracleResult::Valid),
                matches!(wide, OracleResult::Valid),
                "recipe: {recipe:?}"
            );
        }
    }

    /// Counterexamples returned by the oracle really falsify the formula.
    #[test]
    fn oracle_counterexamples_check_out() {
        let mut rng = Prng::seed_from_u64(0x5e9_0002);
        for _case in 0..48 {
            let recipe = random_recipe(&mut rng);
            let mut tm = TermManager::new();
            let phi = build_random_sep(&mut tm, &recipe, 3);
            let an = SepAnalysis::new(&tm, phi, &HashSet::new());
            if let OracleResult::Invalid(cex) = brute_force_validity(&tm, phi, &an, 1, 400_000)
            {
                assert!(!cex.evaluate(&tm, phi), "recipe: {recipe:?}");
            }
        }
    }

    /// `push_offsets` rewriting preserves validity.
    #[test]
    fn rewriting_preserves_validity() {
        let mut rng = Prng::seed_from_u64(0x5e9_0003);
        for _case in 0..48 {
            let recipe = random_recipe(&mut rng);
            let mut tm = TermManager::new();
            let phi = build_random_sep(&mut tm, &recipe, 3);
            let rewritten = push_offsets(&mut tm, phi);
            let an1 = SepAnalysis::new(&tm, phi, &HashSet::new());
            let an2 = SepAnalysis::new(&tm, rewritten, &HashSet::new());
            let r1 = brute_force_validity(&tm, phi, &an1, 1, 400_000);
            let r2 = brute_force_validity(&tm, rewritten, &an2, 1, 400_000);
            match (r1, r2) {
                (OracleResult::TooLarge, _) | (_, OracleResult::TooLarge) => {}
                (a, b) => assert_eq!(
                    matches!(a, OracleResult::Valid),
                    matches!(b, OracleResult::Valid),
                    "recipe: {recipe:?}"
                ),
            }
        }
    }

    /// Atom-level ITE expansion preserves validity and really grounds
    /// every atom.
    #[test]
    fn ite_expansion_preserves_validity() {
        let mut rng = Prng::seed_from_u64(0x5e9_0004);
        for _case in 0..48 {
            let recipe = random_recipe(&mut rng);
            let mut tm = TermManager::new();
            let phi = build_random_sep(&mut tm, &recipe, 3);
            let expanded = expand_ites(&mut tm, phi);
            assert!(atoms_are_ground(&tm, expanded), "recipe: {recipe:?}");
            let an1 = SepAnalysis::new(&tm, phi, &HashSet::new());
            let an2 = SepAnalysis::new(&tm, expanded, &HashSet::new());
            let r1 = brute_force_validity(&tm, phi, &an1, 1, 300_000);
            let r2 = brute_force_validity(&tm, expanded, &an2, 1, 300_000);
            match (r1, r2) {
                (OracleResult::TooLarge, _) | (_, OracleResult::TooLarge) => {}
                (a, b) => assert_eq!(
                    matches!(a, OracleResult::Valid),
                    matches!(b, OracleResult::Valid),
                    "recipe: {recipe:?}"
                ),
            }
        }
    }

    /// Difference-logic models satisfy all their bounds.
    #[test]
    fn diff_models_satisfy_bounds() {
        let mut rng = Prng::seed_from_u64(0x5e9_0005);
        for _case in 0..48 {
            let n = rng.random_range(1usize..12);
            let raw: Vec<(u8, u8, i64)> = (0..n)
                .map(|_| {
                    (
                        rng.random_range(0u8..4),
                        rng.random_range(0u8..4),
                        rng.random_range(-3i64..4),
                    )
                })
                .collect();
            let mut tm = TermManager::new();
            let vars: Vec<_> = (0..4).map(|i| tm.int_var_sym(&format!("v{i}"))).collect();
            let bounds: Vec<Bound> = raw
                .iter()
                .enumerate()
                .map(|(tag, &(x, y, c))| Bound {
                    x: vars[x as usize],
                    y: vars[y as usize],
                    c,
                    tag,
                })
                .collect();
            match solve_bounds(&bounds, &[]) {
                DiffResult::Sat(m) => {
                    for b in &bounds {
                        assert!(m[&b.x] - m[&b.y] <= b.c, "raw: {raw:?}");
                    }
                }
                DiffResult::Unsat(core) => {
                    // The reported core must itself be a negative cycle:
                    // restricting to it stays unsat.
                    let sub: Vec<Bound> = bounds
                        .iter()
                        .copied()
                        .filter(|b| core.contains(&b.tag))
                        .collect();
                    assert!(
                        matches!(solve_bounds(&sub, &[]), DiffResult::Unsat(_)),
                        "raw: {raw:?}"
                    );
                }
            }
        }
    }
}
