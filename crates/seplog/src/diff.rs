//! Integer difference-logic solving.
//!
//! Conjunctions of separation predicates reduce to *bound constraints*
//! `x − y ≤ c`, which are satisfiable over the integers iff the constraint
//! graph has no negative cycle (the paper notes that SVC is strong on such
//! conjunctions precisely because they reduce to a shortest-path problem).
//! Disequalities `x − y ≠ c` make the problem NP-hard; they are handled by
//! recursive case splitting.
//!
//! The solver returns models (used for counterexample reconstruction from
//! EIJ encodings) and minimal negative-cycle explanations (used by the lazy
//! CVC-style baseline to build conflict clauses).

use std::collections::HashMap;

use sufsat_suf::VarSym;

/// A bound constraint `x − y ≤ c` tagged with a caller-chosen label.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct Bound {
    /// Minuend variable.
    pub x: VarSym,
    /// Subtrahend variable.
    pub y: VarSym,
    /// The bound.
    pub c: i64,
    /// Caller-chosen tag, reported back in explanations.
    pub tag: usize,
}

/// A disequality `x − y ≠ c` tagged with a caller-chosen label.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct Disequality {
    /// Minuend variable.
    pub x: VarSym,
    /// Subtrahend variable.
    pub y: VarSym,
    /// The excluded difference.
    pub c: i64,
    /// Caller-chosen tag, reported back in explanations.
    pub tag: usize,
}

/// Outcome of a difference-logic query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffResult {
    /// Satisfiable, with a concrete integer model.
    Sat(HashMap<VarSym, i64>),
    /// Unsatisfiable; the tags of a (locally minimal) conflicting subset.
    Unsat(Vec<usize>),
}

/// Decides a conjunction of bound constraints by negative-cycle detection
/// (Bellman–Ford from a virtual source).
///
/// On success the model assigns every variable mentioned in `bounds` (and
/// every variable in `extra_vars`) an integer value satisfying all bounds.
///
/// # Examples
///
/// ```
/// use sufsat_seplog::{solve_bounds, Bound, DiffResult};
/// use sufsat_suf::TermManager;
///
/// let mut tm = TermManager::new();
/// let x = tm.int_var_sym("x");
/// let y = tm.int_var_sym("y");
/// // x - y <= -1 (x < y) and y - x <= -1 (y < x): a negative cycle.
/// let bounds = [
///     Bound { x, y, c: -1, tag: 0 },
///     Bound { x: y, y: x, c: -1, tag: 1 },
/// ];
/// let DiffResult::Unsat(core) = solve_bounds(&bounds, &[]) else {
///     panic!("expected unsat");
/// };
/// assert_eq!(core, vec![0, 1]);
/// ```
pub fn solve_bounds(bounds: &[Bound], extra_vars: &[VarSym]) -> DiffResult {
    // Dense-index the variables.
    let mut index: HashMap<VarSym, usize> = HashMap::new();
    let mut vars: Vec<VarSym> = Vec::new();
    let intern = |v: VarSym, index: &mut HashMap<VarSym, usize>, vars: &mut Vec<VarSym>| {
        *index.entry(v).or_insert_with(|| {
            vars.push(v);
            vars.len() - 1
        })
    };
    // Edge y -> x with weight c encodes x - y <= c (d[x] <= d[y] + c).
    let mut edges: Vec<(usize, usize, i64, usize)> = Vec::new();
    for b in bounds {
        let xi = intern(b.x, &mut index, &mut vars);
        let yi = intern(b.y, &mut index, &mut vars);
        edges.push((yi, xi, b.c, b.tag));
    }
    for &v in extra_vars {
        intern(v, &mut index, &mut vars);
    }
    let n = vars.len();
    if n == 0 {
        return DiffResult::Sat(HashMap::new());
    }

    // Bellman–Ford with all distances initialized to 0 (implicit source).
    let mut dist = vec![0i64; n];
    let mut pred_edge: Vec<Option<usize>> = vec![None; n];
    let mut changed_node = None;
    for round in 0..n {
        let mut changed = false;
        for (ei, &(u, v, w, _)) in edges.iter().enumerate() {
            if dist[u] + w < dist[v] {
                dist[v] = dist[u] + w;
                pred_edge[v] = Some(ei);
                changed = true;
                if round == n - 1 {
                    changed_node = Some(v);
                }
            }
        }
        if !changed {
            break;
        }
    }

    if let Some(start) = changed_node {
        // Walk predecessors n times to land inside the cycle, then collect
        // the cycle's edge tags.
        let mut node = start;
        for _ in 0..n {
            let ei = pred_edge[node].expect("cycle nodes have predecessors");
            node = edges[ei].0;
        }
        let mut tags = Vec::new();
        let cycle_start = node;
        loop {
            let ei = pred_edge[node].expect("cycle nodes have predecessors");
            tags.push(edges[ei].3);
            node = edges[ei].0;
            if node == cycle_start {
                break;
            }
        }
        tags.sort_unstable();
        tags.dedup();
        return DiffResult::Unsat(tags);
    }

    let model = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, dist[i]))
        .collect();
    DiffResult::Sat(model)
}

/// Decides bounds plus disequalities by recursive case splitting: each
/// violated disequality `x − y ≠ c` branches into `x − y ≤ c−1` and
/// `y − x ≤ −c−1`.
///
/// The returned conflict tags over-approximate a minimal core: they contain
/// the tags of the bound constraints in the negative cycles of both
/// branches plus the split disequality's tag.
pub fn solve_with_disequalities(
    bounds: &[Bound],
    diseqs: &[Disequality],
    extra_vars: &[VarSym],
) -> DiffResult {
    let mut budget = usize::MAX;
    solve_with_disequalities_budgeted(bounds, diseqs, extra_vars, &mut budget)
        .expect("unbounded budget cannot run out")
}

/// [`solve_with_disequalities`] with a budget on case splits.
///
/// Disequality splitting is worst-case exponential (the problem is
/// NP-hard); `None` is returned once `budget` splits have been spent, so
/// callers can treat pathological instances as resource failures. The
/// budget is decremented in place across the whole recursion.
pub fn solve_with_disequalities_budgeted(
    bounds: &[Bound],
    diseqs: &[Disequality],
    extra_vars: &[VarSym],
    budget: &mut usize,
) -> Option<DiffResult> {
    match solve_bounds(bounds, extra_vars) {
        DiffResult::Unsat(core) => Some(DiffResult::Unsat(core)),
        DiffResult::Sat(model) => {
            // Find a violated disequality.
            let violated = diseqs.iter().find(|d| {
                let vx = model.get(&d.x).copied().unwrap_or(0);
                let vy = model.get(&d.y).copied().unwrap_or(0);
                vx - vy == d.c
            });
            let Some(d) = violated else {
                return Some(DiffResult::Sat(model));
            };
            if *budget == 0 {
                return None;
            }
            *budget = budget.saturating_sub(1);
            let rest: Vec<Disequality> = diseqs.iter().copied().filter(|e| *e != *d).collect();
            // Branch 1: x - y <= c - 1.
            let mut b1 = bounds.to_vec();
            b1.push(Bound {
                x: d.x,
                y: d.y,
                c: d.c - 1,
                tag: d.tag,
            });
            match solve_with_disequalities_budgeted(&b1, &rest, extra_vars, budget)? {
                DiffResult::Sat(m) => Some(DiffResult::Sat(m)),
                DiffResult::Unsat(core1) => {
                    // Branch 2: y - x <= -c - 1.
                    let mut b2 = bounds.to_vec();
                    b2.push(Bound {
                        x: d.y,
                        y: d.x,
                        c: -d.c - 1,
                        tag: d.tag,
                    });
                    match solve_with_disequalities_budgeted(&b2, &rest, extra_vars, budget)? {
                        DiffResult::Sat(m) => Some(DiffResult::Sat(m)),
                        DiffResult::Unsat(core2) => {
                            let mut tags = core1;
                            tags.extend(core2);
                            tags.push(d.tag);
                            tags.sort_unstable();
                            tags.dedup();
                            Some(DiffResult::Unsat(tags))
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_suf::TermManager;

    fn syms(tm: &mut TermManager, names: &[&str]) -> Vec<VarSym> {
        names.iter().map(|n| tm.int_var_sym(n)).collect()
    }

    #[test]
    fn chain_of_bounds_is_sat_with_model() {
        let mut tm = TermManager::new();
        let v = syms(&mut tm, &["a", "b", "c"]);
        // a - b <= -1, b - c <= -1 (a < b < c).
        let bounds = [
            Bound {
                x: v[0],
                y: v[1],
                c: -1,
                tag: 0,
            },
            Bound {
                x: v[1],
                y: v[2],
                c: -1,
                tag: 1,
            },
        ];
        let DiffResult::Sat(m) = solve_bounds(&bounds, &[]) else {
            panic!("expected sat");
        };
        assert!(m[&v[0]] < m[&v[1]] && m[&v[1]] < m[&v[2]]);
    }

    #[test]
    fn paper_example_cycle_is_unsat() {
        // The paper's F_sep example: x >= y, y >= z, z >= succ(x), i.e.
        // y - x <= 0, z - y <= 0, x - z <= -1: a negative cycle.
        let mut tm = TermManager::new();
        let v = syms(&mut tm, &["x", "y", "z"]);
        let bounds = [
            Bound {
                x: v[1],
                y: v[0],
                c: 0,
                tag: 10,
            },
            Bound {
                x: v[2],
                y: v[1],
                c: 0,
                tag: 11,
            },
            Bound {
                x: v[0],
                y: v[2],
                c: -1,
                tag: 12,
            },
        ];
        let DiffResult::Unsat(core) = solve_bounds(&bounds, &[]) else {
            panic!("expected unsat");
        };
        assert_eq!(core, vec![10, 11, 12]);
    }

    #[test]
    fn explanation_is_the_cycle_not_everything() {
        let mut tm = TermManager::new();
        let v = syms(&mut tm, &["a", "b", "c", "d", "e"]);
        let bounds = [
            // Irrelevant satisfiable constraints.
            Bound {
                x: v[3],
                y: v[4],
                c: 5,
                tag: 0,
            },
            Bound {
                x: v[4],
                y: v[3],
                c: 5,
                tag: 1,
            },
            // The contradiction: a < b and b < a.
            Bound {
                x: v[0],
                y: v[1],
                c: -1,
                tag: 2,
            },
            Bound {
                x: v[1],
                y: v[0],
                c: -1,
                tag: 3,
            },
            Bound {
                x: v[2],
                y: v[0],
                c: 7,
                tag: 4,
            },
        ];
        let DiffResult::Unsat(core) = solve_bounds(&bounds, &[]) else {
            panic!("expected unsat");
        };
        assert_eq!(core, vec![2, 3]);
    }

    #[test]
    fn zero_weight_cycles_are_fine() {
        let mut tm = TermManager::new();
        let v = syms(&mut tm, &["a", "b"]);
        // a = b as two bounds.
        let bounds = [
            Bound {
                x: v[0],
                y: v[1],
                c: 0,
                tag: 0,
            },
            Bound {
                x: v[1],
                y: v[0],
                c: 0,
                tag: 1,
            },
        ];
        let DiffResult::Sat(m) = solve_bounds(&bounds, &[]) else {
            panic!("expected sat");
        };
        assert_eq!(m[&v[0]], m[&v[1]]);
    }

    #[test]
    fn disequality_forces_split() {
        let mut tm = TermManager::new();
        let v = syms(&mut tm, &["a", "b"]);
        // a = b (bounds) plus a != b: unsat.
        let bounds = [
            Bound {
                x: v[0],
                y: v[1],
                c: 0,
                tag: 0,
            },
            Bound {
                x: v[1],
                y: v[0],
                c: 0,
                tag: 1,
            },
        ];
        let diseqs = [Disequality {
            x: v[0],
            y: v[1],
            c: 0,
            tag: 2,
        }];
        let DiffResult::Unsat(core) = solve_with_disequalities(&bounds, &diseqs, &[]) else {
            panic!("expected unsat");
        };
        assert!(core.contains(&2));
    }

    #[test]
    fn disequality_satisfiable_by_perturbation() {
        let mut tm = TermManager::new();
        let v = syms(&mut tm, &["a", "b", "c"]);
        // a <= b <= c with a != b: pick b > a.
        let bounds = [
            Bound {
                x: v[0],
                y: v[1],
                c: 0,
                tag: 0,
            },
            Bound {
                x: v[1],
                y: v[2],
                c: 0,
                tag: 1,
            },
        ];
        let diseqs = [Disequality {
            x: v[0],
            y: v[1],
            c: 0,
            tag: 2,
        }];
        let DiffResult::Sat(m) = solve_with_disequalities(&bounds, &diseqs, &[]) else {
            panic!("expected sat");
        };
        assert!(m[&v[0]] <= m[&v[1]] && m[&v[1]] <= m[&v[2]]);
        assert_ne!(m[&v[0]], m[&v[1]]);
    }

    #[test]
    fn split_budget_limits_work() {
        // Three variables in [0,1] pairwise distinct needs splits; a zero
        // budget gives up instead.
        let mut tm = TermManager::new();
        let v = syms(&mut tm, &["a", "b", "c", "zero"]);
        let z = v[3];
        let mut bounds = Vec::new();
        for (i, &x) in v[..3].iter().enumerate() {
            bounds.push(Bound { x, y: z, c: 1, tag: 100 + i });
            bounds.push(Bound { x: z, y: x, c: 0, tag: 200 + i });
        }
        let diseqs = [
            Disequality { x: v[0], y: v[1], c: 0, tag: 0 },
            Disequality { x: v[0], y: v[2], c: 0, tag: 1 },
            Disequality { x: v[1], y: v[2], c: 0, tag: 2 },
        ];
        let mut budget = 0usize;
        assert_eq!(
            solve_with_disequalities_budgeted(&bounds, &diseqs, &[], &mut budget),
            None
        );
        let mut big = 1_000usize;
        assert!(matches!(
            solve_with_disequalities_budgeted(&bounds, &diseqs, &[], &mut big),
            Some(DiffResult::Unsat(_))
        ));
    }

    #[test]
    fn pigeonhole_style_disequalities() {
        // Three variables in [0, 1] pairwise distinct: unsat.
        let mut tm = TermManager::new();
        let v = syms(&mut tm, &["a", "b", "c", "zero"]);
        let z = v[3];
        let mut bounds = Vec::new();
        for (i, &x) in v[..3].iter().enumerate() {
            bounds.push(Bound {
                x,
                y: z,
                c: 1,
                tag: 100 + i,
            }); // x - z <= 1
            bounds.push(Bound {
                x: z,
                y: x,
                c: 0,
                tag: 200 + i,
            }); // z - x <= 0
        }
        let diseqs = [
            Disequality {
                x: v[0],
                y: v[1],
                c: 0,
                tag: 0,
            },
            Disequality {
                x: v[0],
                y: v[2],
                c: 0,
                tag: 1,
            },
            Disequality {
                x: v[1],
                y: v[2],
                c: 0,
                tag: 2,
            },
        ];
        let result = solve_with_disequalities(&bounds, &diseqs, &[]);
        assert!(matches!(result, DiffResult::Unsat(_)));
    }

    #[test]
    fn extra_vars_get_values() {
        let mut tm = TermManager::new();
        let v = syms(&mut tm, &["a", "lonely"]);
        let bounds = [Bound {
            x: v[0],
            y: v[0],
            c: 0,
            tag: 0,
        }];
        let DiffResult::Sat(m) = solve_bounds(&bounds, &[v[1]]) else {
            panic!("expected sat");
        };
        assert!(m.contains_key(&v[1]));
    }
}
