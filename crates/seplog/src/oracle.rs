//! Brute-force validity oracle for small separation formulas.
//!
//! Enumerates every assignment within the small-model ranges computed by
//! [`SepAnalysis`] (paper §2.1.2: separation logic has the small-model
//! property, with per-class ranges `Σ (u(v) − l(v) + 1)`). Only practical
//! for tiny formulas; it is the exact ground truth the property-based tests
//! compare every encoder and solver against.

use std::collections::HashMap;

use sufsat_suf::{eval, BoolSym, MapInterpretation, Term, TermId, TermManager, Value, VarSym};

use crate::analysis::SepAnalysis;

/// A falsifying assignment for a separation formula.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SepAssignment {
    /// Integer symbolic-constant values.
    pub ints: HashMap<VarSym, i64>,
    /// Boolean symbolic-constant values.
    pub bools: HashMap<BoolSym, bool>,
}

impl SepAssignment {
    /// Evaluates `root` under this assignment.
    ///
    /// Symbols not present in the assignment default to 0 / false.
    pub fn evaluate(&self, tm: &TermManager, root: TermId) -> bool {
        let mut interp = MapInterpretation::with_seed(0);
        interp.fallback_range = 1; // unassigned ints default to 0
        for (&v, &val) in &self.ints {
            interp.set_int(v, val);
        }
        for (&b, &val) in &self.bools {
            interp.set_bool(b, val);
        }
        eval(tm, root, &interp) == Value::Bool(true)
    }
}

/// Outcome of the brute-force oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleResult {
    /// Valid: true under every enumerated assignment.
    Valid,
    /// Invalid, with a concrete falsifying assignment.
    Invalid(SepAssignment),
    /// The enumeration space exceeded the budget; no answer.
    TooLarge,
}

/// Exhaustively checks validity of an application-free formula.
///
/// `margin` widens every class's enumeration range beyond the paper's
/// small-model bound; the property tests use differing margins to confirm
/// the bound empirically. `budget` caps the number of assignments tried.
///
/// # Panics
///
/// Panics if the formula contains applications.
pub fn brute_force_validity(
    tm: &TermManager,
    root: TermId,
    analysis: &SepAnalysis,
    margin: u64,
    budget: u64,
) -> OracleResult {
    // Collect the Boolean constants appearing in the formula.
    let mut bool_syms: Vec<BoolSym> = Vec::new();
    for id in tm.postorder(root) {
        if let Term::BoolVar(b) = tm.term(id) {
            bool_syms.push(*b);
        }
    }
    bool_syms.sort_unstable();
    bool_syms.dedup();

    // Enumeration dimensions: one per g-var (its class range + margin) and
    // one per bool var.
    let mut dims: Vec<(Dim, u64)> = Vec::new();
    for class in &analysis.classes {
        let r = class.range + margin;
        for &v in &class.vars {
            dims.push((Dim::Int(v), r.max(1)));
        }
    }
    for &b in &bool_syms {
        dims.push((Dim::Bool(b), 2));
    }

    // p-vars get fixed, maximally diverse, well-spaced values.
    let stride = 2 * analysis.max_abs_offset + 1;
    let base = analysis
        .classes
        .iter()
        .map(|c| c.range as i64)
        .max()
        .unwrap_or(0)
        + stride
        + 1;
    let mut p_assign: HashMap<VarSym, i64> = HashMap::new();
    let mut p_sorted: Vec<VarSym> = analysis.p_vars.iter().copied().collect();
    p_sorted.sort_unstable();
    for (i, v) in p_sorted.into_iter().enumerate() {
        p_assign.insert(v, base + i as i64 * stride);
    }

    let total: u64 = dims
        .iter()
        .try_fold(1u64, |acc, &(_, r)| acc.checked_mul(r))
        .unwrap_or(u64::MAX);
    if total > budget {
        return OracleResult::TooLarge;
    }

    let mut counters = vec![0u64; dims.len()];
    loop {
        // Build and evaluate the assignment.
        let mut assignment = SepAssignment::default();
        assignment.ints.extend(p_assign.iter());
        for ((dim, _), &val) in dims.iter().zip(&counters) {
            match *dim {
                Dim::Int(v) => {
                    assignment.ints.insert(v, val as i64);
                }
                Dim::Bool(b) => {
                    assignment.bools.insert(b, val == 1);
                }
            }
        }
        if !assignment.evaluate(tm, root) {
            return OracleResult::Invalid(assignment);
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == dims.len() {
                return OracleResult::Valid;
            }
            counters[i] += 1;
            if counters[i] < dims[i].1 {
                break;
            }
            counters[i] = 0;
            i += 1;
        }
    }
}

#[derive(Debug, Copy, Clone)]
enum Dim {
    Int(VarSym),
    Bool(BoolSym),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn analyze(tm: &TermManager, phi: TermId) -> SepAnalysis {
        SepAnalysis::new(tm, phi, &HashSet::new())
    }

    fn check(tm: &TermManager, phi: TermId) -> OracleResult {
        let an = analyze(tm, phi);
        brute_force_validity(tm, phi, &an, 1, 1_000_000)
    }

    #[test]
    fn trivially_valid_formulas() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let sx = tm.mk_succ(x);
        let phi = tm.mk_lt(x, sx);
        assert_eq!(check(&tm, phi), OracleResult::Valid);
    }

    #[test]
    fn totality_of_order_is_valid() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let lt = tm.mk_lt(x, y);
        let ge = tm.mk_ge(x, y);
        let phi = tm.mk_or(lt, ge);
        assert_eq!(check(&tm, phi), OracleResult::Valid);
    }

    #[test]
    fn paper_example_x_ge_y_ge_z_ge_succ_x_is_contradictory() {
        // x >= y ∧ y >= z ∧ z >= succ(x) is unsatisfiable, so its negation
        // is valid.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let c1 = tm.mk_ge(x, y);
        let c2 = tm.mk_ge(y, z);
        let sx = tm.mk_succ(x);
        let c3 = tm.mk_ge(z, sx);
        let conj = tm.mk_and_many(&[c1, c2, c3]);
        let phi = tm.mk_not(conj);
        assert_eq!(check(&tm, phi), OracleResult::Valid);
    }

    #[test]
    fn invalid_formula_yields_checked_counterexample() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let phi = tm.mk_lt(x, y); // not valid
        let OracleResult::Invalid(cex) = check(&tm, phi) else {
            panic!("expected invalid");
        };
        assert!(!cex.evaluate(&tm, phi));
    }

    #[test]
    fn transitivity_is_valid() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let xy = tm.mk_lt(x, y);
        let yz = tm.mk_lt(y, z);
        let hyp = tm.mk_and(xy, yz);
        let xz = tm.mk_lt(x, z);
        let phi = tm.mk_implies(hyp, xz);
        assert_eq!(check(&tm, phi), OracleResult::Valid);
    }

    #[test]
    fn budget_is_respected() {
        let mut tm = TermManager::new();
        let vars: Vec<_> = (0..8).map(|i| tm.int_var(&format!("v{i}"))).collect();
        let mut conj = Vec::new();
        for w in vars.windows(2) {
            conj.push(tm.mk_lt(w[0], w[1]));
        }
        let phi = tm.mk_and_many(&conj);
        let an = analyze(&tm, phi);
        assert_eq!(
            brute_force_validity(&tm, phi, &an, 0, 10),
            OracleResult::TooLarge
        );
    }

    #[test]
    fn bool_vars_are_enumerated() {
        let mut tm = TermManager::new();
        let b = tm.bool_var("b");
        let nb = tm.mk_not(b);
        let phi = tm.mk_or(b, nb);
        assert_eq!(check(&tm, phi), OracleResult::Valid);
        // b alone is not valid.
        let OracleResult::Invalid(cex) = check(&tm, b) else {
            panic!("expected invalid");
        };
        assert!(!cex.bools[&tm.find_bool_var("b").unwrap()]);
    }
}
