//! ITE elimination at the atom level (paper §2.1.2, EIJ step 1).
//!
//! Rewrites every atom whose sides contain integer ITEs into a Boolean
//! combination of *ground atoms* (comparisons of `v + k` ground terms):
//!
//! ```text
//! ITE(F, T₁, T₂) ⋈ T₃  →  (F ∧ (T₁ ⋈ T₃)) ∨ (¬F ∧ (T₂ ⋈ T₃))
//! ```
//!
//! The per-constraint encoder performs this expansion internally on the
//! circuit level; this term-level version feeds the case-splitting (SVC
//! stand-in) baseline, which needs every atom ground before it branches.

use std::collections::HashMap;

use sufsat_suf::{Term, TermId, TermManager};

use crate::ground::GroundTerm;

/// Rewrites `root` so that every remaining `Eq`/`Lt` atom compares ground
/// terms (a variable plus an offset). The result is logically equivalent.
///
/// # Panics
///
/// Panics if the formula contains uninterpreted applications.
pub fn expand_ites(tm: &mut TermManager, root: TermId) -> TermId {
    expand_ites_bounded(tm, root, usize::MAX).expect("unbounded expansion cannot overflow")
}

/// [`expand_ites`] with a budget on newly created term nodes.
///
/// Path-pair expansion is worst-case exponential (each atom produces one
/// disjunct per pair of ground leaves); `None` is returned as soon as more
/// than `max_new_nodes` nodes have been created, so callers can treat the
/// blow-up as a resource failure instead of hanging.
pub fn expand_ites_bounded(
    tm: &mut TermManager,
    root: TermId,
    max_new_nodes: usize,
) -> Option<TermId> {
    let start_nodes = tm.num_nodes();
    let order = tm.postorder(root);
    let mut bool_map: HashMap<TermId, TermId> = HashMap::new();
    // Per integer node: list of (condition, ground term) paths, where the
    // condition is an already-expanded Boolean term.
    let mut paths: HashMap<TermId, Vec<(TermId, GroundTerm)>> = HashMap::new();

    for id in order {
        match tm.term(id).clone() {
            // ---- integer nodes: accumulate paths -------------------------
            Term::IntVar(v) => {
                paths.insert(id, vec![(tm.mk_true(), GroundTerm { var: v, offset: 0 })]);
            }
            Term::Succ(a) => {
                let shifted = shift_paths(&paths[&a], 1);
                paths.insert(id, shifted);
            }
            Term::Pred(a) => {
                let shifted = shift_paths(&paths[&a], -1);
                paths.insert(id, shifted);
            }
            Term::IteInt(c, t, e) => {
                let cond = bool_map[&c];
                let ncond = tm.mk_not(cond);
                let mut out = Vec::new();
                for &(pc, g) in &paths[&t].clone() {
                    let both = tm.mk_and(cond, pc);
                    out.push((both, g));
                }
                for &(pc, g) in &paths[&e].clone() {
                    let both = tm.mk_and(ncond, pc);
                    out.push((both, g));
                }
                paths.insert(id, out);
            }
            // ---- atoms: expand over path pairs ---------------------------
            Term::Eq(a, b) | Term::Lt(a, b) => {
                let is_eq = matches!(tm.term(id), Term::Eq(..));
                let lp = paths[&a].clone();
                let rp = paths[&b].clone();
                let mut disjuncts = Vec::with_capacity(lp.len() * rp.len());
                for &(c1, g1) in &lp {
                    for &(c2, g2) in &rp {
                        let v1 = tm.var_term(g1.var);
                        let t1 = tm.mk_offset(v1, g1.offset);
                        let v2 = tm.var_term(g2.var);
                        let t2 = tm.mk_offset(v2, g2.offset);
                        let atom = if is_eq {
                            tm.mk_eq(t1, t2)
                        } else {
                            tm.mk_lt(t1, t2)
                        };
                        let cc = tm.mk_and(c1, c2);
                        disjuncts.push(tm.mk_and(cc, atom));
                    }
                }
                let expanded = tm.mk_or_many(&disjuncts);
                if tm.num_nodes() - start_nodes > max_new_nodes {
                    return None;
                }
                bool_map.insert(id, expanded);
            }
            // ---- Boolean structure: rebuild over expanded children -------
            Term::True => {
                let t = tm.mk_true();
                bool_map.insert(id, t);
            }
            Term::False => {
                let t = tm.mk_false();
                bool_map.insert(id, t);
            }
            Term::Not(a) => {
                let m = bool_map[&a];
                let t = tm.mk_not(m);
                bool_map.insert(id, t);
            }
            Term::And(a, b) => {
                let (ma, mb) = (bool_map[&a], bool_map[&b]);
                let t = tm.mk_and(ma, mb);
                bool_map.insert(id, t);
            }
            Term::Or(a, b) => {
                let (ma, mb) = (bool_map[&a], bool_map[&b]);
                let t = tm.mk_or(ma, mb);
                bool_map.insert(id, t);
            }
            Term::Implies(a, b) => {
                let (ma, mb) = (bool_map[&a], bool_map[&b]);
                let t = tm.mk_implies(ma, mb);
                bool_map.insert(id, t);
            }
            Term::Iff(a, b) => {
                let (ma, mb) = (bool_map[&a], bool_map[&b]);
                let t = tm.mk_iff(ma, mb);
                bool_map.insert(id, t);
            }
            Term::IteBool(c, t, e) => {
                let (mc, mt, me) = (bool_map[&c], bool_map[&t], bool_map[&e]);
                let out = tm.mk_ite_bool(mc, mt, me);
                bool_map.insert(id, out);
            }
            Term::BoolVar(_) => {
                bool_map.insert(id, id);
            }
            Term::App(..) | Term::PApp(..) => {
                panic!("expand_ites requires an application-free formula")
            }
        }
    }
    Some(bool_map[&root])
}

fn shift_paths(paths: &[(TermId, GroundTerm)], delta: i64) -> Vec<(TermId, GroundTerm)> {
    paths
        .iter()
        .map(|&(c, g)| {
            (
                c,
                GroundTerm {
                    var: g.var,
                    offset: g.offset + delta,
                },
            )
        })
        .collect()
}

/// Whether every atom of the formula compares ground terms (no integer ITE
/// below any atom).
pub fn atoms_are_ground(tm: &TermManager, root: TermId) -> bool {
    tm.postorder(root).iter().all(|&id| match tm.term(id) {
        Term::Eq(a, b) | Term::Lt(a, b) => is_ground_term(tm, *a) && is_ground_term(tm, *b),
        _ => true,
    })
}

fn is_ground_term(tm: &TermManager, mut t: TermId) -> bool {
    loop {
        match tm.term(t) {
            Term::IntVar(_) => return true,
            Term::Succ(a) | Term::Pred(a) => t = *a,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::SepAnalysis;
    use crate::oracle::{brute_force_validity, OracleResult};
    use std::collections::HashSet;

    #[test]
    fn already_ground_formula_is_unchanged() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let sx = tm.mk_succ(x);
        let phi = tm.mk_lt(sx, y);
        let expanded = expand_ites(&mut tm, phi);
        assert_eq!(expanded, phi);
        assert!(atoms_are_ground(&tm, expanded));
    }

    #[test]
    fn ite_atom_expands_to_disjunction() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let b = tm.bool_var("b");
        let ite = tm.mk_ite_int(b, x, y);
        let phi = tm.mk_eq(ite, z);
        let expanded = expand_ites(&mut tm, phi);
        assert!(atoms_are_ground(&tm, expanded));
        assert_ne!(expanded, phi);
    }

    #[test]
    fn expansion_preserves_validity() {
        // max(x,y) >= x with max via ITE over an atom condition.
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let c = tm.mk_lt(x, y);
        let max = tm.mk_ite_int(c, y, x);
        let phi = tm.mk_ge(max, x);
        let expanded = expand_ites(&mut tm, phi);
        assert!(atoms_are_ground(&tm, expanded));
        let an = SepAnalysis::new(&tm, expanded, &HashSet::new());
        assert_eq!(
            brute_force_validity(&tm, expanded, &an, 1, 1_000_000),
            OracleResult::Valid
        );
    }

    #[test]
    fn nested_ites_expand_fully() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let b1 = tm.bool_var("b1");
        let b2 = tm.bool_var("b2");
        let inner = tm.mk_ite_int(b2, y, z);
        let outer = tm.mk_ite_int(b1, x, inner);
        let so = tm.mk_succ(outer);
        let phi = tm.mk_lt(so, x);
        let expanded = expand_ites(&mut tm, phi);
        assert!(atoms_are_ground(&tm, expanded));
    }
}
