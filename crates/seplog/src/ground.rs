//! Ground-term analysis of separation-logic terms (paper §4 rewriting step).
//!
//! After function elimination, every integer term is built from symbolic
//! constants, `succ`/`pred`, and integer ITEs. The paper rewrites such terms
//! with the rules
//!
//! ```text
//! succ(pred(T)) → T                 pred(succ(T)) → T
//! succ(ITE(F,T₁,T₂)) → ITE(F, succ(T₁), succ(T₂))
//! pred(ITE(F,T₁,T₂)) → ITE(F, pred(T₁), pred(T₂))
//! ```
//!
//! so that leaves become *ground terms* `v + k`. This module provides both
//! the explicit rewriting ([`push_offsets`]) and the equivalent analysis
//! that computes the ground-term leaf sets directly ([`GroundInfo`]), which
//! is what the domain/class/SepCnt computations actually consume.

use std::collections::HashMap;

use sufsat_suf::{Term, TermId, TermManager, VarSym};

/// A ground term `v + offset`.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundTerm {
    /// The symbolic constant at the root.
    pub var: VarSym,
    /// The accumulated `succ`/`pred` offset.
    pub offset: i64,
}

/// Ground-term leaf sets for every integer node reachable from a formula.
#[derive(Debug, Clone, Default)]
pub struct GroundInfo {
    leaves: HashMap<TermId, Vec<GroundTerm>>,
}

impl GroundInfo {
    /// Computes leaf sets for all integer subterms of the separation formula
    /// `root`.
    ///
    /// # Panics
    ///
    /// Panics if the formula still contains uninterpreted function or
    /// predicate applications (run
    /// [`eliminate`](sufsat_suf::eliminate) first).
    pub fn compute(tm: &TermManager, root: TermId) -> GroundInfo {
        let mut leaves: HashMap<TermId, Vec<GroundTerm>> = HashMap::new();
        for id in tm.postorder(root) {
            let set: Vec<GroundTerm> = match tm.term(id) {
                Term::IntVar(v) => vec![GroundTerm { var: *v, offset: 0 }],
                Term::Succ(a) => shift(&leaves[a], 1),
                Term::Pred(a) => shift(&leaves[a], -1),
                Term::IteInt(_, t, e) => {
                    let mut out = leaves[t].clone();
                    out.extend_from_slice(&leaves[e]);
                    out.sort_unstable();
                    out.dedup();
                    out
                }
                Term::App(..) | Term::PApp(..) => {
                    panic!("ground analysis requires an application-free formula")
                }
                _ => continue, // Boolean nodes carry no leaves.
            };
            leaves.insert(id, set);
        }
        GroundInfo { leaves }
    }

    /// The ground-term leaves of an integer node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an integer node of the analyzed formula.
    pub fn leaves(&self, id: TermId) -> &[GroundTerm] {
        &self.leaves[&id]
    }

    /// Whether `id` was part of the analyzed formula.
    pub fn contains(&self, id: TermId) -> bool {
        self.leaves.contains_key(&id)
    }

    /// The minimum and maximum leaf offset over *every* integer node of the
    /// analyzed formula (not just atom sides), both clamped to include 0.
    ///
    /// Bit-vector encoders size their shift and width from these so that no
    /// intermediate term under/overflows.
    pub fn offset_bounds(&self) -> (i64, i64) {
        let mut lo = 0i64;
        let mut hi = 0i64;
        for set in self.leaves.values() {
            for g in set {
                lo = lo.min(g.offset);
                hi = hi.max(g.offset);
            }
        }
        (lo, hi)
    }
}

fn shift(set: &[GroundTerm], delta: i64) -> Vec<GroundTerm> {
    set.iter()
        .map(|g| GroundTerm {
            var: g.var,
            offset: g.offset + delta,
        })
        .collect()
}

/// Explicitly applies the paper's rewrite rules, returning an equal term in
/// which `succ`/`pred` only wrap symbolic constants (ITE leaves are ground).
///
/// Mostly useful for testing and for displaying formulas in the paper's
/// normal form; the analyses use [`GroundInfo`] directly.
///
/// # Panics
///
/// Panics if the formula contains applications.
pub fn push_offsets(tm: &mut TermManager, root: TermId) -> TermId {
    // Map each (node, delta) pair to its pushed form. Bool nodes only occur
    // with delta 0.
    let order = tm.postorder(root);
    let mut map: HashMap<(TermId, i64), TermId> = HashMap::new();
    // Process ints bottom-up at delta 0, then lift deltas lazily via an
    // explicit work stack when parents request shifted children.
    fn pushed(
        tm: &mut TermManager,
        map: &mut HashMap<(TermId, i64), TermId>,
        id: TermId,
        delta: i64,
    ) -> TermId {
        if let Some(&t) = map.get(&(id, delta)) {
            return t;
        }
        let out = match tm.term(id).clone() {
            Term::IntVar(_) => tm.mk_offset(id, delta),
            Term::Succ(a) => pushed(tm, map, a, delta + 1),
            Term::Pred(a) => pushed(tm, map, a, delta - 1),
            Term::IteInt(c, t, e) => {
                let c2 = pushed(tm, map, c, 0);
                let t2 = pushed(tm, map, t, delta);
                let e2 = pushed(tm, map, e, delta);
                tm.mk_ite_int(c2, t2, e2)
            }
            Term::True => tm.mk_true(),
            Term::False => tm.mk_false(),
            Term::Not(a) => {
                let a2 = pushed(tm, map, a, 0);
                tm.mk_not(a2)
            }
            Term::And(a, b) => {
                let (a2, b2) = (pushed(tm, map, a, 0), pushed(tm, map, b, 0));
                tm.mk_and(a2, b2)
            }
            Term::Or(a, b) => {
                let (a2, b2) = (pushed(tm, map, a, 0), pushed(tm, map, b, 0));
                tm.mk_or(a2, b2)
            }
            Term::Implies(a, b) => {
                let (a2, b2) = (pushed(tm, map, a, 0), pushed(tm, map, b, 0));
                tm.mk_implies(a2, b2)
            }
            Term::Iff(a, b) => {
                let (a2, b2) = (pushed(tm, map, a, 0), pushed(tm, map, b, 0));
                tm.mk_iff(a2, b2)
            }
            Term::IteBool(c, t, e) => {
                let c2 = pushed(tm, map, c, 0);
                let t2 = pushed(tm, map, t, 0);
                let e2 = pushed(tm, map, e, 0);
                tm.mk_ite_bool(c2, t2, e2)
            }
            Term::Eq(a, b) => {
                let (a2, b2) = (pushed(tm, map, a, 0), pushed(tm, map, b, 0));
                tm.mk_eq(a2, b2)
            }
            Term::Lt(a, b) => {
                let (a2, b2) = (pushed(tm, map, a, 0), pushed(tm, map, b, 0));
                tm.mk_lt(a2, b2)
            }
            Term::BoolVar(_) => id,
            Term::App(..) | Term::PApp(..) => {
                panic!("push_offsets requires an application-free formula")
            }
        };
        map.insert((id, delta), out);
        out
    }
    // Seed the recursion bottom-up so the explicit recursion above only ever
    // descends through already-seeded regions shallowly.
    for id in order {
        if sufsat_suf::Sort::Bool == tm.sort(id) {
            let _ = pushed(tm, &mut map, id, 0);
        }
    }
    map[&(root, 0)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_suf::{print_term, TermManager};

    fn gt(tm: &TermManager, name: &str, offset: i64) -> GroundTerm {
        GroundTerm {
            var: tm.find_int_var(name).unwrap(),
            offset,
        }
    }

    #[test]
    fn leaves_of_plain_offsets() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let xp3 = tm.mk_offset(x, 3);
        let ym2 = tm.mk_offset(y, -2);
        let phi = tm.mk_lt(xp3, ym2);
        let info = GroundInfo::compute(&tm, phi);
        assert_eq!(info.leaves(xp3), &[gt(&tm, "x", 3)]);
        assert_eq!(info.leaves(ym2), &[gt(&tm, "y", -2)]);
    }

    #[test]
    fn leaves_of_ite_union_branches() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let c = tm.bool_var("c");
        let ite = tm.mk_ite_int(c, x, y);
        let shifted = tm.mk_offset(ite, 2);
        let phi = tm.mk_eq(shifted, x);
        let info = GroundInfo::compute(&tm, phi);
        let mut leaves = info.leaves(shifted).to_vec();
        leaves.sort();
        assert_eq!(leaves, vec![gt(&tm, "x", 2), gt(&tm, "y", 2)]);
    }

    #[test]
    fn nested_ite_accumulates_offsets() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let z = tm.int_var("z");
        let c1 = tm.bool_var("c1");
        let c2 = tm.bool_var("c2");
        let inner = tm.mk_ite_int(c2, y, z);
        let inner1 = tm.mk_succ(inner);
        let outer = tm.mk_ite_int(c1, x, inner1);
        let outer2 = tm.mk_pred(outer); // x-1 | y | z
        let phi = tm.mk_eq(outer2, x);
        let info = GroundInfo::compute(&tm, phi);
        let mut leaves = info.leaves(outer2).to_vec();
        leaves.sort();
        assert_eq!(
            leaves,
            vec![gt(&tm, "x", -1), gt(&tm, "y", 0), gt(&tm, "z", 0)]
        );
    }

    #[test]
    fn push_offsets_matches_paper_rules() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let c = tm.bool_var("c");
        let ite = tm.mk_ite_int(c, x, y);
        let s = tm.mk_succ(ite);
        let phi = tm.mk_eq(s, x);
        let rewritten = push_offsets(&mut tm, phi);
        let text = print_term(&tm, rewritten);
        // succ pushed through the ITE: (= (ite c (succ x) (succ y)) x)
        // modulo argument canonicalization of `=`.
        assert!(
            text.contains("(ite c (succ x) (succ y))"),
            "rewritten: {text}"
        );
    }

    #[test]
    fn push_offsets_preserves_leaf_sets() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let c = tm.bool_var("c");
        let ite = tm.mk_ite_int(c, x, y);
        let t = tm.mk_offset(ite, -2);
        let phi = tm.mk_lt(t, x);
        let before = GroundInfo::compute(&tm, phi);
        let mut b = before.leaves(t).to_vec();
        b.sort();
        let rewritten = push_offsets(&mut tm, phi);
        let after = GroundInfo::compute(&tm, rewritten);
        // Find the lhs of the rewritten Lt.
        let Term::Lt(lhs, _) = tm.term(rewritten) else {
            panic!("expected Lt at root");
        };
        let mut a = after.leaves(*lhs).to_vec();
        a.sort();
        assert_eq!(a, b);
    }
}
