//! Transition-system benchmark families for bounded model checking.
//!
//! The formula families in [`crate::families`] exercise one-shot
//! decisions; BMC instead asks a *sequence* of related queries against
//! one system, which is exactly the workload the incremental session is
//! built for. Each family here constructs a [`TransitionSystem`] with a
//! planted verdict: either the property holds at every checked depth, or
//! the construction places the first violation at a known step.
//!
//! | family | dynamics | regime |
//! |---|---|---|
//! | [`toggle_system`] | lanes bouncing between two anchors | equality heavy, safe |
//! | [`counter_system`] | increment until a planted limit | offsets, counterexample |
//! | [`uf_datapath_system`] | state folded through UF stages | p-functions, safe |
//! | [`ring_system`] | modular counter via ITE control | inequalities, safe |

use sufsat_core::TransitionSystem;
use sufsat_suf::{TermId, TermManager};

/// One BMC benchmark: a transition system in its own term manager plus
/// the depth to check and the planted verdict.
///
/// `Clone` deep-copies the term manager, so a clone can be checked by a
/// second engine (e.g. incremental vs from-scratch) without interning
/// interference.
#[derive(Debug, Clone)]
pub struct SystemBenchmark {
    /// Name, e.g. `counter-04`.
    pub name: String,
    /// The term manager owning every term of `system`.
    pub tm: TermManager,
    /// The transition system.
    pub system: TransitionSystem,
    /// Depth to check (inclusive).
    pub bound: usize,
    /// Step of the first property violation, when the construction
    /// plants one within `bound`; `None` means safe at every checked
    /// depth.
    pub cex_at: Option<usize>,
}

/// `lanes` independent values, each bouncing between its own two
/// anchors; the property says every lane sits on one of its anchors.
/// Safe at every depth — the per-depth obligations grow linearly and
/// share almost all structure, the incremental session's best case.
pub fn toggle_system(lanes: usize) -> SystemBenchmark {
    assert!(lanes >= 1);
    let mut tm = TermManager::new();
    let mut state = Vec::with_capacity(lanes);
    let mut next = Vec::with_capacity(lanes);
    let mut init = tm.mk_true();
    let mut property = tm.mk_true();
    for i in 0..lanes {
        let x = tm.int_var(&format!("x{i}"));
        let lo = tm.int_var(&format!("lo{i}"));
        let hi = tm.int_var(&format!("hi{i}"));
        let at_lo = tm.mk_eq(x, lo);
        let at_hi = tm.mk_eq(x, hi);
        let step = tm.mk_ite_int(at_lo, hi, lo);
        let anchored = tm.mk_or(at_lo, at_hi);
        init = tm.mk_and(init, at_lo);
        property = tm.mk_and(property, anchored);
        state.push(x);
        next.push(step);
    }
    let system = TransitionSystem {
        state,
        next,
        inputs: vec![],
        init,
        property,
    };
    SystemBenchmark {
        name: format!("toggle-{lanes:02}"),
        tm,
        system,
        bound: 6,
        cex_at: None,
    }
}

/// A counter incremented every step from a symbolic base; the property
/// `x < base + limit` is violated first at step `limit` exactly. The
/// pre-violation depths give the session unsatisfiable checks whose
/// learnt clauses should pay off at later depths.
pub fn counter_system(limit: usize) -> SystemBenchmark {
    assert!(limit >= 1);
    let mut tm = TermManager::new();
    let x = tm.int_var("x");
    let base = tm.int_var("base");
    let next = tm.mk_succ(x);
    let init = tm.mk_eq(x, base);
    let cap = tm.mk_offset(base, limit as i64);
    let property = tm.mk_lt(x, cap);
    let system = TransitionSystem {
        state: vec![x],
        next: vec![next],
        inputs: vec![],
        init,
        property,
    };
    SystemBenchmark {
        name: format!("counter-{limit:02}"),
        tm,
        system,
        bound: limit + 2,
        cex_at: Some(limit),
    }
}

/// Two copies of one value folded through the same `stages`-deep chain
/// of uninterpreted functions each step; the property that the copies
/// stay equal holds by functional consistency at every depth. Stresses
/// the persistent elimination tables (instances accumulate per depth).
pub fn uf_datapath_system(stages: usize) -> SystemBenchmark {
    assert!(stages >= 1);
    let mut tm = TermManager::new();
    let x = tm.int_var("x");
    let y = tm.int_var("y");
    let seed = tm.int_var("seed");
    let funs: Vec<_> = (0..stages)
        .map(|i| tm.declare_fun(&format!("f{i}"), 1))
        .collect();
    let chain = |tm: &mut TermManager, mut t: TermId| {
        for &f in &funs {
            t = tm.mk_app(f, vec![t]);
        }
        t
    };
    let next_x = chain(&mut tm, x);
    let next_y = chain(&mut tm, y);
    let init_x = tm.mk_eq(x, seed);
    let init_y = tm.mk_eq(y, seed);
    let init = tm.mk_and(init_x, init_y);
    let property = tm.mk_eq(x, y);
    let system = TransitionSystem {
        state: vec![x, y],
        next: vec![next_x, next_y],
        inputs: vec![],
        init,
        property,
    };
    SystemBenchmark {
        name: format!("ufdp-{stages:02}"),
        tm,
        system,
        bound: 4,
        cex_at: None,
    }
}

/// A modular counter `x' = (x = z + cap ? z : x + 1)` anchored at a
/// symbolic zero `z`; the property `z ≤ x ≤ z + cap` holds at every
/// depth. Inequality-heavy with a bounded range, so separation classes
/// get real small-domain/EIJ work each depth.
pub fn ring_system(cap: usize) -> SystemBenchmark {
    assert!(cap >= 1);
    let mut tm = TermManager::new();
    let x = tm.int_var("x");
    let z = tm.int_var("z");
    let top = tm.mk_offset(z, cap as i64);
    let at_top = tm.mk_eq(x, top);
    let inc = tm.mk_succ(x);
    let next = tm.mk_ite_int(at_top, z, inc);
    let init = tm.mk_eq(x, z);
    let lower = tm.mk_le(z, x);
    let upper = tm.mk_le(x, top);
    let property = tm.mk_and(lower, upper);
    let system = TransitionSystem {
        state: vec![x],
        next: vec![next],
        inputs: vec![],
        init,
        property,
    };
    SystemBenchmark {
        name: format!("ring-{cap:02}"),
        tm,
        system,
        bound: 2 * cap + 2,
        cex_at: None,
    }
}

/// The standard BMC comparison suite: two instances per family, with
/// counterexamples planted at depth ≥ 3 so incremental reuse has
/// unsatisfiable depths to learn from first.
pub fn system_suite() -> Vec<SystemBenchmark> {
    vec![
        toggle_system(1),
        toggle_system(3),
        counter_system(3),
        counter_system(5),
        uf_datapath_system(1),
        uf_datapath_system(2),
        ring_system(2),
        ring_system(4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_core::{check_bounded, BmcResult, DecideOptions};

    #[test]
    fn planted_verdicts_are_reproduced_by_the_reference_engine() {
        for bench in system_suite() {
            let mut tm = bench.tm.clone();
            let result = check_bounded(
                &mut tm,
                &bench.system,
                bench.bound,
                &DecideOptions::default(),
            );
            match bench.cex_at {
                None => assert!(
                    matches!(result, BmcResult::Bounded(b) if b == bench.bound),
                    "{}: expected safe, got {result:?}",
                    bench.name
                ),
                Some(k) => assert!(
                    matches!(result, BmcResult::CounterexampleAt { step, .. } if step == k),
                    "{}: expected counterexample at {k}, got {result:?}",
                    bench.name
                ),
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = system_suite().into_iter().map(|b| b.name).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
