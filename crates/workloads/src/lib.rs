//! Synthetic benchmark suites standing in for the paper's 49 proprietary
//! benchmarks (§3).
//!
//! The original formulas came from an industrial load-store unit, the UCLID
//! out-of-order processor, a cache-coherence protocol, a 5-stage DLX
//! pipeline, BLAST device-driver verification and translation validation —
//! none distributable. Every effect the paper measures is driven by formula
//! *features* (DAG size, separation-predicate count, class structure,
//! p-/g-function mix), so this crate generates families with matching
//! features and *known validity*:
//!
//! | family | stands in for | regime |
//! |---|---|---|
//! | [`pipeline`] | 5-stage DLX | p-function heavy, few predicates |
//! | [`ooo_invariant`] | OOO invariant checking | inequality heavy, EIJ blow-up |
//! | [`cache_coherence`] | protocol verification | counters + UF, mixed |
//! | [`load_store_unit`] | industrial LSU | two classes, mixed methods |
//! | [`device_driver`] | BLAST safety | ITE control flow, offsets |
//! | [`translation_validation`] | Code Validation tool | pure equalities |
//! | [`random_suf`] | — | fuzzing fuel |
//!
//! [`suite`] assembles the 49-formula benchmark set (39 non-invariant +
//! 10 invariant-checking, mirroring the paper's split) and
//! [`training_sample`] the 16-formula sample used for threshold selection
//! (§3 and §4.1).

#![warn(missing_docs)]

mod bench;
mod families;
mod systems;

pub use bench::{Benchmark, Domain};
pub use families::{
    cache_coherence, device_driver, load_store_unit, ooo_invariant, pipeline, random_suf,
    translation_validation,
};
pub use systems::{
    counter_system, ring_system, system_suite, toggle_system, uf_datapath_system, SystemBenchmark,
};

/// The full 49-benchmark suite: 39 non-invariant-checking formulas plus 10
/// invariant-checking formulas, with DAG sizes spanning roughly two orders
/// of magnitude like the paper's 100–7500-node range.
pub fn suite() -> Vec<Benchmark> {
    let mut out: Vec<Benchmark> = Vec::with_capacity(49);
    // 8 pipeline benchmarks.
    for (i, &(b, d)) in [
        (3, 2),
        (4, 3),
        (6, 3),
        (8, 4),
        (10, 4),
        (12, 4),
        (14, 5),
        (16, 5),
    ]
    .iter()
    .enumerate()
    {
        out.push(pipeline(b, d, 100 + i as u64));
    }
    // 8 translation-validation benchmarks.
    for (i, &(n, k)) in [
        (30, 2),
        (50, 3),
        (70, 3),
        (100, 4),
        (130, 4),
        (160, 5),
        (190, 5),
        (220, 6),
    ]
    .iter()
    .enumerate()
    {
        out.push(translation_validation(n, k, 200 + i as u64));
    }
    // 8 device-driver benchmarks.
    for (i, &n) in [16, 28, 44, 64, 90, 130, 190, 280].iter().enumerate() {
        out.push(device_driver(n, 300 + i as u64));
    }
    // 7 cache-coherence benchmarks.
    for &(c, s) in &[
        (4, 4),
        (6, 8),
        (10, 12),
        (14, 18),
        (16, 20),
        (18, 24),
        (20, 26),
    ] {
        out.push(cache_coherence(c, s));
    }
    // 8 load-store-unit benchmarks.
    for (i, &n) in [3, 5, 7, 9, 12, 15, 19, 24].iter().enumerate() {
        out.push(load_store_unit(n, 400 + i as u64));
    }
    // 10 invariant-checking benchmarks (the paper's Figure 5 group).
    for &(t, d) in &[
        (6, 2),
        (7, 2),
        (8, 2),
        (9, 2),
        (10, 2),
        (10, 1),
        (11, 1),
        (12, 1),
        (13, 1),
        (14, 1),
    ] {
        out.push(ooo_invariant(t, d));
    }
    debug_assert_eq!(out.len(), 49);
    out
}

/// The 16-benchmark training sample (at least one per problem domain),
/// mirroring the sample the paper used in §3 and §4.1.
pub fn training_sample() -> Vec<Benchmark> {
    vec![
        pipeline(3, 2, 1001),
        pipeline(8, 3, 1002),
        pipeline(16, 4, 1003),
        translation_validation(40, 2, 1004),
        translation_validation(110, 3, 1005),
        translation_validation(220, 5, 1006),
        device_driver(20, 1007),
        device_driver(60, 1008),
        device_driver(150, 1009),
        cache_coherence(6, 8),
        cache_coherence(14, 18),
        load_store_unit(4, 1010),
        load_store_unit(9, 1011),
        load_store_unit(15, 1012),
        ooo_invariant(9, 2),
        ooo_invariant(12, 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_forty_nine_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 49);
        let invariant = s.iter().filter(|b| b.invariant_checking).count();
        assert_eq!(invariant, 10);
        assert_eq!(s.len() - invariant, 39);
    }

    #[test]
    fn suite_names_are_unique() {
        let s = suite();
        let names: std::collections::HashSet<&str> = s.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn suite_spans_two_orders_of_magnitude() {
        let s = suite();
        let sizes: Vec<usize> = s.iter().map(Benchmark::dag_size).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min >= 20, "smallest benchmark too small: {min}");
        assert!(max >= 1500, "largest benchmark too small: {max}");
        assert!(max / min.max(1) >= 20, "not enough spread: {min}..{max}");
    }

    #[test]
    fn training_sample_is_sixteen_and_covers_domains() {
        let s = training_sample();
        assert_eq!(s.len(), 16);
        let domains: std::collections::HashSet<Domain> = s.iter().map(|b| b.domain).collect();
        assert!(domains.len() >= 6);
    }

    #[test]
    fn every_constructed_benchmark_claims_validity() {
        for b in suite() {
            assert_eq!(b.expected, Some(true), "{}", b.name);
        }
    }
}
