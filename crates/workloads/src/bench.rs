//! Benchmark descriptors and shared helpers.

use sufsat_suf::{TermId, TermManager};

/// The problem domains the paper drew its 49 benchmarks from (§3).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum Domain {
    /// 5-stage DLX-style pipeline correctness (Burch–Dill).
    Pipeline,
    /// Out-of-order processor invariant checking (the paper's
    /// "invariant checking" group, Figure 5).
    OooInvariant,
    /// Parameterized cache-coherence protocol verification.
    CacheCoherence,
    /// Industrial load-store unit.
    LoadStoreUnit,
    /// Device-driver safety properties (BLAST-style).
    DeviceDriver,
    /// Translation validation (Code Validation tool style).
    TranslationValidation,
    /// Random SUF formulas (testing fuel; not part of the paper suite).
    Random,
}

impl Domain {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Domain::Pipeline => "dlx",
            Domain::OooInvariant => "ooo",
            Domain::CacheCoherence => "cache",
            Domain::LoadStoreUnit => "lsu",
            Domain::DeviceDriver => "driver",
            Domain::TranslationValidation => "tv",
            Domain::Random => "rand",
        }
    }
}

/// One synthetic benchmark: a formula in its own term manager plus
/// metadata mirroring the paper's categorization.
///
/// `Clone` deep-copies the term manager, so a clone can be decided on
/// another thread without touching the original.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Name, e.g. `dlx-04`.
    pub name: String,
    /// Source domain.
    pub domain: Domain,
    /// Whether the benchmark belongs to the paper's invariant-checking
    /// group (10 of 49; Figure 5).
    pub invariant_checking: bool,
    /// The term manager owning the formula.
    pub tm: TermManager,
    /// The validity query.
    pub formula: TermId,
    /// Known validity, when the construction fixes it.
    pub expected: Option<bool>,
}

impl Benchmark {
    /// DAG node count (the paper's size measure).
    pub fn dag_size(&self) -> usize {
        self.tm.dag_size(self.formula)
    }
}

/// Builds a symbolic-memory read over a write history via
/// [`sufsat_suf::Memory`]: `read(writes, addr)` unfolds to the ITE chain
/// `ITE(addr = aₙ, vₙ, … ITE(addr = a₁, v₁, mem(addr)))`.
pub(crate) fn mem_read(
    tm: &mut TermManager,
    mem: sufsat_suf::FunSym,
    writes: &[(TermId, TermId)],
    addr: TermId,
) -> TermId {
    let mut out = tm.mk_app(mem, vec![addr]);
    for &(a, v) in writes {
        let cond = tm.mk_eq(addr, a);
        out = tm.mk_ite_int(cond, v, out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_read_builds_ite_chain() {
        let mut tm = TermManager::new();
        let mem = tm.declare_fun("mem", 1);
        let a1 = tm.int_var("a1");
        let v1 = tm.int_var("v1");
        let b = tm.int_var("b");
        let r = mem_read(&mut tm, mem, &[(a1, v1)], b);
        let s = sufsat_suf::print_term(&tm, r);
        assert!(s.contains("ite") && s.contains("mem"), "{s}");
    }

    #[test]
    fn domain_labels_are_distinct() {
        let labels = [
            Domain::Pipeline.label(),
            Domain::OooInvariant.label(),
            Domain::CacheCoherence.label(),
            Domain::LoadStoreUnit.label(),
            Domain::DeviceDriver.label(),
            Domain::TranslationValidation.label(),
            Domain::Random.label(),
        ];
        let set: std::collections::HashSet<&str> = labels.iter().copied().collect();
        assert_eq!(set.len(), labels.len());
    }
}
