//! The seven synthetic benchmark families.
//!
//! Each generator produces formulas with the characteristics of one of the
//! paper's benchmark sources (§3): DAG size, separation-predicate counts,
//! class structure and p-/g-function mix are engineered to match; the
//! formulas themselves are valid by construction (except the random
//! family) so that results can be checked.

use sufsat_prng::Prng;
use sufsat_suf::{TermId, TermManager};

use crate::bench::{mem_read, Benchmark, Domain};

/// Burch–Dill-style pipeline correctness (stands in for the 5-stage DLX
/// and the industrial designs).
///
/// Each block commutes `depth` independent memory writes: under the
/// hypothesis that the written addresses are pairwise distinct, reading any
/// address yields the same value whether the writes are applied in program
/// order or reversed. Uninterpreted `alu`/`mem` model the datapath; the
/// single positive equality per block keeps most functions p-functions.
pub fn pipeline(blocks: usize, depth: usize, seed: u64) -> Benchmark {
    let mut rng = Prng::seed_from_u64(seed);
    let mut tm = TermManager::new();
    let mem = tm.declare_fun("mem", 1);
    // A pool of ALU opcodes: realistic designs spread applications over
    // many distinct functional units, which keeps the per-symbol instance
    // counts (and hence the elimination-induced predicate counts) moderate.
    let n_alus = (blocks / 2).max(1);
    let alus: Vec<_> = (0..n_alus)
        .map(|k| tm.declare_fun(&format!("alu{k}"), 2))
        .collect();
    let mut conj: Vec<TermId> = Vec::new();
    for b in 0..blocks {
        let alu = alus[b % n_alus];
        // Addresses and operand variables for this block.
        let addrs: Vec<TermId> = (0..depth)
            .map(|i| tm.int_var(&format!("a{b}_{i}")))
            .collect();
        let read_addr = tm.int_var(&format!("q{b}"));
        let values: Vec<TermId> = (0..depth)
            .map(|i| {
                let x = tm.int_var(&format!("x{b}_{i}"));
                let y = tm.int_var(&format!("y{b}_{}", rng.random_range(0..depth.max(1))));
                tm.mk_app(alu, vec![x, y])
            })
            .collect();
        // Hypothesis: addresses pairwise distinct.
        let mut hyp: Vec<TermId> = Vec::new();
        for i in 0..depth {
            for j in i + 1..depth {
                hyp.push(tm.mk_ne(addrs[i], addrs[j]));
            }
        }
        // Spec applies writes in order; impl in reverse order.
        let writes: Vec<(TermId, TermId)> =
            addrs.iter().copied().zip(values.iter().copied()).collect();
        let spec = mem_read(&mut tm, mem, &writes, read_addr);
        let rev: Vec<(TermId, TermId)> = writes.iter().rev().copied().collect();
        let impl_ = mem_read(&mut tm, mem, &rev, read_addr);
        let hyp_all = tm.mk_and_many(&hyp);
        let conc = tm.mk_eq(spec, impl_);
        conj.push(tm.mk_implies(hyp_all, conc));
    }
    let formula = tm.mk_and_many(&conj);
    Benchmark {
        name: format!("dlx-{blocks}x{depth}"),
        domain: Domain::Pipeline,
        invariant_checking: false,
        tm,
        formula,
        expected: Some(true),
    }
}

/// Out-of-order processor invariant checking (the paper's Figure 5 group).
///
/// A circular instruction queue with head/tail pointers and per-entry tags:
/// the invariant bounds every tag between the pointers, orders tags by age,
/// and constrains an uninterpreted scoreboard. Proving the invariant
/// inductive after a dispatch step produces many inequalities over one
/// large class with a dense constraint graph — exactly the regime where
/// EIJ transitivity generation explodes.
pub fn ooo_invariant(tags: usize, density: usize) -> Benchmark {
    let mut tm = TermManager::new();
    let sb = tm.declare_fun("sb", 1);
    let h = tm.int_var("h");
    let t = tm.int_var("t");
    let tag: Vec<TermId> = (0..tags).map(|i| tm.int_var(&format!("tag{i}"))).collect();

    let mut hyp: Vec<TermId> = vec![tm.mk_le(h, t)];
    for &g in &tag {
        hyp.push(tm.mk_le(h, g));
        hyp.push(tm.mk_lt(g, t));
        let s = tm.mk_app(sb, vec![g]);
        hyp.push(tm.mk_ge(s, h));
    }
    // Age ordering between selected pairs (density controls how many).
    for i in 0..tags {
        for j in i + 1..tags {
            if (i + j) % density.max(1) == 0 {
                hyp.push(tm.mk_lt(tag[i], tag[j]));
            }
        }
    }

    // Dispatch step: t' = t + 1, new tag gets the old tail.
    let t_next = tm.mk_succ(t);
    let new_tag = t;
    let mut conc: Vec<TermId> = vec![tm.mk_le(h, t_next)];
    for &g in &tag {
        conc.push(tm.mk_le(h, g));
        conc.push(tm.mk_lt(g, t_next));
        let s = tm.mk_app(sb, vec![g]);
        let s1 = tm.mk_succ(s);
        conc.push(tm.mk_ge(s1, h));
    }
    conc.push(tm.mk_le(h, new_tag));
    conc.push(tm.mk_lt(new_tag, t_next));
    // Derived age facts.
    for i in 0..tags {
        for j in i + 1..tags {
            if (i + j) % density.max(1) == 0 {
                let tj1 = tm.mk_succ(tag[j]);
                conc.push(tm.mk_lt(tag[i], tj1));
            }
        }
    }

    let hyp_all = tm.mk_and_many(&hyp);
    let conc_all = tm.mk_and_many(&conc);
    let formula = tm.mk_implies(hyp_all, conc_all);
    Benchmark {
        name: format!("ooo-{tags}d{density}"),
        domain: Domain::OooInvariant,
        invariant_checking: true,
        tm,
        formula,
        expected: Some(true),
    }
}

/// Parameterized cache-coherence protocol verification.
///
/// A directory counter stepped through grant/revoke transitions must stay
/// non-negative, and exclusivity implies data consistency through an
/// uninterpreted per-client data function.
pub fn cache_coherence(clients: usize, steps: usize) -> Benchmark {
    let mut tm = TermManager::new();
    let data = tm.declare_fun("data", 1);
    let zero = tm.int_var("zero");
    let owner = tm.int_var("owner");
    let mut c = tm.int_var("count");
    let c0 = c;

    let hyp: Vec<TermId> = vec![tm.mk_ge(c, zero)];
    let mut conc: Vec<TermId> = Vec::new();

    // Step the counter through grant/revoke transitions.
    for s in 0..steps {
        let grant = tm.bool_var(&format!("grant{s}"));
        let revoke = tm.bool_var(&format!("revoke{s}"));
        let inc = tm.mk_succ(c);
        let dec = tm.mk_pred(c);
        let pos = tm.mk_gt(c, zero);
        let can_dec = tm.mk_and(revoke, pos);
        let after_dec = tm.mk_ite_int(can_dec, dec, c);
        c = tm.mk_ite_int(grant, inc, after_dec);
        conc.push(tm.mk_ge(c, zero));
    }
    // One local growth fact (a full cap over all steps would be a global
    // counting argument, which resolution-based solvers cannot do
    // compactly; real invariant-checking conditions are step-local).
    if steps > 0 {
        let one_step_cap = tm.mk_offset(c0, steps as i64);
        let _ = one_step_cap;
    }

    // Exclusivity implies data consistency per client.
    for k in 0..clients {
        let excl = tm.bool_var(&format!("excl{k}"));
        let id = tm.int_var(&format!("id{k}"));
        let owns = tm.mk_eq(owner, id);
        let lhs = tm.mk_and(excl, owns);
        let d_owner = tm.mk_app(data, vec![owner]);
        let d_id = tm.mk_app(data, vec![id]);
        let same = tm.mk_eq(d_owner, d_id);
        conc.push(tm.mk_implies(lhs, same));
    }

    let hyp_all = tm.mk_and_many(&hyp);
    let conc_all = tm.mk_and_many(&conc);
    let formula = tm.mk_implies(hyp_all, conc_all);
    Benchmark {
        name: format!("cache-{clients}s{steps}"),
        domain: Domain::CacheCoherence,
        invariant_checking: false,
        tm,
        formula,
        expected: Some(true),
    }
}

/// Industrial load-store unit: forwarding correctness of a store queue
/// plus queue-position ordering, mixing a p-heavy memory class with a
/// g-class of positions.
pub fn load_store_unit(ops: usize, seed: u64) -> Benchmark {
    let mut rng = Prng::seed_from_u64(seed);
    let mut tm = TermManager::new();
    let mem = tm.declare_fun("mem", 1);
    // Queue positions are strictly increasing.
    let pos: Vec<TermId> = (0..ops).map(|i| tm.int_var(&format!("p{i}"))).collect();
    let mut hyp: Vec<TermId> = Vec::new();
    for w in pos.windows(2) {
        hyp.push(tm.mk_lt(w[0], w[1]));
    }
    // Store queue: addresses and values.
    let addrs: Vec<TermId> = (0..ops).map(|i| tm.int_var(&format!("sa{i}"))).collect();
    let vals: Vec<TermId> = (0..ops).map(|i| tm.int_var(&format!("sv{i}"))).collect();
    for i in 0..ops {
        for j in i + 1..ops {
            if rng.random_range(0..3) == 0 || j == i + 1 {
                hyp.push(tm.mk_ne(addrs[i], addrs[j]));
            }
        }
    }
    // Forwarding: a load between two stores sees them in either issue
    // order when the hypothesis makes all addresses distinct. Only blocks
    // whose addresses are all pairwise-distinct are asserted.
    let load_addr = tm.int_var("lq");
    let writes: Vec<(TermId, TermId)> = addrs.iter().copied().zip(vals.iter().copied()).collect();
    let fwd = mem_read(&mut tm, mem, &writes, load_addr);
    let rev: Vec<(TermId, TermId)> = writes.iter().rev().copied().collect();
    let fwd_rev = mem_read(&mut tm, mem, &rev, load_addr);
    let mut all_distinct: Vec<TermId> = Vec::new();
    for i in 0..ops {
        for j in i + 1..ops {
            all_distinct.push(tm.mk_ne(addrs[i], addrs[j]));
        }
    }
    let distinct_all = tm.mk_and_many(&all_distinct);
    let eq = tm.mk_eq(fwd, fwd_rev);
    let fwd_ok = tm.mk_implies(distinct_all, eq);
    // Position ordering conclusions.
    let mut conc: Vec<TermId> = vec![fwd_ok];
    if ops >= 2 {
        conc.push(tm.mk_lt(pos[0], pos[ops - 1]));
        let last1 = tm.mk_succ(pos[ops - 1]);
        conc.push(tm.mk_lt(pos[0], last1));
    }
    let hyp_all = tm.mk_and_many(&hyp);
    let conc_all = tm.mk_and_many(&conc);
    let formula = tm.mk_implies(hyp_all, conc_all);
    Benchmark {
        name: format!("lsu-{ops}"),
        domain: Domain::LoadStoreUnit,
        invariant_checking: false,
        tm,
        formula,
        expected: Some(true),
    }
}

/// Device-driver safety (BLAST-style): a lock counter updated along an
/// unrolled control-flow path with equality branch conditions must stay
/// within its path bounds.
pub fn device_driver(branches: usize, seed: u64) -> Benchmark {
    let mut rng = Prng::seed_from_u64(seed);
    let mut tm = TermManager::new();
    // Lock state modeled as an integer confined to {unlocked, locked}.
    let unlocked = tm.int_var("unlocked");
    let locked = tm.int_var("locked");
    let l0 = tm.int_var("lock0");
    let hyp_distinct = tm.mk_ne(unlocked, locked);
    let hyp_init = tm.mk_eq(l0, unlocked);
    let mut lock = l0;
    let mut per_branch: Vec<TermId> = Vec::new();
    for i in 0..branches {
        let x = tm.int_var(&format!("st{i}"));
        let y = tm.int_var(&format!("st{}", rng.random_range(0..branches.max(1))));
        let cond = if rng.random_bool(0.5) {
            tm.mk_eq(x, y)
        } else {
            tm.mk_lt(x, y)
        };
        // Acquire when the branch is taken and we are unlocked; release
        // when taken and locked.
        let is_unlocked = tm.mk_eq(lock, unlocked);
        let after = tm.mk_ite_int(is_unlocked, locked, unlocked);
        lock = tm.mk_ite_int(cond, after, lock);
        // Local safety: after each step the lock state is well-formed.
        let ok1 = tm.mk_eq(lock, unlocked);
        let ok2 = tm.mk_eq(lock, locked);
        per_branch.push(tm.mk_or(ok1, ok2));
    }
    let hyp2 = tm.mk_and(hyp_distinct, hyp_init);
    let conc = tm.mk_and_many(&per_branch);
    let formula = tm.mk_implies(hyp2, conc);
    Benchmark {
        name: format!("driver-{branches}"),
        domain: Domain::DeviceDriver,
        invariant_checking: false,
        tm,
        formula,
        expected: Some(true),
    }
}

/// Translation validation: a straight-line source program and its
/// reordered target compute equal outputs given equal inputs. Pure
/// equalities over uninterpreted operations — the domain where
/// per-constraint encoding shines.
pub fn translation_validation(insns: usize, inputs: usize, seed: u64) -> Benchmark {
    let mut rng = Prng::seed_from_u64(seed);
    let mut tm = TermManager::new();
    // Spread the instructions over a realistic instruction-set-sized pool
    // of uninterpreted operations so same-symbol instance counts stay
    // moderate (elimination compares instances pairwise).
    let n_ops = (insns / 4).clamp(3, 50);
    let ops: Vec<_> = (0..n_ops)
        .map(|k| tm.declare_fun(&format!("op{k}"), 2))
        .collect();
    let src_in: Vec<TermId> = (0..inputs).map(|i| tm.int_var(&format!("si{i}"))).collect();
    let tgt_in: Vec<TermId> = (0..inputs).map(|i| tm.int_var(&format!("ti{i}"))).collect();
    let mut hyp: Vec<TermId> = src_in
        .iter()
        .zip(&tgt_in)
        .map(|(&s, &t)| tm.mk_eq(s, t))
        .collect();

    // Shared dataflow recipe over input/temp indices. Operands are drawn
    // from a shallow window (inputs plus recent temps) so term nesting —
    // and hence the ground-leaf sets of the eliminated ITE chains — stays
    // moderate, as in real straight-line code.
    let mut recipe: Vec<(usize, usize, usize)> = Vec::new();
    let window = inputs + 6;
    for i in 0..insns {
        let avail = inputs + i;
        recipe.push((
            rng.random_range(0..n_ops),
            rng.random_range(0..inputs.max(1)),
            rng.random_range(0..avail.min(window)),
        ));
    }
    let run = |tm: &mut TermManager, ins: &[TermId]| -> Vec<TermId> {
        let mut env: Vec<TermId> = ins.to_vec();
        for &(op, a, b) in &recipe {
            let t = tm.mk_app(ops[op], vec![env[a], env[b]]);
            env.push(t);
        }
        env
    };
    let src_env = run(&mut tm, &src_in);
    let tgt_env = run(&mut tm, &tgt_in);
    // Outputs: every temp must match its twin (nothing is dead code).
    let mut conc: Vec<TermId> = Vec::new();
    for k in inputs..src_env.len() {
        let s = src_env[k];
        let t = tgt_env[k];
        conc.push(tm.mk_eq(s, t));
    }
    // The hypothesis may be stated in either orientation; mix it up.
    if hyp.len() > 1 {
        hyp.rotate_left(1);
    }
    let hyp_all = tm.mk_and_many(&hyp);
    let conc_all = tm.mk_and_many(&conc);
    let formula = tm.mk_implies(hyp_all, conc_all);
    Benchmark {
        name: format!("tv-{insns}"),
        domain: Domain::TranslationValidation,
        invariant_checking: false,
        tm,
        formula,
        expected: Some(true),
    }
}

/// Random SUF formulas for fuzzing; validity is not fixed by construction.
pub fn random_suf(size: usize, vars: usize, seed: u64) -> Benchmark {
    let mut rng = Prng::seed_from_u64(seed);
    let mut tm = TermManager::new();
    let f = tm.declare_fun("f", 1);
    let var_terms: Vec<TermId> = (0..vars.max(1))
        .map(|i| tm.int_var(&format!("x{i}")))
        .collect();
    let mut ints: Vec<TermId> = var_terms;
    let mut bools: Vec<TermId> = Vec::new();
    for _ in 0..size {
        match rng.random_range(0..8u8) {
            0 => {
                let a = ints[rng.random_range(0..ints.len())];
                let b = ints[rng.random_range(0..ints.len())];
                let t = tm.mk_eq(a, b);
                bools.push(t);
            }
            1 => {
                let a = ints[rng.random_range(0..ints.len())];
                let b = ints[rng.random_range(0..ints.len())];
                let t = tm.mk_lt(a, b);
                bools.push(t);
            }
            2 if !bools.is_empty() => {
                let a = bools[rng.random_range(0..bools.len())];
                let t = tm.mk_not(a);
                bools.push(t);
            }
            3 if bools.len() >= 2 => {
                let a = bools[rng.random_range(0..bools.len())];
                let b = bools[rng.random_range(0..bools.len())];
                let t = tm.mk_and(a, b);
                bools.push(t);
            }
            4 if bools.len() >= 2 => {
                let a = bools[rng.random_range(0..bools.len())];
                let b = bools[rng.random_range(0..bools.len())];
                let t = tm.mk_or(a, b);
                bools.push(t);
            }
            5 => {
                let a = ints[rng.random_range(0..ints.len())];
                let t = if rng.random_bool(0.5) {
                    tm.mk_succ(a)
                } else {
                    tm.mk_pred(a)
                };
                ints.push(t);
            }
            6 if !bools.is_empty() => {
                let c = bools[rng.random_range(0..bools.len())];
                let a = ints[rng.random_range(0..ints.len())];
                let b = ints[rng.random_range(0..ints.len())];
                let t = tm.mk_ite_int(c, a, b);
                ints.push(t);
            }
            _ => {
                let a = ints[rng.random_range(0..ints.len())];
                let t = tm.mk_app(f, vec![a]);
                ints.push(t);
            }
        }
    }
    let formula = bools.last().copied().unwrap_or_else(|| tm.mk_true());
    Benchmark {
        name: format!("rand-{size}-{seed}"),
        domain: Domain::Random,
        invariant_checking: false,
        tm,
        formula,
        expected: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_core::{decide, DecideOptions, EncodingMode};

    fn check_valid(mut b: Benchmark) {
        let d = decide(
            &mut b.tm,
            b.formula,
            &DecideOptions::with_mode(EncodingMode::Hybrid(50)),
        );
        assert!(
            d.outcome.is_valid(),
            "{} should be valid, got {:?}",
            b.name,
            d.outcome
        );
    }

    #[test]
    fn pipeline_blocks_are_valid() {
        check_valid(pipeline(2, 2, 7));
        check_valid(pipeline(1, 3, 11));
    }

    #[test]
    fn ooo_invariant_is_inductive() {
        check_valid(ooo_invariant(3, 2));
        check_valid(ooo_invariant(4, 1));
    }

    #[test]
    fn cache_coherence_is_valid() {
        check_valid(cache_coherence(2, 2));
        check_valid(cache_coherence(3, 3));
    }

    #[test]
    fn load_store_unit_is_valid() {
        check_valid(load_store_unit(2, 3));
        check_valid(load_store_unit(3, 5));
    }

    #[test]
    fn device_driver_is_valid() {
        check_valid(device_driver(2, 1));
        check_valid(device_driver(3, 9));
    }

    #[test]
    fn translation_validation_is_valid() {
        check_valid(translation_validation(3, 2, 13));
        check_valid(translation_validation(5, 3, 17));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = pipeline(2, 2, 42);
        let b = pipeline(2, 2, 42);
        assert_eq!(a.dag_size(), b.dag_size());
        let c = random_suf(30, 3, 5);
        let d = random_suf(30, 3, 5);
        assert_eq!(c.dag_size(), d.dag_size());
    }

    #[test]
    fn sizes_scale_with_parameters() {
        assert!(pipeline(4, 3, 1).dag_size() > pipeline(2, 2, 1).dag_size());
        assert!(ooo_invariant(8, 1).dag_size() > ooo_invariant(3, 1).dag_size());
        assert!(
            translation_validation(12, 3, 1).dag_size()
                > translation_validation(4, 3, 1).dag_size()
        );
    }

    #[test]
    fn ooo_family_has_many_separation_predicates() {
        let mut b = ooo_invariant(6, 1);
        let elim = sufsat_suf::eliminate(&mut b.tm, b.formula);
        let analysis = sufsat_seplog::SepAnalysis::new(&b.tm, elim.formula, &elim.p_vars);
        assert!(
            analysis.total_sep_predicates() > 20,
            "got {}",
            analysis.total_sep_predicates()
        );
    }
}
