//! End-to-end trace round-trip: run real benchmarks with the in-memory
//! ring sink installed, then validate the recorded trace and rebuild the
//! Figure-2-style table from it.
//!
//! The acceptance bar is exactness: the reconstructed CNF-clause and
//! conflict-clause counts must equal the live `DecideStats`-derived
//! values, not approximate them.

use std::sync::Arc;
use std::time::Duration;

use sufsat_bench::trace::{check_trace, render_report, report_rows, stage_summary};
use sufsat_bench::{run, Method};
use sufsat_obs::json::{parse, Json};
use sufsat_obs::RingSink;

/// One test function: the obs layer is process-global, so the record,
/// validate and report phases must run sequentially in one place.
#[test]
fn recorded_trace_validates_and_reproduces_the_figure_table() {
    let ring = Arc::new(RingSink::new(1 << 20));
    sufsat_obs::install(ring.clone());

    let timeout = Duration::from_secs(30);
    let methods = [Method::Sd, Method::Eij, Method::Hybrid(700)];
    let mut live = Vec::new();
    for method in methods {
        let mut bench = sufsat_workloads::pipeline(2, 2, 1);
        live.push(run(&mut bench, method, timeout));
    }
    sufsat_obs::emit_counter_records();
    sufsat_obs::shutdown();

    let text: String = ring
        .lines()
        .into_iter()
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(!text.is_empty(), "trace recorded nothing");

    // Schema validation accepts the real trace.
    let check = check_trace(&text).unwrap_or_else(|errs| {
        panic!("schema violations in live trace: {errs:#?}");
    });
    assert!(check.spans >= methods.len(), "one bench.run span per run");
    assert!(check.events >= methods.len(), "one bench.result per run");
    assert!(check.counters > 0, "final counter records present");

    // Every span name instrumented along the eager pipeline shows up.
    let seen: Vec<String> = text
        .lines()
        .filter_map(|l| parse(l).ok())
        .filter(|j| j.get("kind").and_then(Json::as_str) == Some("span_open"))
        .filter_map(|j| j.get("name").and_then(Json::as_str).map(str::to_owned))
        .collect();
    for name in [
        "bench.run",
        "core.decide",
        "suf.eliminate",
        "seplog.analyze",
        "encode",
        "core.load_cnf",
        "sat.solve",
    ] {
        assert!(seen.iter().any(|s| s == name), "missing span `{name}`");
    }

    // The reconstructed table matches the live DecideStats values
    // field-for-field.
    let rows = report_rows(&text).expect("report parses");
    assert_eq!(rows.len(), live.len());
    for r in &live {
        let row = rows
            .iter()
            .find(|row| row.bench == r.name && row.method == r.method.label())
            .unwrap_or_else(|| panic!("no row for {} / {}", r.name, r.method.label()));
        assert_eq!(row.cnf_clauses, r.cnf_clauses, "{}", row.method);
        assert_eq!(row.conflict_clauses, r.conflict_clauses, "{}", row.method);
        assert_eq!(row.encode_us, r.translate_time.as_micros() as u64);
        assert_eq!(row.sat_us, r.sat_time.as_micros() as u64);
        assert_eq!(row.verdict, "valid");
    }
    let rendered = render_report(&rows);
    for method in methods {
        assert!(rendered.contains(&method.label()), "{rendered}");
    }

    // Stage aggregation covers the pipeline spans and the SAT counters.
    let summary = stage_summary(&text).expect("aggregates");
    let json = parse(&summary).expect("stage summary is valid JSON");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("sufsat-stages-v1")
    );
    let spans = json.get("spans").expect("spans object");
    for name in ["bench.run", "core.decide", "encode", "sat.solve"] {
        let agg = spans
            .get(name)
            .unwrap_or_else(|| panic!("span `{name}` missing from aggregation"));
        assert!(agg.get("count").and_then(Json::as_u64).unwrap_or(0) >= 1);
    }
    let counters = json.get("counters").expect("counters object");
    assert!(
        counters.get("core.decides").and_then(Json::as_u64) == Some(live.len() as u64),
        "core.decides counter should equal the number of decide() calls"
    );
}
