//! Regenerates every table and figure of the paper's evaluation (§3–§5).
//!
//! ```text
//! paper-eval [--timeout SECS] [--septhold N] [--csv DIR] [--jobs N]
//!            [--trace FILE|stderr] [--preprocess]
//!            [fig2|fig3|fig4|fig5|fig6|fig-portfolio|fig-incremental|threshold|all|dump DIR]
//! paper-eval report <TRACE> [--stages FILE]
//! paper-eval check-trace <TRACE>
//! ```
//!
//! `--csv DIR` additionally writes machine-readable result tables
//! (`threshold.csv`, `fig2.csv`, …) under DIR. `--jobs N` fans independent
//! (benchmark, method) runs across N worker threads; results and printed
//! tables are identical to `--jobs 1` runs up to timing noise, because the
//! harness reassembles them in input order. Use `--jobs 1` (the default)
//! when wall-clock numbers must not contend for cores.
//!
//! `--trace` (or `SUFSAT_TRACE=<path|stderr>`) records the whole run as a
//! structured JSON-lines trace. `report` rebuilds the Figure-2-style
//! benchmark × method table from such a trace — the counts come from the
//! live `DecideStats`, so the reconstruction matches the run exactly —
//! and `--stages` additionally writes the aggregated per-stage timing
//! document (`BENCH_stages.json`, schema `sufsat-stages-v1`).
//! `check-trace` validates the wire schema and span nesting, exiting
//! non-zero on any drift.
//!
//! `--preprocess` turns on SatELite-style CNF preprocessing (subsumption,
//! self-subsuming resolution, bounded variable elimination) in the eager
//! procedures before SAT search; verdicts must be identical with and
//! without it (`ci.sh` enforces this on fig2).
//!
//! * `threshold` — §4.1: EIJ runtimes on the 16-benchmark training sample,
//!   variance-minimizing split, automatic `SEP_THOLD` (paper value: 700).
//! * `fig2` — SD vs EIJ effect on the SAT solver: CNF clauses, conflict
//!   clauses, SAT time, on the five largest non-invariant benchmarks.
//! * `fig3` — normalized total time vs separation-predicate count for SD
//!   and EIJ on the training sample (log–log series in the paper).
//! * `fig4` — HYBRID (auto threshold) vs SD and EIJ on the 39
//!   non-invariant benchmarks.
//! * `fig5` — the 10 invariant-checking benchmarks with `SEP_THOLD = 100`.
//! * `fig6` — HYBRID vs the SVC- and CVC-style baselines on the 39
//!   non-invariant benchmarks.
//! * `fig-incremental` — incremental BMC on one persistent session vs
//!   the from-scratch engine over the transition-system suite.
//!
//! Absolute numbers differ from a 2003 Pentium-IV with zChaff; the *shape*
//! (who wins, by what factor, where the crossover sits) is the
//! reproduction target — see EXPERIMENTS.md.

use std::time::Duration;

use sufsat_bench::{fmt_time, parallel_map, run_with, Method, RunConfig, RunResult};
use sufsat_core::{select_threshold, ThresholdSample};
use sufsat_workloads::{suite, training_sample, Benchmark};

struct Config {
    timeout: Duration,
    septhold: Option<usize>,
    csv_dir: Option<std::path::PathBuf>,
    jobs: usize,
    preprocess: bool,
}

impl Config {
    /// Per-run harness knobs derived from the CLI flags.
    fn run_config(&self) -> RunConfig {
        RunConfig {
            preprocess: self.preprocess,
            ..RunConfig::new(self.timeout)
        }
    }

    /// Appends `rows` (with a header) to `<csv_dir>/<name>.csv` when CSV
    /// output is enabled.
    fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        let Some(dir) = &self.csv_dir else { return };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("paper-eval: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        let mut text = String::from(header);
        text.push('\n');
        for row in rows {
            text.push_str(row);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("paper-eval: cannot write {}: {e}", path.display());
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut config = Config {
        timeout: Duration::from_secs(10),
        septhold: None,
        csv_dir: None,
        jobs: 1,
        preprocess: false,
    };
    let mut command = "all".to_owned();
    let mut args_rest: Option<String> = None;
    let mut stages_path: Option<String> = None;
    let mut trace_target: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--timeout" => {
                let v = args.next().expect("--timeout needs a value");
                config.timeout =
                    Duration::from_secs_f64(v.parse().expect("--timeout must be seconds"));
            }
            "--septhold" => {
                let v = args.next().expect("--septhold needs a value");
                config.septhold = Some(v.parse().expect("--septhold must be an integer"));
            }
            "--csv" => {
                let v = args.next().expect("--csv needs a directory");
                config.csv_dir = Some(v.into());
            }
            "--jobs" => {
                let v = args.next().expect("--jobs needs a value");
                config.jobs = v.parse().expect("--jobs must be an integer");
            }
            "--preprocess" => {
                config.preprocess = true;
            }
            "--trace" => {
                let v = args.next().expect("--trace needs a path or `stderr`");
                trace_target = Some(v);
            }
            "--stages" => {
                let v = args.next().expect("--stages needs a path");
                stages_path = Some(v);
            }
            other => {
                if command != "all" && args_rest.is_none() {
                    args_rest = Some(other.to_owned());
                } else {
                    command = other.to_owned();
                }
            }
        }
    }

    // Offline trace analysis needs no benchmark run (and no tracing).
    match command.as_str() {
        "report" => {
            let path = args_rest.expect("report needs a trace file");
            report_command(&path, stages_path.as_deref());
            return;
        }
        "check-trace" => {
            let path = args_rest.expect("check-trace needs a trace file");
            check_trace_command(&path);
            return;
        }
        _ => {}
    }

    match trace_target.as_deref() {
        Some(target) => {
            if let Err(e) = sufsat_obs::init_to(target) {
                eprintln!("paper-eval: cannot open trace target {target}: {e}");
                std::process::exit(2);
            }
        }
        None => {
            sufsat_obs::init_from_env();
        }
    }

    match command.as_str() {
        "threshold" => {
            let _ = threshold_experiment(&config, true);
        }
        "fig2" => fig2(&config),
        "dump" => {
            let dir = args_rest.unwrap_or_else(|| "benchmarks".to_owned());
            dump(&dir);
        }
        "fig3" => fig3(&config),
        "fig4" => fig4(&config),
        "fig5" => fig5(&config),
        "fig6" => fig6(&config),
        "fig-portfolio" => fig_portfolio(&config),
        "fig-incremental" => fig_incremental(&config),
        "all" => {
            let t = threshold_experiment(&config, true);
            let c = Config {
                timeout: config.timeout,
                septhold: Some(config.septhold.unwrap_or(t)),
                csv_dir: config.csv_dir.clone(),
                jobs: config.jobs,
                preprocess: config.preprocess,
            };
            fig2(&c);
            fig3(&c);
            fig4(&c);
            fig5(&c);
            fig6(&c);
            fig_portfolio(&c);
            fig_incremental(&c);
        }
        other => {
            eprintln!("unknown command `{other}`");
            std::process::exit(2);
        }
    }

    sufsat_obs::emit_counter_records();
    sufsat_obs::shutdown();
}

/// `report <TRACE> [--stages FILE]`: rebuilds the Figure-2-style table
/// from a recorded trace, optionally writing the aggregated stage timing
/// document.
fn report_command(path: &str, stages_path: Option<&str>) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("paper-eval: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let rows = match sufsat_bench::trace::report_rows(&text) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("paper-eval: malformed trace {path}: {e}");
            std::process::exit(1);
        }
    };
    if rows.is_empty() {
        println!("no bench.result events in {path} (was the run traced?)");
    } else {
        print!("{}", sufsat_bench::trace::render_report(&rows));
    }
    if let Some(stages) = stages_path {
        match sufsat_bench::trace::stage_summary(&text) {
            Ok(doc) => {
                if let Err(e) = std::fs::write(stages, doc) {
                    eprintln!("paper-eval: cannot write {stages}: {e}");
                    std::process::exit(2);
                }
                println!("wrote stage aggregation to {stages}");
            }
            Err(e) => {
                eprintln!("paper-eval: malformed trace {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `check-trace <TRACE>`: validates the JSON-lines schema and span
/// nesting; exits 1 on any violation.
fn check_trace_command(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("paper-eval: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match sufsat_bench::trace::check_trace(&text) {
        Ok(check) => {
            println!(
                "{path}: ok — {} records ({} spans, {} events, {} counters)",
                check.records, check.spans, check.events, check.counters
            );
        }
        Err(errors) => {
            eprintln!("{path}: {} schema violation(s)", errors.len());
            for e in errors.iter().take(20) {
                eprintln!("  {e}");
            }
            if errors.len() > 20 {
                eprintln!("  … and {} more", errors.len() - 20);
            }
            std::process::exit(1);
        }
    }
}

/// Writes every suite benchmark as a parseable problem file under `dir`.
fn dump(dir: &str) {
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir).expect("create benchmark directory");
    let mut index = String::from(
        "# sufsat benchmark suite\n\nGenerated with `paper-eval dump`; 49 synthetic\n\
         benchmarks mirroring the paper's suite (see DESIGN.md Section 3.7).\n\n\
         | file | domain | invariant-checking | DAG nodes |\n|---|---|---|---|\n",
    );
    for bench in suite() {
        let text = sufsat_suf::print_problem(&bench.tm, bench.formula);
        let file = format!("{}.suf", bench.name);
        std::fs::write(dir.join(&file), text).expect("write benchmark");
        index.push_str(&format!(
            "| {file} | {} | {} | {} |\n",
            bench.domain.label(),
            bench.invariant_checking,
            bench.dag_size()
        ));
    }
    std::fs::write(dir.join("README.md"), index).expect("write index");
    println!("wrote 49 benchmarks to {}", dir.display());
}

fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

fn non_invariant() -> Vec<Benchmark> {
    suite()
        .into_iter()
        .filter(|b| !b.invariant_checking)
        .collect()
}

fn invariant() -> Vec<Benchmark> {
    suite()
        .into_iter()
        .filter(|b| b.invariant_checking)
        .collect()
}

/// §4.1: automatic SEP_THOLD selection from EIJ runs on the training sample.
fn threshold_experiment(config: &Config, verbose: bool) -> usize {
    banner("Threshold selection (paper Section 4.1; paper derives 700)");
    let mut samples: Vec<ThresholdSample> = Vec::new();
    println!(
        "{:>14} {:>7} {:>10} {:>12}  status",
        "benchmark", "nodes", "sep-preds", "EIJ norm"
    );
    let results = parallel_map(training_sample(), config.jobs, |_, mut bench| {
        run_with(&mut bench, Method::Eij, config.run_config())
    });
    for r in results {
        let norm = r.normalized_time();
        samples.push(ThresholdSample {
            normalized_time: norm,
            sep_predicates: r.sep_predicates,
        });
        if verbose {
            println!(
                "{:>14} {:>7} {:>10} {:>12.3}  {}",
                r.name,
                r.dag_size,
                r.sep_predicates,
                norm,
                if r.completed { "ok" } else { "T/O" }
            );
        }
    }
    let threshold = select_threshold(&samples);
    println!("selected SEP_THOLD = {threshold}");
    let rows: Vec<String> = samples
        .iter()
        .map(|s| format!("{},{:.6}", s.sep_predicates, s.normalized_time))
        .collect();
    config.write_csv("threshold", "sep_predicates,eij_normalized_time", &rows);
    threshold
}

/// Figure 2: effect of the encoding on the SAT solver, five larger
/// non-invariant benchmarks.
fn fig2(config: &Config) {
    banner("Figure 2: SD vs EIJ effect on the SAT solver");
    println!(
        "{:>14} | {:>10} {:>10} | {:>9} {:>9} | {:>9} {:>9}",
        "benchmark", "CNF(SD)", "CNF(EIJ)", "confl(SD)", "confl(EIJ)", "sat(SD)", "sat(EIJ)"
    );
    // Like the paper's five "larger benchmarks", pick one large member of
    // five different problem domains (including an invariant-checking one
    // that both methods can still finish).
    let mut benches: Vec<Benchmark> = Vec::new();
    for domain in [
        sufsat_workloads::Domain::CacheCoherence,
        sufsat_workloads::Domain::DeviceDriver,
        sufsat_workloads::Domain::OooInvariant,
        sufsat_workloads::Domain::Pipeline,
        sufsat_workloads::Domain::TranslationValidation,
    ] {
        let picked = suite()
            .into_iter()
            .filter(|b| b.domain == domain)
            .filter(|b| {
                // For the invariant family take a mid-size member both
                // methods complete (the blow-up cases belong to Figure 5).
                domain != sufsat_workloads::Domain::OooInvariant || b.dag_size() < 260
            })
            .max_by_key(Benchmark::dag_size);
        if let Some(b) = picked {
            benches.push(b);
        }
    }
    let mut rows: Vec<String> = Vec::new();
    let pairs = parallel_map(benches, config.jobs, |_, mut bench| {
        let sd = run_with(&mut bench, Method::Sd, config.run_config());
        let eij = run_with(&mut bench, Method::Eij, config.run_config());
        (sd, eij)
    });
    for (sd, eij) in &pairs {
        println!(
            "{:>14} | {:>10} {:>10} | {:>9} {:>9} | {:>8.2}s {:>8.2}s",
            sd.name,
            sd.cnf_clauses,
            eij.cnf_clauses,
            sd.conflict_clauses,
            eij.conflict_clauses,
            sd.sat_time.as_secs_f64(),
            eij.sat_time.as_secs_f64(),
        );
        rows.push(format!(
            "{},{},{},{},{},{:.4},{:.4}",
            sd.name,
            sd.cnf_clauses,
            eij.cnf_clauses,
            sd.conflict_clauses,
            eij.conflict_clauses,
            sd.sat_time.as_secs_f64(),
            eij.sat_time.as_secs_f64()
        ));
    }
    config.write_csv(
        "fig2",
        "benchmark,cnf_sd,cnf_eij,conflicts_sd,conflicts_eij,sat_sd_s,sat_eij_s",
        &rows,
    );
    println!(
        "shape check: EIJ should have MORE CNF clauses but FEWER conflict \
         clauses and lower SAT time"
    );
}

/// Figure 3: normalized time vs separation-predicate count.
fn fig3(config: &Config) {
    banner("Figure 3: effect of #separation predicates on SD and EIJ");
    println!(
        "{:>14} {:>10} {:>14} {:>14}",
        "benchmark", "sep-preds", "SD s/Knodes", "EIJ s/Knodes"
    );
    let mut rows: Vec<(usize, String, RunResult, RunResult)> =
        parallel_map(training_sample(), config.jobs, |_, mut bench| {
            let sd = run_with(&mut bench, Method::Sd, config.run_config());
            let eij = run_with(&mut bench, Method::Eij, config.run_config());
            (sd.sep_predicates, sd.name.clone(), sd, eij)
        });
    rows.sort_by_key(|r| r.0);
    let csv_rows: Vec<String> = rows
        .iter()
        .map(|(preds, name, sd, eij)| {
            format!(
                "{name},{preds},{:.6},{},{:.6},{}",
                sd.normalized_time(),
                sd.completed,
                eij.normalized_time(),
                eij.completed
            )
        })
        .collect();
    config.write_csv(
        "fig3",
        "benchmark,sep_predicates,sd_norm_s_per_knode,sd_completed,eij_norm_s_per_knode,eij_completed",
        &csv_rows,
    );
    for (preds, name, sd, eij) in &rows {
        let fmt_norm = |r: &RunResult| {
            if r.completed {
                format!("{:14.3}", r.normalized_time())
            } else {
                format!("{:>11}>{:.1}", "T/O", r.normalized_time())
            }
        };
        println!(
            "{:>14} {:>10} {} {}",
            name,
            preds,
            fmt_norm(sd),
            fmt_norm(eij)
        );
    }
    println!(
        "shape check: EIJ normalized time should grow with sep-preds and \
         fall off a cliff (translation blow-up) at the high end"
    );
}

/// Figures 4 and 6 share the 39 non-invariant benchmarks.
///
/// One benchmark (all its methods) is one unit of parallel work; rows come
/// back in benchmark order whatever the completion order.
fn run_table(
    benches: Vec<Benchmark>,
    methods: &[Method],
    run_config: RunConfig,
    jobs: usize,
) -> Vec<Vec<RunResult>> {
    parallel_map(benches, jobs, |_, mut bench| {
        methods
            .iter()
            .map(|&m| run_with(&mut bench, m, run_config))
            .collect()
    })
}

fn print_table(methods: &[Method], table: &[Vec<RunResult>]) {
    print!("{:>14} {:>7}", "benchmark", "nodes");
    for m in methods {
        print!(" {:>12}", m.label());
    }
    println!();
    for row in table {
        print!("{:>14} {:>7}", row[0].name, row[0].dag_size);
        for r in row {
            print!("     {}", fmt_time(r));
        }
        println!();
    }
    // Aggregates: completions and wins.
    print!("{:>22}", "completed:");
    for (i, m) in methods.iter().enumerate() {
        let _ = m;
        let n = table.iter().filter(|row| row[i].completed).count();
        print!(" {:>12}", format!("{n}/{}", table.len()));
    }
    println!();
    print!("{:>22}", "fastest on:");
    for (i, _) in methods.iter().enumerate() {
        let wins = table
            .iter()
            .filter(|row| {
                row[i].completed
                    && row
                        .iter()
                        .enumerate()
                        .all(|(j, r)| j == i || !r.completed || row[i].total_time <= r.total_time)
            })
            .count();
        print!(" {:>12}", wins);
    }
    println!();
}

fn fig4(config: &Config) {
    let threshold = config.septhold.unwrap_or(sufsat_core::DEFAULT_SEP_THOLD);
    banner(&format!(
        "Figure 4: HYBRID({threshold}) vs SD and EIJ (39 non-invariant benchmarks)"
    ));
    let methods = [Method::Hybrid(threshold), Method::Sd, Method::Eij];
    let table = run_table(non_invariant(), &methods, config.run_config(), config.jobs);
    print_table(&methods, &table);
    write_table_csv(config, "fig4", &methods, &table);
    println!("shape check: HYBRID should complete everywhere and dominate overall");
}

fn write_table_csv(config: &Config, name: &str, methods: &[Method], table: &[Vec<RunResult>]) {
    let mut header = String::from("benchmark,nodes");
    for m in methods {
        header.push_str(&format!(",{0}_s,{0}_completed", m.label()));
    }
    let rows: Vec<String> = table
        .iter()
        .map(|row| {
            let mut line = format!("{},{}", row[0].name, row[0].dag_size);
            for r in row {
                line.push_str(&format!(
                    ",{:.4},{}",
                    r.total_time.as_secs_f64(),
                    r.completed
                ));
            }
            line
        })
        .collect();
    config.write_csv(name, &header, &rows);
}

fn fig5(config: &Config) {
    banner("Figure 5: invariant-checking benchmarks (SEP_THOLD = 100)");
    let methods = [Method::Hybrid(100), Method::Sd, Method::Eij];
    let table = run_table(invariant(), &methods, config.run_config(), config.jobs);
    print_table(&methods, &table);
    write_table_csv(config, "fig5", &methods, &table);
    println!("shape check: SD should win here; EIJ should time out on the large ones");
}

fn fig6(config: &Config) {
    let threshold = config.septhold.unwrap_or(sufsat_core::DEFAULT_SEP_THOLD);
    banner(&format!(
        "Figure 6: HYBRID({threshold}) vs SVC* and CVC* (39 non-invariant benchmarks)"
    ));
    let methods = [Method::Hybrid(threshold), Method::Svc, Method::Lazy];
    let table = run_table(non_invariant(), &methods, config.run_config(), config.jobs);
    print_table(&methods, &table);
    write_table_csv(config, "fig6", &methods, &table);
    println!(
        "shape check: baselines may win tiny conjunctive formulas; HYBRID \
         should scale to the large disjunctive ones"
    );
}

/// Beyond the paper: the parallel portfolio against its own lanes on the
/// 39 non-invariant benchmarks. The paper *predicts* the better encoding
/// with `SEP_THOLD`; the portfolio races all three and keeps whichever
/// answers first, so it should match the per-benchmark best single lane up
/// to racing overhead — without needing the threshold at all.
fn fig_portfolio(config: &Config) {
    let threshold = config.septhold.unwrap_or(sufsat_core::DEFAULT_SEP_THOLD);
    banner(&format!(
        "Portfolio: PORTFOLIO vs HYBRID({threshold}), SD, EIJ (39 non-invariant benchmarks)"
    ));
    let methods = [
        Method::Portfolio,
        Method::Hybrid(threshold),
        Method::Sd,
        Method::Eij,
    ];
    let table = run_table(non_invariant(), &methods, config.run_config(), config.jobs);
    print_table(&methods, &table);

    // Winner distribution: which lane carried each portfolio run.
    let mut wins: Vec<(String, usize)> = Vec::new();
    for row in &table {
        let Some(mode) = row[0].portfolio_winner else { continue };
        let label = format!("{mode:?}");
        match wins.iter_mut().find(|(l, _)| *l == label) {
            Some((_, n)) => *n += 1,
            None => wins.push((label, 1)),
        }
    }
    wins.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    print!("{:>22}", "lane wins:");
    for (label, n) in &wins {
        print!("  {label}={n}");
    }
    println!();

    let mut header = String::from("benchmark,nodes,winner_lane");
    for m in &methods {
        header.push_str(&format!(",{0}_s,{0}_completed", m.label()));
    }
    let rows: Vec<String> = table
        .iter()
        .map(|row| {
            let winner = row[0]
                .portfolio_winner
                .map_or_else(|| "none".to_owned(), |m| format!("{m:?}"));
            let mut line = format!("{},{},{winner}", row[0].name, row[0].dag_size);
            for r in row {
                line.push_str(&format!(
                    ",{:.4},{}",
                    r.total_time.as_secs_f64(),
                    r.completed
                ));
            }
            line
        })
        .collect();
    config.write_csv("fig-portfolio", &header, &rows);
    println!(
        "shape check: PORTFOLIO should complete everywhere and track the \
         per-benchmark best lane (small overhead when lanes share cores)"
    );
}

/// `fig-incremental`: incremental BMC (one persistent session across
/// depths) vs the from-scratch engine on the transition-system suite —
/// wall-clock, total SAT conflicts, and the session's reuse counters.
/// Verdicts must agree exactly; disagreement is a hard error.
fn fig_incremental(config: &Config) {
    use sufsat_core::{check_bounded_with_stats, BmcResult, DecideOptions};
    use sufsat_incremental::check_bounded_incremental_report;
    use sufsat_workloads::system_suite;

    banner("Incremental BMC: persistent session vs from-scratch, per system");
    let options = DecideOptions {
        timeout: Some(config.timeout),
        ..DecideOptions::default()
    };

    fn verdict_label(r: &BmcResult) -> String {
        match r {
            BmcResult::Bounded(b) => format!("safe@{b}"),
            BmcResult::CounterexampleAt { step, .. } => format!("cex@{step}"),
            BmcResult::Unknown { step, .. } => format!("unknown@{step}"),
        }
    }

    println!(
        "{:>12} {:>6} {:>9} | {:>10} {:>10} | {:>10} {:>10} {:>7} {:>7}",
        "system",
        "bound",
        "verdict",
        "scratch",
        "conflicts",
        "incr",
        "conflicts",
        "reused",
        "reenc",
    );
    let mut rows: Vec<String> = Vec::new();
    for bench in system_suite() {
        let mut tm_scratch = bench.tm.clone();
        let scratch_start = std::time::Instant::now();
        let (scratch, scratch_stats) =
            check_bounded_with_stats(&mut tm_scratch, &bench.system, bench.bound, &options);
        let scratch_time = scratch_start.elapsed();

        let mut tm_incr = bench.tm.clone();
        let incr_start = std::time::Instant::now();
        let (incr, report) =
            check_bounded_incremental_report(&mut tm_incr, &bench.system, bench.bound, &options);
        let incr_time = incr_start.elapsed();

        let agree = match (&scratch, &incr) {
            (BmcResult::Bounded(a), BmcResult::Bounded(b)) => a == b,
            (
                BmcResult::CounterexampleAt { step: a, .. },
                BmcResult::CounterexampleAt { step: b, .. },
            ) => a == b,
            (BmcResult::Unknown { .. }, BmcResult::Unknown { .. }) => true,
            _ => false,
        };
        assert!(
            agree,
            "{}: incremental verdict {} disagrees with from-scratch {}",
            bench.name,
            verdict_label(&incr),
            verdict_label(&scratch)
        );

        println!(
            "{:>12} {:>6} {:>9} | {:>10} {:>10} | {:>10} {:>10} {:>7} {:>7}",
            bench.name,
            bench.bound,
            verdict_label(&scratch),
            format!("{:.3}s", scratch_time.as_secs_f64()),
            scratch_stats.conflict_clauses,
            format!("{:.3}s", incr_time.as_secs_f64()),
            report.conflicts,
            report.reused_roots,
            report.reencodes,
        );
        rows.push(format!(
            "{},{},{},{:.6},{},{:.6},{},{},{},{}",
            bench.name,
            bench.bound,
            verdict_label(&scratch),
            scratch_time.as_secs_f64(),
            scratch_stats.conflict_clauses,
            incr_time.as_secs_f64(),
            report.conflicts,
            report.reused_roots,
            report.fresh_roots,
            report.reencodes,
        ));
    }
    config.write_csv(
        "fig-incremental",
        "system,bound,verdict,scratch_s,scratch_conflicts,incr_s,incr_conflicts,\
         reused_roots,fresh_roots,reencodes",
        &rows,
    );
    println!(
        "shape check: verdicts agree everywhere; the session should spend \
         fewer total conflicts than from-scratch once depth ≥ 3 (learnt \
         clauses and encodings carry across depths)"
    );
}
