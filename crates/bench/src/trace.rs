//! Trace-file analysis: schema validation, figure reconstruction and
//! stage aggregation over `sufsat-obs` JSON-lines traces.
//!
//! A trace produced with `SUFSAT_TRACE=out.jsonl` (or `--trace`) is a
//! complete flight recording of a harness run. This module turns it back
//! into the paper's artifacts without re-running anything:
//!
//! * [`check_trace`] — validates the wire schema (`paper-eval
//!   check-trace`): every line parses as a JSON object carrying `ts`,
//!   `kind`, `name` and `thread`, and span open/close records nest
//!   properly per thread. CI fails on any drift.
//! * [`report_rows`]/[`render_report`] — rebuilds the Figure-2-style
//!   benchmark × method table (CNF clauses, conflict clauses, encode
//!   time, SAT time, verdict) from `bench.result` events, which carry the
//!   live [`DecideStats`](sufsat_core::DecideStats) values verbatim.
//! * [`stage_summary`] — aggregates span durations and counters into the
//!   `BENCH_stages.json` document (`sufsat-stages-v1` schema).

use std::collections::HashMap;

use sufsat_obs::json::{escape_into, parse, Json};

/// Tallies from a validated trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total (non-empty) records.
    pub records: usize,
    /// `span_open`/`span_close` pairs.
    pub spans: usize,
    /// Point events.
    pub events: usize,
    /// Final counter records.
    pub counters: usize,
}

const KINDS: [&str; 4] = ["span_open", "span_close", "event", "counter"];

/// Validates the JSON-lines wire schema of a trace.
///
/// Checks, per line: the line parses as a JSON object; `ts` is a number;
/// `kind` is one of the four record kinds; `name` is a string; `thread`
/// is a number. Span records must carry a `span` id, closes must carry
/// `dur_us` and match the innermost open span of their thread, and every
/// opened span must be closed by the end of the trace.
///
/// Returns the tallies on success, or every violation found (with its
/// 1-based line number) on failure.
pub fn check_trace(text: &str) -> Result<TraceCheck, Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let mut check = TraceCheck::default();
    // Innermost-first open spans, per thread: (span id, line number).
    let mut open: HashMap<u64, Vec<(u64, usize)>> = HashMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let json = match parse(line) {
            Ok(json) => json,
            Err(e) => {
                errors.push(format!("line {lineno}: not valid JSON: {e}"));
                continue;
            }
        };
        if !matches!(json, Json::Obj(_)) {
            errors.push(format!("line {lineno}: record is not a JSON object"));
            continue;
        }
        check.records += 1;
        if json.get("ts").and_then(Json::as_f64).is_none() {
            errors.push(format!("line {lineno}: missing numeric `ts`"));
        }
        if json.get("name").and_then(Json::as_str).is_none() {
            errors.push(format!("line {lineno}: missing string `name`"));
        }
        let thread = json.get("thread").and_then(Json::as_u64);
        if thread.is_none() {
            errors.push(format!("line {lineno}: missing numeric `thread`"));
        }
        let Some(kind) = json.get("kind").and_then(Json::as_str) else {
            errors.push(format!("line {lineno}: missing string `kind`"));
            continue;
        };
        if !KINDS.contains(&kind) {
            errors.push(format!("line {lineno}: unknown kind `{kind}`"));
            continue;
        }
        match kind {
            "span_open" => {
                match json.get("span").and_then(Json::as_u64) {
                    Some(span) => {
                        if let Some(thread) = thread {
                            open.entry(thread).or_default().push((span, lineno));
                        }
                    }
                    None => errors.push(format!("line {lineno}: span_open without `span` id")),
                }
            }
            "span_close" => {
                check.spans += 1;
                if json.get("dur_us").and_then(Json::as_u64).is_none() {
                    errors.push(format!("line {lineno}: span_close without `dur_us`"));
                }
                match json.get("span").and_then(Json::as_u64) {
                    Some(span) => {
                        let stack = thread.and_then(|t| open.get_mut(&t));
                        match stack.and_then(Vec::pop) {
                            Some((top, _)) if top == span => {}
                            Some((top, open_line)) => errors.push(format!(
                                "line {lineno}: span_close {span} does not match innermost \
                                 open span {top} (opened line {open_line})"
                            )),
                            None => errors.push(format!(
                                "line {lineno}: span_close {span} with no open span on its thread"
                            )),
                        }
                    }
                    None => errors.push(format!("line {lineno}: span_close without `span` id")),
                }
            }
            "event" => {
                check.events += 1;
                check_event_fields(&json, lineno, &mut errors);
            }
            "counter" => check.counters += 1,
            _ => unreachable!(),
        }
    }
    for stack in open.values() {
        for (span, lineno) in stack {
            errors.push(format!("line {lineno}: span {span} opened but never closed"));
        }
    }
    if errors.is_empty() {
        Ok(check)
    } else {
        Err(errors)
    }
}

/// Field schemas of the known introspection events. Unknown event names
/// pass unchecked — the trace format is open — but once a producer emits
/// a `sat.progress`, `serve.slow_request` or `cache.*` record it must
/// carry the full field set consumers (dashboards, `sufsat top`, scrape
/// pipelines) rely on.
fn check_event_fields(json: &Json, lineno: usize, errors: &mut Vec<String>) {
    let Some(name) = json.get("name").and_then(Json::as_str) else {
        return;
    };
    let (numeric, strings): (&[&str], &[&str]) = match name {
        "sat.progress" => (
            &[
                "conflicts",
                "decisions",
                "propagations",
                "restarts",
                "trail_depth",
                "learnt_clauses",
                "arena_bytes",
                "conflicts_per_s",
            ],
            &[],
        ),
        "serve.slow_request" => (
            &["conn", "latency_us", "queue_wait_us", "conflicts"],
            &["op", "status"],
        ),
        "cache.hit" => (&["bytes"], &["fingerprint"]),
        "cache.miss" => (&[], &["fingerprint"]),
        "cache.insert" => (&["bytes", "entries"], &["fingerprint", "verdict"]),
        "cache.evict" => (&["bytes", "entries"], &["fingerprint"]),
        _ => return,
    };
    let fields = json.get("fields");
    for key in numeric {
        if fields.and_then(|f| f.get(key)).and_then(Json::as_u64).is_none() {
            errors.push(format!(
                "line {lineno}: `{name}` event missing numeric field `{key}`"
            ));
        }
    }
    for key in strings {
        if fields.and_then(|f| f.get(key)).and_then(Json::as_str).is_none() {
            errors.push(format!(
                "line {lineno}: `{name}` event missing string field `{key}`"
            ));
        }
    }
}

/// One row of the reconstructed benchmark × method table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportRow {
    /// Benchmark name.
    pub bench: String,
    /// Method column label (`SD`, `EIJ`, `HYBRID(700)`, …).
    pub method: String,
    /// `valid`, `invalid` or `unknown`.
    pub verdict: String,
    /// CNF clause count (Figure 2, exactly `DecideStats::cnf_clauses`).
    pub cnf_clauses: u64,
    /// Conflict clauses learnt (exactly `DecideStats::conflict_clauses`).
    pub conflict_clauses: u64,
    /// Translation/encode time in microseconds.
    pub encode_us: u64,
    /// SAT search time in microseconds.
    pub sat_us: u64,
}

/// Extracts the `bench.result` events of a trace, in emission order.
///
/// A (benchmark, method) pair measured more than once keeps its last
/// measurement, like a re-run overwriting a CSV row.
pub fn report_rows(text: &str) -> Result<Vec<ReportRow>, String> {
    let mut rows: Vec<ReportRow> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        if json.get("kind").and_then(Json::as_str) != Some("event")
            || json.get("name").and_then(Json::as_str) != Some("bench.result")
        {
            continue;
        }
        let fields = json
            .get("fields")
            .ok_or_else(|| format!("line {}: bench.result without fields", idx + 1))?;
        let get_str = |key: &str| -> Result<String, String> {
            fields
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("line {}: bench.result missing `{key}`", idx + 1))
        };
        let get_u64 = |key: &str| -> Result<u64, String> {
            fields
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: bench.result missing `{key}`", idx + 1))
        };
        let row = ReportRow {
            bench: get_str("bench")?,
            method: get_str("method")?,
            verdict: get_str("verdict")?,
            cnf_clauses: get_u64("cnf_clauses")?,
            conflict_clauses: get_u64("conflict_clauses")?,
            encode_us: get_u64("translate_us")?,
            sat_us: get_u64("sat_us")?,
        };
        match rows
            .iter_mut()
            .find(|r| r.bench == row.bench && r.method == row.method)
        {
            Some(slot) => *slot = row,
            None => rows.push(row),
        }
    }
    Ok(rows)
}

/// Renders the reconstructed rows as the paper's Figure-2-style table.
pub fn render_report(rows: &[ReportRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>14} {:>12} | {:>10} {:>10} | {:>10} {:>10} | {:>8}\n",
        "benchmark", "method", "CNF cls", "confl cls", "encode s", "SAT s", "verdict"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>14} {:>12} | {:>10} {:>10} | {:>10.3} {:>10.3} | {:>8}\n",
            row.bench,
            row.method,
            row.cnf_clauses,
            row.conflict_clauses,
            row.encode_us as f64 / 1e6,
            row.sat_us as f64 / 1e6,
            row.verdict
        ));
    }
    out.push_str(&format!(
        "{} runs across {} benchmarks\n",
        rows.len(),
        rows.iter()
            .map(|r| r.bench.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    ));
    out
}

/// Aggregated timing of one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageAgg {
    /// How many spans of this name closed.
    pub count: u64,
    /// Sum of their durations, microseconds.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

/// Aggregates a trace's span durations and final counters into the
/// `BENCH_stages.json` document (schema `sufsat-stages-v1`):
///
/// ```json
/// {"schema":"sufsat-stages-v1",
///  "spans":{"encode":{"count":5,"total_us":1200,"max_us":700}},
///  "counters":{"sat.conflicts":42}}
/// ```
///
/// Span names sort alphabetically, so the document is byte-stable for a
/// given trace. Counters keep the last record per name (counter records
/// are cumulative snapshots).
pub fn stage_summary(text: &str) -> Result<String, String> {
    let mut spans: Vec<(String, StageAgg)> = Vec::new();
    let mut counters: Vec<(String, f64)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let (Some(kind), Some(name)) = (
            json.get("kind").and_then(Json::as_str),
            json.get("name").and_then(Json::as_str),
        ) else {
            continue;
        };
        match kind {
            "span_close" => {
                let dur = json.get("dur_us").and_then(Json::as_u64).unwrap_or(0);
                let agg = match spans.iter_mut().find(|(n, _)| n == name) {
                    Some((_, agg)) => agg,
                    None => {
                        spans.push((name.to_owned(), StageAgg::default()));
                        &mut spans.last_mut().expect("just pushed").1
                    }
                };
                agg.count += 1;
                agg.total_us += dur;
                agg.max_us = agg.max_us.max(dur);
            }
            "counter" => {
                let value = json
                    .get("fields")
                    .and_then(|f| f.get("value"))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                match counters.iter_mut().find(|(n, _)| n == name) {
                    Some((_, v)) => *v = value,
                    None => counters.push((name.to_owned(), value)),
                }
            }
            _ => {}
        }
    }
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    counters.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::from("{\"schema\":\"sufsat-stages-v1\",\"spans\":{");
    for (i, (name, agg)) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(&mut out, name);
        out.push_str(&format!(
            ":{{\"count\":{},\"total_us\":{},\"max_us\":{}}}",
            agg.count, agg.total_us, agg.max_us
        ));
    }
    out.push_str("},\"counters\":{");
    for (i, (name, value)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(&mut out, name);
        // Counters are integral; render without a fractional part.
        out.push_str(&format!(":{}", *value as i64));
    }
    out.push_str("}}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"ts\":1,\"kind\":\"span_open\",\"name\":\"a\",\"span\":1,\"parent\":0,\"thread\":1}\n",
        "{\"ts\":2,\"kind\":\"event\",\"name\":\"e\",\"span\":1,\"thread\":1,\"fields\":{}}\n",
        "{\"ts\":3,\"kind\":\"span_close\",\"name\":\"a\",\"span\":1,\"parent\":0,\"thread\":1,\
         \"dur_us\":2}\n",
        "{\"ts\":4,\"kind\":\"counter\",\"name\":\"c\",\"thread\":1,\"fields\":{\"value\":7}}\n",
    );

    #[test]
    fn accepts_wellformed_trace() {
        let check = check_trace(GOOD).expect("valid trace");
        assert_eq!(
            check,
            TraceCheck {
                records: 4,
                spans: 1,
                events: 1,
                counters: 1
            }
        );
    }

    #[test]
    fn rejects_missing_keys_and_bad_nesting() {
        let missing = "{\"kind\":\"event\",\"name\":\"e\",\"thread\":1}\n";
        let errs = check_trace(missing).expect_err("ts missing");
        assert!(errs.iter().any(|e| e.contains("`ts`")), "{errs:?}");

        let unbalanced =
            "{\"ts\":1,\"kind\":\"span_open\",\"name\":\"a\",\"span\":1,\"thread\":1}\n";
        let errs = check_trace(unbalanced).expect_err("never closed");
        assert!(errs.iter().any(|e| e.contains("never closed")), "{errs:?}");

        let crossed = concat!(
            "{\"ts\":1,\"kind\":\"span_open\",\"name\":\"a\",\"span\":1,\"thread\":1}\n",
            "{\"ts\":2,\"kind\":\"span_open\",\"name\":\"b\",\"span\":2,\"thread\":1}\n",
            "{\"ts\":3,\"kind\":\"span_close\",\"name\":\"a\",\"span\":1,\"thread\":1,\
             \"dur_us\":2}\n",
            "{\"ts\":4,\"kind\":\"span_close\",\"name\":\"b\",\"span\":2,\"thread\":1,\
             \"dur_us\":2}\n",
        );
        let errs = check_trace(crossed).expect_err("crossed nesting");
        assert!(
            errs.iter().any(|e| e.contains("does not match innermost")),
            "{errs:?}"
        );

        let garbage = "not json at all\n";
        let errs = check_trace(garbage).expect_err("not JSON");
        assert!(errs.iter().any(|e| e.contains("not valid JSON")), "{errs:?}");
    }

    #[test]
    fn validates_introspection_event_schemas() {
        let good = concat!(
            "{\"ts\":1,\"kind\":\"event\",\"name\":\"sat.progress\",\"span\":0,\"thread\":1,\
             \"fields\":{\"conflicts\":10,\"decisions\":20,\"propagations\":99,\"restarts\":1,\
             \"trail_depth\":5,\"learnt_clauses\":3,\"arena_bytes\":4096,\"conflicts_per_s\":800}}\n",
            "{\"ts\":2,\"kind\":\"event\",\"name\":\"serve.slow_request\",\"span\":0,\"thread\":1,\
             \"fields\":{\"op\":\"decide\",\"status\":\"ok\",\"conn\":1,\"latency_us\":5000,\
             \"queue_wait_us\":10,\"conflicts\":42}}\n",
        );
        let check = check_trace(good).expect("both events validate");
        assert_eq!(check.events, 2);

        let truncated = "{\"ts\":1,\"kind\":\"event\",\"name\":\"sat.progress\",\"span\":0,\
                         \"thread\":1,\"fields\":{\"conflicts\":10}}\n";
        let errs = check_trace(truncated).expect_err("missing progress fields");
        assert!(errs.iter().any(|e| e.contains("`decisions`")), "{errs:?}");

        let untyped = "{\"ts\":1,\"kind\":\"event\",\"name\":\"serve.slow_request\",\"span\":0,\
                       \"thread\":1,\"fields\":{\"op\":7,\"status\":\"ok\",\"conn\":1,\
                       \"latency_us\":5,\"queue_wait_us\":1,\"conflicts\":0}}\n";
        let errs = check_trace(untyped).expect_err("op must be a string");
        assert!(errs.iter().any(|e| e.contains("`op`")), "{errs:?}");
    }

    #[test]
    fn validates_cache_event_schemas() {
        let good = concat!(
            "{\"ts\":1,\"kind\":\"event\",\"name\":\"cache.miss\",\"span\":0,\"thread\":1,\
             \"fields\":{\"fingerprint\":\"00ff\"}}\n",
            "{\"ts\":2,\"kind\":\"event\",\"name\":\"cache.insert\",\"span\":0,\"thread\":1,\
             \"fields\":{\"fingerprint\":\"00ff\",\"verdict\":\"valid\",\"bytes\":256,\
             \"entries\":1}}\n",
            "{\"ts\":3,\"kind\":\"event\",\"name\":\"cache.hit\",\"span\":0,\"thread\":1,\
             \"fields\":{\"fingerprint\":\"00ff\",\"bytes\":256}}\n",
            "{\"ts\":4,\"kind\":\"event\",\"name\":\"cache.evict\",\"span\":0,\"thread\":1,\
             \"fields\":{\"fingerprint\":\"00ff\",\"bytes\":256,\"entries\":0}}\n",
        );
        let check = check_trace(good).expect("all four cache events validate");
        assert_eq!(check.events, 4);

        let bare_hit = "{\"ts\":1,\"kind\":\"event\",\"name\":\"cache.hit\",\"span\":0,\
                        \"thread\":1,\"fields\":{\"bytes\":256}}\n";
        let errs = check_trace(bare_hit).expect_err("hit without fingerprint");
        assert!(errs.iter().any(|e| e.contains("`fingerprint`")), "{errs:?}");

        let bare_insert = "{\"ts\":1,\"kind\":\"event\",\"name\":\"cache.insert\",\"span\":0,\
                           \"thread\":1,\"fields\":{\"fingerprint\":\"00ff\",\"bytes\":256,\
                           \"entries\":1}}\n";
        let errs = check_trace(bare_insert).expect_err("insert without verdict");
        assert!(errs.iter().any(|e| e.contains("`verdict`")), "{errs:?}");
    }

    #[test]
    fn report_rows_keep_last_measurement() {
        let mk = |cnf: u64| {
            format!(
                "{{\"ts\":1,\"kind\":\"event\",\"name\":\"bench.result\",\"span\":0,\
                 \"thread\":1,\"fields\":{{\"bench\":\"b1\",\"method\":\"SD\",\
                 \"verdict\":\"valid\",\"completed\":true,\"total_us\":10,\
                 \"translate_us\":4,\"sat_us\":6,\"cnf_clauses\":{cnf},\
                 \"conflict_clauses\":2,\"sep_predicates\":3,\"dag_size\":9,\
                 \"winner\":\"none\"}}}}\n"
            )
        };
        let text = format!("{}{}", mk(100), mk(200));
        let rows = report_rows(&text).expect("parses");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cnf_clauses, 200);
        assert_eq!(rows[0].encode_us, 4);
        let rendered = render_report(&rows);
        assert!(rendered.contains("b1"));
        assert!(rendered.contains("200"));
        assert!(rendered.contains("valid"));
    }

    #[test]
    fn stage_summary_aggregates_and_is_stable() {
        let text = concat!(
            "{\"ts\":1,\"kind\":\"span_open\",\"name\":\"z\",\"span\":1,\"thread\":1}\n",
            "{\"ts\":2,\"kind\":\"span_close\",\"name\":\"z\",\"span\":1,\"thread\":1,\
             \"dur_us\":5}\n",
            "{\"ts\":3,\"kind\":\"span_open\",\"name\":\"z\",\"span\":2,\"thread\":1}\n",
            "{\"ts\":4,\"kind\":\"span_close\",\"name\":\"z\",\"span\":2,\"thread\":1,\
             \"dur_us\":11}\n",
            "{\"ts\":5,\"kind\":\"counter\",\"name\":\"k\",\"thread\":1,\
             \"fields\":{\"value\":3}}\n",
        );
        let summary = stage_summary(text).expect("aggregates");
        let json = parse(&summary).expect("summary is valid JSON");
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("sufsat-stages-v1")
        );
        let z = json.get("spans").and_then(|s| s.get("z")).expect("span z");
        assert_eq!(z.get("count").and_then(Json::as_u64), Some(2));
        assert_eq!(z.get("total_us").and_then(Json::as_u64), Some(16));
        assert_eq!(z.get("max_us").and_then(Json::as_u64), Some(11));
        assert_eq!(
            json.get("counters").and_then(|c| c.get("k")).and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(stage_summary(text).expect("deterministic"), summary);
    }
}
