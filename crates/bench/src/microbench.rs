//! A dependency-free micro-benchmark harness.
//!
//! The workspace builds in fully offline environments, so the `[[bench]]`
//! targets cannot use Criterion. This module provides the small subset the
//! benches need: named timing groups, adaptive iteration counts, and a
//! min/median/mean report.
//!
//! Bench binaries run in two modes:
//!
//! * **Smoke** (default, and what `cargo test` exercises): every benchmark
//!   body runs once, so the code paths stay compiled-and-checked without
//!   slowing the test suite down.
//! * **Full** (`SUFSAT_BENCH_FULL=1 cargo bench`): each benchmark is timed
//!   adaptively for roughly [`TARGET_TIME`] and a statistics line is
//!   printed.

use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark in full mode.
pub const TARGET_TIME: Duration = Duration::from_millis(300);

/// Maximum sample count per benchmark in full mode.
pub const MAX_SAMPLES: usize = 50;

/// Runs named benchmarks and prints a timing report.
#[derive(Debug)]
pub struct Runner {
    full: bool,
}

impl Runner {
    /// Chooses smoke or full mode from `SUFSAT_BENCH_FULL`.
    pub fn from_env() -> Runner {
        Runner {
            full: std::env::var_os("SUFSAT_BENCH_FULL").is_some(),
        }
    }

    /// A runner pinned to smoke mode (single iteration, no timing report).
    pub fn smoke() -> Runner {
        Runner { full: false }
    }

    /// Times `f`, printing `name` with min/median/mean over the samples.
    ///
    /// The closure's return value is consumed with a volatile read so the
    /// optimizer cannot delete the measured work.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        // Warm-up / smoke iteration, also used to size the sample count.
        let start = Instant::now();
        consume(f());
        let once = start.elapsed();
        if !self.full {
            println!("{name}: ok ({})", fmt_duration(once));
            return;
        }
        let iters = if once.is_zero() {
            MAX_SAMPLES
        } else {
            (TARGET_TIME.as_nanos() / once.as_nanos().max(1)) as usize
        }
        .clamp(1, MAX_SAMPLES);
        let mut samples: Vec<Duration> = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = Instant::now();
            consume(f());
            samples.push(start.elapsed());
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{name}: min {} / median {} / mean {} ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            samples.len()
        );
    }
}

/// Consumes a value so the compiler keeps the computation that produced it.
fn consume<R>(value: R) {
    let _ = std::hint::black_box(value);
}

fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_body_once() {
        let mut calls = 0;
        Runner::smoke().bench("counter", || calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12us");
        assert_eq!(fmt_duration(Duration::from_micros(4_500)), "4.50ms");
        assert_eq!(fmt_duration(Duration::from_millis(2_250)), "2.250s");
    }
}
