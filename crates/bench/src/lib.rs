//! Shared experiment runner for the paper-reproduction harness.
//!
//! The `paper-eval` binary and the micro-benches both drive decision
//! procedures through [`run`], which applies a wall-clock timeout (standing
//! in for the paper's 30-minute limit, scaled down) and collects the
//! measurements each figure reports. [`parallel_map`] fans independent
//! runs across a bounded worker pool (the harness's `--jobs` flag) while
//! keeping result order deterministic, and [`Method::Portfolio`] measures
//! the portfolio engine itself.

#![warn(missing_docs)]

pub mod microbench;
pub mod trace;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use sufsat_baselines::{decide_lazy, decide_svc, LazyOptions, SvcOptions};
use sufsat_core::{
    decide, decide_portfolio, DecideOptions, EncodingMode, Outcome, PortfolioOptions, StopReason,
};
use sufsat_workloads::Benchmark;

/// Procedures compared in the paper's figures.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum Method {
    /// Small-domain eager encoding.
    Sd,
    /// Per-constraint eager encoding.
    Eij,
    /// The hybrid with an explicit `SEP_THOLD`.
    Hybrid(usize),
    /// The earlier fixed hybrid rule.
    FixedHybrid,
    /// Lazy SAT-based procedure (CVC stand-in).
    Lazy,
    /// Case-splitting checker (SVC stand-in).
    Svc,
    /// Parallel portfolio racing HYBRID, SD and EIJ lanes
    /// ([`sufsat_core::decide_portfolio`]).
    Portfolio,
}

impl Method {
    /// Short column label.
    pub fn label(self) -> String {
        match self {
            Method::Sd => "SD".to_owned(),
            Method::Eij => "EIJ".to_owned(),
            Method::Hybrid(t) => format!("HYBRID({t})"),
            Method::FixedHybrid => "FIXED-HYB".to_owned(),
            Method::Lazy => "CVC*".to_owned(),
            Method::Svc => "SVC*".to_owned(),
            Method::Portfolio => "PORTFOLIO".to_owned(),
        }
    }
}

/// Measurements of one (benchmark, method) run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Benchmark name.
    pub name: String,
    /// Procedure used.
    pub method: Method,
    /// Whether the run answered within the timeout.
    pub completed: bool,
    /// Whether the answer was "valid".
    pub valid: Option<bool>,
    /// Total wall time (capped near the timeout when incomplete).
    pub total_time: Duration,
    /// Translation time (eager methods only).
    pub translate_time: Duration,
    /// SAT time (eager methods only).
    pub sat_time: Duration,
    /// CNF clause count (eager methods only; Figure 2).
    pub cnf_clauses: u64,
    /// Conflict clauses learnt (eager methods only; Figure 2).
    pub conflict_clauses: u64,
    /// Separation-predicate count of the formula (Figure 3's x-axis).
    pub sep_predicates: usize,
    /// DAG size of the input formula.
    pub dag_size: usize,
    /// Winning lane's encoding mode ([`Method::Portfolio`] only).
    pub portfolio_winner: Option<EncodingMode>,
}

impl RunResult {
    /// Seconds per thousand DAG nodes (Figure 3's y-axis).
    pub fn normalized_time(&self) -> f64 {
        self.total_time.as_secs_f64() / (self.dag_size.max(1) as f64 / 1000.0)
    }
}

/// Harness knobs shared by every method in a run (see [`run_with`]).
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Wall-clock budget per (benchmark, method) pair.
    pub timeout: Duration,
    /// Enable SatELite-style CNF preprocessing in the eager procedures
    /// ([`DecideOptions::preprocess`]); ignored by the lazy/SVC baselines.
    pub preprocess: bool,
}

impl RunConfig {
    /// A config with the given timeout and everything else off.
    pub fn new(timeout: Duration) -> RunConfig {
        RunConfig {
            timeout,
            preprocess: false,
        }
    }
}

/// Runs `method` on `bench` under `timeout`, checking the answer against
/// the benchmark's expected validity.
///
/// # Panics
///
/// Panics if the procedure answers and the answer contradicts the
/// benchmark's known validity — a soundness bug would invalidate every
/// measurement, so the harness refuses to continue past one.
pub fn run(bench: &mut Benchmark, method: Method, timeout: Duration) -> RunResult {
    run_with(bench, method, RunConfig::new(timeout))
}

/// [`run`] with explicit harness knobs.
///
/// # Panics
///
/// Like [`run`], panics on a soundness violation against the benchmark's
/// known validity.
pub fn run_with(bench: &mut Benchmark, method: Method, config: RunConfig) -> RunResult {
    let timeout = config.timeout;
    let label = method.label();
    let span = sufsat_obs::span_with!(
        "bench.run",
        bench = bench.name.as_str(),
        method = label.as_str(),
        preprocess = config.preprocess,
    );
    let start = Instant::now();
    let dag_size = bench.dag_size();
    let mut result = RunResult {
        name: bench.name.clone(),
        method,
        completed: false,
        valid: None,
        total_time: Duration::ZERO,
        translate_time: Duration::ZERO,
        sat_time: Duration::ZERO,
        cnf_clauses: 0,
        conflict_clauses: 0,
        sep_predicates: 0,
        dag_size,
        portfolio_winner: None,
    };
    let outcome = match method {
        Method::Sd | Method::Eij | Method::Hybrid(_) | Method::FixedHybrid => {
            let mode = match method {
                Method::Sd => EncodingMode::Sd,
                Method::Eij => EncodingMode::Eij,
                Method::Hybrid(t) => EncodingMode::Hybrid(t),
                Method::FixedHybrid => EncodingMode::FixedHybrid,
                _ => unreachable!(),
            };
            let mut options = DecideOptions::with_mode(mode);
            options.timeout = Some(timeout);
            options.preprocess = config.preprocess;
            // The translation-budget proxy for the paper's EIJ
            // translation-stage timeouts.
            options.trans_budget = 3_000_000;
            let d = decide(&mut bench.tm, bench.formula, &options);
            result.translate_time = d.stats.translate_time;
            result.sat_time = d.stats.sat_time;
            result.cnf_clauses = d.stats.cnf_clauses;
            result.conflict_clauses = d.stats.conflict_clauses;
            result.sep_predicates = d.stats.sep_predicates;
            d.outcome
        }
        Method::Lazy => {
            let options = LazyOptions {
                timeout: Some(timeout),
                ..LazyOptions::default()
            };
            let (outcome, _) = decide_lazy(&mut bench.tm, bench.formula, &options);
            outcome
        }
        Method::Svc => {
            let options = SvcOptions {
                timeout: Some(timeout),
                ..SvcOptions::default()
            };
            let (outcome, _) = decide_svc(&mut bench.tm, bench.formula, &options);
            outcome
        }
        Method::Portfolio => {
            let mut base = DecideOptions::default();
            base.timeout = Some(timeout);
            base.preprocess = config.preprocess;
            base.trans_budget = 3_000_000;
            let options = PortfolioOptions {
                base,
                ..PortfolioOptions::default()
            };
            let d = decide_portfolio(&mut bench.tm, bench.formula, &options);
            result.translate_time = d.stats.translate_time;
            result.sat_time = d.stats.sat_time;
            result.cnf_clauses = d.stats.cnf_clauses;
            result.conflict_clauses = d.stats.conflict_clauses;
            result.sep_predicates = d.stats.sep_predicates;
            result.portfolio_winner = d.winner_mode();
            d.outcome
        }
    };
    result.total_time = start.elapsed();
    match outcome {
        Outcome::Valid => {
            result.completed = true;
            result.valid = Some(true);
        }
        Outcome::Invalid(_) => {
            result.completed = true;
            result.valid = Some(false);
        }
        Outcome::Unknown(reason) => {
            result.completed = false;
            // Translation blow-up counts as a timeout, like the paper's
            // EIJ runs that "fail to go beyond the formula translation
            // stage".
            let _ = reason;
            result.total_time = result.total_time.max(timeout);
        }
    }
    if let (Some(expected), Some(got)) = (bench.expected, result.valid) {
        assert_eq!(
            got, expected,
            "soundness violation on benchmark {} with {:?}",
            bench.name, method
        );
    }
    if span.is_recording() {
        // The figure reconstruction (`paper-eval report`) reads exactly
        // this event; the counts are copied from `DecideStats` above, so
        // the reconstructed table matches the live run field-for-field.
        sufsat_obs::event!(
            "bench.result",
            bench = result.name.as_str(),
            method = label.as_str(),
            verdict = match result.valid {
                Some(true) => "valid",
                Some(false) => "invalid",
                None => "unknown",
            },
            completed = result.completed,
            total_us = result.total_time.as_micros() as u64,
            translate_us = result.translate_time.as_micros() as u64,
            sat_us = result.sat_time.as_micros() as u64,
            cnf_clauses = result.cnf_clauses,
            conflict_clauses = result.conflict_clauses,
            sep_predicates = result.sep_predicates,
            dag_size = result.dag_size,
            winner = result
                .portfolio_winner
                .map_or("none", |m| match m {
                    EncodingMode::Sd => "sd",
                    EncodingMode::Eij => "eij",
                    EncodingMode::Hybrid(_) => "hybrid",
                    EncodingMode::FixedHybrid => "fixed-hybrid",
                })
        );
    }
    result
}

/// Formats a run's total time as seconds with two decimals, or `T/O`.
pub fn fmt_time(r: &RunResult) -> String {
    if r.completed {
        format!("{:8.2}", r.total_time.as_secs_f64())
    } else {
        "     T/O".to_owned()
    }
}

/// Human-readable stop reason.
pub fn stop_label(reason: StopReason) -> &'static str {
    match reason {
        StopReason::TranslationBudget => "translation budget",
        StopReason::ConflictBudget => "conflict budget",
        StopReason::Timeout => "timeout",
        StopReason::Cancelled => "cancelled",
    }
}

/// Maps `items` through `f` on a bounded pool of `jobs` worker threads,
/// returning results in input order regardless of completion order.
///
/// `f` receives the item's input index alongside the item. With
/// `jobs <= 1` (or a single item) the map runs on the calling thread, so
/// `--jobs 1` harness runs measure exactly what a sequential harness
/// would.
pub fn parallel_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n.max(1));
    if workers <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Hand out items by index from a shared dispenser; each slot is taken
    // exactly once.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    thread::scope(|scope| {
        let (tx, rx) = mpsc::channel();
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot taken once");
                if tx.send((i, f(i, item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            results[i] = Some(r);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every item mapped"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_workloads::pipeline;

    #[test]
    fn runner_reports_measurements() {
        let mut bench = pipeline(2, 2, 1);
        let r = run(&mut bench, Method::Sd, Duration::from_secs(30));
        assert!(r.completed);
        assert_eq!(r.valid, Some(true));
        assert!(r.cnf_clauses > 0);
        assert!(r.dag_size > 10);
        assert!(r.normalized_time() >= 0.0);
    }

    #[test]
    fn all_methods_answer_small_benchmarks() {
        for method in [
            Method::Sd,
            Method::Eij,
            Method::Hybrid(700),
            Method::FixedHybrid,
            Method::Lazy,
            Method::Svc,
        ] {
            let mut bench = pipeline(1, 2, 2);
            let r = run(&mut bench, method, Duration::from_secs(30));
            assert!(r.completed, "{method:?}");
            assert_eq!(r.valid, Some(true), "{method:?}");
        }
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(Method::Hybrid(700).label(), "HYBRID(700)");
        assert_eq!(Method::Lazy.label(), "CVC*");
        assert_eq!(Method::Portfolio.label(), "PORTFOLIO");
    }

    #[test]
    fn portfolio_method_answers_and_reports_winner() {
        let mut bench = pipeline(2, 2, 1);
        let r = run(&mut bench, Method::Portfolio, Duration::from_secs(30));
        assert!(r.completed);
        assert_eq!(r.valid, Some(true));
        assert!(r.portfolio_winner.is_some());
        assert!(r.cnf_clauses > 0);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        for jobs in [1, 3, 8, 64] {
            let out = parallel_map(items.clone(), jobs, |i, x| {
                assert_eq!(i, x);
                x * x
            });
            let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "jobs {jobs}");
        }
        assert!(parallel_map(Vec::<usize>::new(), 4, |_, x| x).is_empty());
    }
}
