//! Micro-benchmarks of the CDCL SAT solver substrate, including the
//! heuristic ablations called out in DESIGN.md (§8.4).
//!
//! Runs in smoke mode by default; set `SUFSAT_BENCH_FULL=1` for timed
//! statistics (see `sufsat_bench::microbench`).

use sufsat_bench::microbench::Runner;
use sufsat_sat::{Config, Lit, SolveResult, Solver, Var};

/// Pigeonhole PHP(n+1, n) clauses.
#[allow(clippy::needless_range_loop)]
fn pigeonhole(solver: &mut Solver, holes: usize) {
    let pigeons = holes + 1;
    let grid: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| solver.new_var()).collect())
        .collect();
    for row in &grid {
        solver.add_clause(row.iter().map(|v| v.positive()));
    }
    for p1 in 0..pigeons {
        for p2 in p1 + 1..pigeons {
            for h in 0..holes {
                solver.add_clause([grid[p1][h].negative(), grid[p2][h].negative()]);
            }
        }
    }
}

/// A satisfiable pseudo-random 3-SAT instance at ratio ~4.0.
fn random_3sat(solver: &mut Solver, n_vars: usize, seed: u64) {
    let vars: Vec<Var> = (0..n_vars).map(|_| solver.new_var()).collect();
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Plant a solution so instances stay satisfiable.
    let planted: Vec<bool> = (0..n_vars).map(|_| next() & 1 == 1).collect();
    let n_clauses = n_vars * 4;
    for _ in 0..n_clauses {
        let mut lits = Vec::with_capacity(3);
        for _ in 0..3 {
            let v = (next() as usize) % n_vars;
            let pos = next() & 1 == 1;
            lits.push(Lit::new(vars[v], pos));
        }
        // Flip one literal to agree with the planted model if needed.
        if !lits
            .iter()
            .any(|l| planted[l.var().index()] == l.is_positive())
        {
            let v = lits[0].var();
            lits[0] = Lit::new(v, planted[v.index()]);
        }
        solver.add_clause(lits);
    }
}

fn bench_pigeonhole(r: &Runner) {
    for holes in [6usize, 7] {
        r.bench(&format!("sat/pigeonhole/php{holes}"), || {
            let mut solver = Solver::new();
            pigeonhole(&mut solver, holes);
            assert_eq!(solver.solve(), SolveResult::Unsat);
            solver.stats().conflicts
        });
    }
}

fn bench_random_3sat(r: &Runner) {
    for n in [100usize, 200] {
        r.bench(&format!("sat/random3sat/n{n}"), || {
            let mut solver = Solver::new();
            random_3sat(&mut solver, n, 42);
            assert_eq!(solver.solve(), SolveResult::Sat);
            solver.stats().decisions
        });
    }
}

/// Ablation: phase saving / restarts / DB reduction on-off (DESIGN.md §8.4).
fn bench_sat_ablation(r: &Runner) {
    let variants: Vec<(&str, Config)> = vec![
        ("default", Config::default()),
        (
            "no-restarts",
            Config {
                restarts: false,
                ..Config::default()
            },
        ),
        (
            "no-phase-saving",
            Config {
                phase_saving: false,
                ..Config::default()
            },
        ),
        (
            "no-reduce",
            Config {
                reduce_db: false,
                ..Config::default()
            },
        ),
    ];
    for (name, config) in variants {
        r.bench(&format!("sat/ablation/{name}"), || {
            let mut solver = Solver::with_config(config.clone());
            pigeonhole(&mut solver, 6);
            assert_eq!(solver.solve(), SolveResult::Unsat);
            solver.stats().conflicts
        });
    }
}

fn main() {
    let runner = Runner::from_env();
    bench_pigeonhole(&runner);
    bench_random_3sat(&runner);
    bench_sat_ablation(&runner);
}
