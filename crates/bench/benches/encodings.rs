//! Micro-benchmarks of the encoding pipeline: SD vs EIJ vs HYBRID per
//! benchmark family (the per-figure wall-clock measurements live in the
//! `paper-eval` binary; these benches track the encoder itself), plus the
//! ablations called out in DESIGN.md §8: Tseitin vs Plaisted–Greenbaum and
//! positive-equality exploitation on/off.
//!
//! Runs in smoke mode by default; set `SUFSAT_BENCH_FULL=1` for timed
//! statistics (see `sufsat_bench::microbench`).

use std::collections::HashSet;
use std::time::Duration;

use sufsat_bench::microbench::Runner;
use sufsat_bench::{run, Method};
use sufsat_core::{decide, CnfMode, DecideOptions, EncodingMode};
use sufsat_encode::{
    encode, generate_transitivity_ordered, BoundTable, Circuit, ElimOrder, EncodeOptions,
};
use sufsat_seplog::SepAnalysis;
use sufsat_suf::eliminate;
use sufsat_workloads::{ooo_invariant, pipeline, translation_validation};

fn bench_encode_modes(r: &Runner) {
    for mode in [
        EncodingMode::Sd,
        EncodingMode::Eij,
        EncodingMode::Hybrid(50),
    ] {
        // Pre-eliminate once; measure encoding alone.
        let mut bench = ooo_invariant(8, 2);
        let elim = eliminate(&mut bench.tm, bench.formula);
        let analysis = SepAnalysis::new(&bench.tm, elim.formula, &elim.p_vars);
        let opts = EncodeOptions {
            mode,
            ..EncodeOptions::default()
        };
        r.bench(&format!("encode/modes/{mode:?}"), || {
            let encoded = encode(&bench.tm, elim.formula, &analysis, &opts).expect("budget");
            encoded.stats.gates
        });
    }
}

fn bench_end_to_end(r: &Runner) {
    type MakeBench = fn() -> sufsat_workloads::Benchmark;
    let cases: Vec<(&str, MakeBench)> = vec![
        ("pipeline", || pipeline(4, 3, 7)),
        ("ooo", || ooo_invariant(8, 2)),
        ("tv", || translation_validation(30, 2, 7)),
    ];
    for (name, make) in cases {
        for method in [Method::Sd, Method::Eij, Method::Hybrid(50)] {
            r.bench(&format!("decide/end-to-end/{name}/{}", method.label()), || {
                let mut bench = make();
                let result = run(&mut bench, method, Duration::from_secs(60));
                result.completed
            });
        }
    }
}

/// Ablation: Tseitin vs Plaisted–Greenbaum CNF conversion (DESIGN.md §8.1).
fn bench_cnf_ablation(r: &Runner) {
    for cnf in [CnfMode::Tseitin, CnfMode::PlaistedGreenbaum] {
        r.bench(&format!("decide/cnf-ablation/{cnf:?}"), || {
            let mut bench = pipeline(6, 3, 7);
            let mut options = DecideOptions::with_mode(EncodingMode::Sd);
            options.cnf = cnf;
            let d = decide(&mut bench.tm, bench.formula, &options);
            assert!(d.outcome.is_valid());
            d.stats.cnf_clauses
        });
    }
}

/// Ablation: positive equality on/off — treating every constant as `V_g`
/// (DESIGN.md §8.3). "Off" forces the analysis to drop `V_p`.
fn bench_peq_ablation(r: &Runner) {
    for keep_p in [true, false] {
        let label = if keep_p {
            "positive-equality"
        } else {
            "all-general"
        };
        let mut bench = pipeline(6, 3, 9);
        let elim = eliminate(&mut bench.tm, bench.formula);
        let p_vars = if keep_p {
            elim.p_vars.clone()
        } else {
            HashSet::new()
        };
        let analysis = SepAnalysis::new(&bench.tm, elim.formula, &p_vars);
        let opts = EncodeOptions {
            mode: EncodingMode::Sd,
            ..EncodeOptions::default()
        };
        r.bench(&format!("encode/peq-ablation/{label}"), || {
            let encoded = encode(&bench.tm, elim.formula, &analysis, &opts).expect("budget");
            encoded.stats.gates
        });
    }
}

/// Ablation: elimination order for transitivity generation
/// (DESIGN.md §8.2).
fn bench_elim_order(r: &Runner) {
    // A dense difference-constraint class extracted from the invariant
    // family's shape.
    let mut tm = sufsat_suf::TermManager::new();
    let vars: Vec<sufsat_suf::VarSym> = (0..10).map(|i| tm.int_var_sym(&format!("v{i}"))).collect();
    for order in [ElimOrder::MinDegree, ElimOrder::InputOrder] {
        r.bench(&format!("trans/elim-order/{order:?}"), || {
            let mut circuit = Circuit::new();
            let mut table = BoundTable::new();
            for i in 0..vars.len() {
                for j in i + 1..vars.len() {
                    table.bound(&mut circuit, vars[i], vars[j], (i % 3) as i64 - 1);
                }
            }
            let clauses = generate_transitivity_ordered(
                &mut circuit,
                &mut table,
                &vars,
                10_000_000,
                None,
                None,
                order,
            )
            .expect("budget");
            clauses.len()
        });
    }
}

fn main() {
    let runner = Runner::from_env();
    bench_encode_modes(&runner);
    bench_end_to_end(&runner);
    bench_cnf_ablation(&runner);
    bench_peq_ablation(&runner);
    bench_elim_order(&runner);
}
