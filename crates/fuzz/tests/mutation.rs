//! Mutation test: the harness must catch a deliberately injected bug.
//!
//! The injected "encoder bug" is a wrapper around the SD pipeline that
//! flips every definitive verdict on formulas containing a `succ` node —
//! the kind of off-by-one an encoding change could plausibly introduce.
//! The differential oracle must flag the disagreement, and the shrinker
//! must reduce the reproducer to a handful of atoms.

use sufsat_core::{decide, DecideOptions, EncodingMode};
use sufsat_fuzz::{
    default_procedures, run_campaign_with, CampaignConfig, OracleOptions, Procedure,
    ProcedureAnswer, Verdict,
};
use sufsat_suf::{Term, TermManager, TermId};

fn contains_succ(tm: &TermManager, root: TermId) -> bool {
    tm.postorder(root)
        .into_iter()
        .any(|id| matches!(tm.term(id), Term::Succ(_)))
}

/// SD pipeline with the injected verdict-flip bug.
fn buggy_sd() -> Procedure {
    let opts = DecideOptions {
        mode: EncodingMode::Sd,
        ..DecideOptions::default()
    };
    Procedure {
        name: "eager:sd-mutated".to_string(),
        run: Box::new(move |tm, phi| {
            let mut tm2 = tm.clone();
            let decision = decide(&mut tm2, phi, &opts);
            let verdict = Verdict::from(&decision.outcome);
            let verdict = if contains_succ(tm, phi) {
                match verdict {
                    Verdict::Valid => Verdict::Invalid,
                    Verdict::Invalid => Verdict::Valid,
                    Verdict::Unknown => Verdict::Unknown,
                }
            } else {
                verdict
            };
            Ok(ProcedureAnswer {
                verdict,
                certified: false,
            })
        }),
    }
}

#[test]
fn injected_verdict_flip_is_caught_and_shrunk() {
    let oracle = OracleOptions {
        certify: false,
        include_baselines: false,
        include_portfolio: false,
        ..OracleOptions::default()
    };
    let mut procs = default_procedures(&oracle);
    procs.truncate(1); // keep only the honest eager:sd lane
    procs.push(buggy_sd());

    let config = CampaignConfig {
        seed: 7,
        cases: 60,
        oracle,
        metamorphic: false,
        max_failures: 1,
        ..CampaignConfig::default()
    };
    let summary = run_campaign_with(&config, &procs);

    assert!(
        !summary.failures.is_empty(),
        "the injected bug must be caught within {} cases",
        config.cases
    );
    let failure = &summary.failures[0];
    assert_eq!(failure.kind, "disagreement", "{failure:?}");
    assert!(
        failure.detail.contains("eager:sd-mutated"),
        "{failure:?}"
    );
    assert!(
        failure.atoms <= 5,
        "shrunk reproducer must have at most 5 atoms, got {}: {}",
        failure.atoms,
        failure.shrunk_text
    );
    // The shrunk formula still reproduces the mutated behaviour: it must
    // keep the `succ` node the bug keys on.
    let mut tm = TermManager::new();
    let shrunk =
        sufsat_suf::parse_problem(&mut tm, &failure.shrunk_text).expect("shrunk text parses");
    assert!(contains_succ(&tm, shrunk), "{}", failure.shrunk_text);
}
