//! Shrinker properties over randomly generated formulas: the predicate
//! (here: the decided verdict) is preserved, and the result never grows.

use sufsat_core::{decide, DecideOptions};
use sufsat_fuzz::{count_atoms, generate, shrink, GenConfig};
use sufsat_prng::Prng;
use sufsat_suf::{TermId, TermManager};

fn verdict(tm: &TermManager, phi: TermId) -> bool {
    let mut tm = tm.clone();
    decide(&mut tm, phi, &DecideOptions::default())
        .outcome
        .is_valid()
}

#[test]
fn shrinking_preserves_the_verdict_and_never_grows() {
    let cfg = GenConfig::default();
    for seed in 0..25u64 {
        let mut tm = TermManager::new();
        let mut rng = Prng::seed_from_u64(seed);
        let phi = generate(&mut tm, &mut rng, &cfg);
        let original_verdict = verdict(&tm, phi);
        let original_size = tm.dag_size(phi);
        let original_atoms = count_atoms(&tm, phi);

        let mut keeps_verdict =
            |tm: &TermManager, t: TermId| verdict(tm, t) == original_verdict;
        let shrunk = shrink(&mut tm, phi, &mut keeps_verdict, 300);

        assert_eq!(
            verdict(&tm, shrunk),
            original_verdict,
            "seed {seed}: verdict must be preserved"
        );
        assert!(
            tm.dag_size(shrunk) <= original_size,
            "seed {seed}: size must not grow"
        );
        assert!(
            count_atoms(&tm, shrunk) <= original_atoms,
            "seed {seed}: atom count must not grow"
        );
    }
}

#[test]
fn shrinking_a_fixed_verdict_collapses_to_a_constant() {
    // With a predicate every formula satisfies, greedy shrinking must
    // reach a minimal formula — a bare constant or single atom.
    let cfg = GenConfig::default();
    for seed in 0..10u64 {
        let mut tm = TermManager::new();
        let mut rng = Prng::seed_from_u64(seed);
        let phi = generate(&mut tm, &mut rng, &cfg);
        let mut anything = |_: &TermManager, _: TermId| true;
        let shrunk = shrink(&mut tm, phi, &mut anything, 5_000);
        assert!(
            tm.dag_size(shrunk) <= 2,
            "seed {seed}: got size {} ({})",
            tm.dag_size(shrunk),
            sufsat_suf::print_term(&tm, shrunk)
        );
    }
}
