//! Regression corpus replay: every checked-in seed file must keep the
//! whole panel in agreement, with certificates checking out.

use std::path::PathBuf;

use sufsat_fuzz::{default_procedures, read_reproducer, run_oracle, OracleOptions, Verdict};
use sufsat_suf::TermManager;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn checked_in_corpus_replays_cleanly() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "suf"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 3,
        "at least three corpus seeds must be checked in, found {files:?}"
    );

    let procs = default_procedures(&OracleOptions::default());
    for path in &files {
        let mut tm = TermManager::new();
        let phi = read_reproducer(&mut tm, path).expect("corpus file parses");
        let report = run_oracle(&tm, phi, &procs)
            .unwrap_or_else(|err| panic!("{}: oracle failure: {err}", path.display()));
        assert!(
            report.consensus.is_some(),
            "{}: panel must reach a definitive verdict",
            path.display()
        );
        assert_ne!(report.consensus, Some(Verdict::Unknown));
        assert!(
            report.certified_count() >= 7,
            "{}: eager + portfolio answers must be certified, got {}",
            path.display(),
            report.certified_count()
        );
    }
}
