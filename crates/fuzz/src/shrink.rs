//! Delta-debugging shrinker.
//!
//! Given a formula on which some predicate (the oracle, re-run with the
//! original failure kind) still fails, the shrinker greedily tries
//! single-node simplifications — dropping conjuncts, inlining ITE
//! branches, collapsing offset chains and applications, renaming symbols
//! to a canonical one — and keeps any replacement that both shrinks the
//! formula and preserves the failure. The result is a locally minimal
//! reproducer, typically a handful of atoms.

use std::collections::{HashMap, HashSet};

use sufsat_suf::{substitute, Term, TermId, TermManager};

/// Number of atomic formulas (comparisons, predicate applications and
/// Boolean constants) in `root` — the size the acceptance bar is stated
/// in ("shrunk to ≤ N atoms").
pub fn count_atoms(tm: &TermManager, root: TermId) -> usize {
    tm.postorder(root)
        .into_iter()
        .filter(|&id| {
            matches!(
                tm.term(id),
                Term::Eq(..) | Term::Lt(..) | Term::PApp(..) | Term::BoolVar(_)
            )
        })
        .count()
}

fn distinct_symbols(tm: &TermManager, root: TermId) -> usize {
    let mut ints = HashSet::new();
    let mut bools = HashSet::new();
    let mut funs = HashSet::new();
    let mut preds = HashSet::new();
    for id in tm.postorder(root) {
        match tm.term(id) {
            Term::IntVar(v) => {
                ints.insert(*v);
            }
            Term::BoolVar(b) => {
                bools.insert(*b);
            }
            Term::App(f, _) => {
                funs.insert(*f);
            }
            Term::PApp(p, _) => {
                preds.insert(*p);
            }
            _ => {}
        }
    }
    ints.len() + bools.len() + funs.len() + preds.len()
}

/// Lexicographic shrink metric: node count first, then symbol count, so
/// a rename that removes a symbol counts as progress even at equal size.
fn metric(tm: &TermManager, root: TermId) -> (usize, usize) {
    (tm.dag_size(root), distinct_symbols(tm, root))
}

/// Replacement candidates for one node, cheapest-looking first.
fn candidates(tm: &mut TermManager, root: TermId, node: TermId) -> Vec<TermId> {
    let mut out = Vec::new();
    match tm.term(node).clone() {
        Term::True | Term::False => {}
        Term::Not(a) => out.push(a),
        Term::And(a, b) | Term::Or(a, b) | Term::Implies(a, b) | Term::Iff(a, b) => {
            out.push(a);
            out.push(b);
        }
        Term::IteBool(_, t, e) => {
            out.push(t);
            out.push(e);
        }
        Term::IteInt(_, t, e) => {
            out.push(t);
            out.push(e);
        }
        Term::Succ(a) | Term::Pred(a) => out.push(a),
        Term::App(_, args) => out.extend(args),
        Term::PApp(..) | Term::BoolVar(_) | Term::Eq(..) | Term::Lt(..) => {
            let t = tm.mk_true();
            let f = tm.mk_false();
            out.push(t);
            out.push(f);
        }
        Term::IntVar(_) => {
            // Collapse onto the first variable of the formula, if distinct.
            let first = tm
                .postorder(root)
                .into_iter()
                .find(|&id| matches!(tm.term(id), Term::IntVar(_)));
            if let Some(first) = first {
                if first != node {
                    out.push(first);
                }
            }
        }
    }
    out
}

/// Shrinks `root` while `still_fails` keeps returning `true`.
///
/// `still_fails` is consulted on every candidate, so it should embed the
/// failure-kind check (a shrink step must not trade one bug for
/// another). Stops after `max_steps` accepted or rejected candidate
/// evaluations, whichever comes first — each evaluation re-runs the
/// whole procedure panel, so the budget bounds total shrink time.
///
/// Returns the smallest failing formula found (possibly `root` itself).
pub fn shrink(
    tm: &mut TermManager,
    root: TermId,
    still_fails: &mut dyn FnMut(&TermManager, TermId) -> bool,
    max_steps: usize,
) -> TermId {
    let mut current = root;
    let mut best = metric(tm, current);
    let mut steps = 0usize;
    loop {
        let mut improved = false;
        // Try larger nodes first: dropping a whole conjunct beats
        // nibbling at its leaves.
        let mut nodes = tm.postorder(current);
        nodes.reverse();
        'outer: for node in nodes {
            for replacement in candidates(tm, current, node) {
                if steps >= max_steps {
                    return current;
                }
                let mut map = HashMap::new();
                map.insert(node, replacement);
                let candidate = substitute(tm, current, &map);
                let candidate_metric = metric(tm, candidate);
                if candidate_metric >= best {
                    continue;
                }
                steps += 1;
                if still_fails(tm, candidate) {
                    current = candidate;
                    best = candidate_metric;
                    improved = true;
                    // The node set changed; restart the pass.
                    continue 'outer;
                }
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_suf::{parse_problem, print_term};

    #[test]
    fn atoms_are_counted_once_per_distinct_atom() {
        let mut tm = TermManager::new();
        let phi = parse_problem(
            &mut tm,
            "(vars x y) (preds (q 1)) (formula (and (< x y) (or (q x) (< x y))))",
        )
        .expect("parses");
        // `(< x y)` is interned once; q(x) is the second atom.
        assert_eq!(count_atoms(&tm, phi), 2);
    }

    #[test]
    fn shrink_isolates_the_failing_conjunct() {
        let mut tm = TermManager::new();
        // A big conjunction; pretend the "bug" is any formula mentioning q.
        let phi = parse_problem(
            &mut tm,
            "(vars x y z) (funs (f 1)) (preds (q 1)) (formula \
             (and (and (< x y) (< y z)) (and (q (f x)) (= (f y) z))))",
        )
        .expect("parses");
        let mut fails = |tm: &TermManager, t: TermId| {
            tm.postorder(t)
                .into_iter()
                .any(|id| matches!(tm.term(id), Term::PApp(..)))
        };
        assert!(fails(&tm, phi));
        let shrunk = shrink(&mut tm, phi, &mut fails, 10_000);
        assert!(fails(&tm, shrunk), "failure preserved");
        assert!(
            tm.dag_size(shrunk) < tm.dag_size(phi),
            "size reduced: {}",
            print_term(&tm, shrunk)
        );
        // Locally minimal here: exactly the q-application over one var.
        assert_eq!(count_atoms(&tm, shrunk), 1, "{}", print_term(&tm, shrunk));
    }

    #[test]
    fn shrink_respects_the_step_budget() {
        let mut tm = TermManager::new();
        let phi = parse_problem(
            &mut tm,
            "(vars x y z) (formula (and (< x y) (and (< y z) (< x z))))",
        )
        .expect("parses");
        let mut always = |_: &TermManager, _: TermId| true;
        let shrunk = shrink(&mut tm, phi, &mut always, 0);
        assert_eq!(shrunk, phi, "zero budget leaves the input untouched");
    }
}
