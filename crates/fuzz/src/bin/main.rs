//! `sufsat-fuzz` — differential fuzzing CLI.
//!
//! Typical runs:
//!
//! ```text
//! sufsat-fuzz --seed 1 --cases 1000 --corpus fuzz-corpus
//! sufsat-fuzz --replay fuzz-corpus/case-…-disagreement.suf
//! ```
//!
//! Exit status is 0 when every case passed, 1 when any failure was
//! found (reproducers are written to the corpus directory), 2 on usage
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use sufsat_fuzz::{
    default_procedures, read_reproducer, run_oracle, CampaignConfig, OracleOptions,
};
use sufsat_suf::TermManager;

const USAGE: &str = "\
sufsat-fuzz — differential fuzzing and self-checking oracle harness

USAGE:
    sufsat-fuzz [OPTIONS]
    sufsat-fuzz --replay <FILE>...

OPTIONS:
    --target <NAME>     what to fuzz: `oracle` (default) cross-checks the
                        decision procedures; `serve` throws malformed
                        frames at the sufsat-serve protocol parser
    --replay-hex <FILE> re-send a serve-protocol .hex reproducer (repeatable)
    --seed <N>          campaign seed (default 0)
    --cases <N>         number of generated cases (default 200)
    --ops <N>           construction steps per formula (default 18)
    --max-offset <N>    largest succ/pred offset magnitude (default 2)
    --timeout-ms <N>    per-procedure timeout (default 2000)
    --trans-budget <N>  transitivity-constraint budget (default 2000000)
    --corpus <DIR>      write reproducers here (default fuzz-corpus)
    --max-failures <N>  stop after N failures (default 10)
    --replay <FILE>     re-run the panel on a reproducer file (repeatable)
    --print-case <N>    print the generated problem for case N and exit
    --no-metamorphic    skip the metamorphic relation checks
    --no-baselines      drop the lazy/SVC baselines from the panel
    --no-portfolio      drop the portfolio engine from the panel
    --no-certify        skip model replay and DRAT/RUP proof checking
    --no-shrink         report failures without minimizing them
    --only <NAMES>      keep only the named procedures on the panel
                        (comma-separated, e.g. `--only cached` or
                        `--only eager:sd,cached`)
    --list-procedures   print the panel for these options and exit
    --quiet             no progress output
    -h, --help          this text
";

struct Cli {
    config: CampaignConfig,
    target: String,
    replay: Vec<PathBuf>,
    replay_hex: Vec<PathBuf>,
    print_case: Option<usize>,
    list_procedures: bool,
    only: Option<Vec<String>>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut config = CampaignConfig {
        cases: 200,
        corpus_dir: Some(PathBuf::from("fuzz-corpus")),
        log_every: 50,
        ..CampaignConfig::default()
    };
    let mut target = "oracle".to_owned();
    let mut replay = Vec::new();
    let mut replay_hex = Vec::new();
    let mut print_case = None;
    let mut list_procedures = false;
    let mut only = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--target" => {
                target = value("--target")?.clone();
                if target != "oracle" && target != "serve" {
                    return Err(format!("unknown target: {target}"));
                }
            }
            "--replay-hex" => replay_hex.push(PathBuf::from(value("--replay-hex")?)),
            "--seed" => config.seed = parse_num(value("--seed")?)?,
            "--cases" => config.cases = parse_num(value("--cases")?)?,
            "--ops" => config.gen.ops = parse_num(value("--ops")?)?,
            "--max-offset" => config.gen.max_offset = parse_num(value("--max-offset")?)?,
            "--timeout-ms" => {
                config.oracle.timeout = Duration::from_millis(parse_num(value("--timeout-ms")?)?)
            }
            "--trans-budget" => {
                config.oracle.trans_budget = parse_num(value("--trans-budget")?)?
            }
            "--corpus" => config.corpus_dir = Some(PathBuf::from(value("--corpus")?)),
            "--max-failures" => config.max_failures = parse_num(value("--max-failures")?)?,
            "--replay" => replay.push(PathBuf::from(value("--replay")?)),
            "--print-case" => print_case = Some(parse_num(value("--print-case")?)?),
            "--no-metamorphic" => config.metamorphic = false,
            "--no-baselines" => config.oracle.include_baselines = false,
            "--no-portfolio" => config.oracle.include_portfolio = false,
            "--no-certify" => config.oracle.certify = false,
            "--no-shrink" => config.shrink = false,
            "--only" => {
                only = Some(
                    value("--only")?
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect::<Vec<_>>(),
                );
            }
            "--list-procedures" => list_procedures = true,
            "--quiet" => config.log_every = 0,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Cli {
        config,
        target,
        replay,
        replay_hex,
        print_case,
        list_procedures,
        only,
    })
}

/// Builds the panel for `oracle` and applies the `--only` filter.
fn build_panel(
    oracle: &OracleOptions,
    only: Option<&[String]>,
) -> Result<Vec<sufsat_fuzz::Procedure>, String> {
    let mut procs = default_procedures(oracle);
    if let Some(names) = only {
        for name in names {
            if !procs.iter().any(|p| &p.name == name) {
                let panel: Vec<&str> = procs.iter().map(|p| p.name.as_str()).collect();
                return Err(format!(
                    "--only: no procedure named `{name}` (panel: {})",
                    panel.join(", ")
                ));
            }
        }
        procs.retain(|p| names.iter().any(|n| n == &p.name));
    }
    Ok(procs)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

fn replay_files(files: &[PathBuf], procs: &[sufsat_fuzz::Procedure]) -> ExitCode {
    let mut failed = false;
    for path in files {
        let mut tm = TermManager::new();
        let phi = match read_reproducer(&mut tm, path) {
            Ok(phi) => phi,
            Err(e) => {
                eprintln!("sufsat-fuzz: {e}");
                return ExitCode::from(2);
            }
        };
        match run_oracle(&tm, phi, procs) {
            Ok(report) => {
                let verdict = report
                    .consensus
                    .map_or("unknown".to_string(), |v| v.to_string());
                println!(
                    "{}: agreed ({verdict}, {} certified answers)",
                    path.display(),
                    report.certified_count()
                );
            }
            Err(err) => {
                failed = true;
                println!("{}: STILL FAILING — {err}", path.display());
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    sufsat_obs::init_from_env();
    let code = run();
    sufsat_obs::emit_counter_records();
    sufsat_obs::shutdown();
    code
}

fn run() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("sufsat-fuzz: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let procs = match build_panel(&cli.config.oracle, cli.only.as_deref()) {
        Ok(procs) => procs,
        Err(msg) => {
            eprintln!("sufsat-fuzz: {msg}");
            return ExitCode::from(2);
        }
    };

    if cli.list_procedures {
        for p in &procs {
            println!("{}", p.name);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(case_index) = cli.print_case {
        let seed = sufsat_fuzz::case_seed(cli.config.seed, case_index);
        let cfg = sufsat_fuzz::case_gen_config(&cli.config.gen, case_index);
        let mut tm = TermManager::new();
        let mut rng = sufsat_prng::Prng::seed_from_u64(seed);
        let phi = sufsat_fuzz::generate(&mut tm, &mut rng, &cfg);
        println!("; seed: {} case: {case_index}", cli.config.seed);
        println!("{}", sufsat_suf::print_problem(&tm, phi));
        return ExitCode::SUCCESS;
    }

    if !cli.replay_hex.is_empty() {
        let mut failed = false;
        for path in &cli.replay_hex {
            match sufsat_fuzz::replay_hex(path) {
                Ok(label) => println!("{}: ok ({label})", path.display()),
                Err(e) => {
                    failed = true;
                    println!("{}: STILL FAILING — {e}", path.display());
                }
            }
        }
        return if failed { ExitCode::from(1) } else { ExitCode::SUCCESS };
    }

    if !cli.replay.is_empty() {
        return replay_files(&cli.replay, &procs);
    }

    if cli.target == "serve" {
        let summary = sufsat_fuzz::run_serve_fuzz(&sufsat_fuzz::ServeFuzzConfig {
            seed: cli.config.seed,
            cases: cli.config.cases,
            corpus_dir: cli.config.corpus_dir.clone(),
            log_every: cli.config.log_every,
        });
        println!(
            "sufsat-fuzz[serve]: {} cases ({} error replies, {} hang-ups), {} probes ok, {} failures",
            summary.cases_run,
            summary.error_replies,
            summary.closed,
            summary.probes_ok,
            summary.failures.len()
        );
        for f in &summary.failures {
            println!("  case {}: {}", f.case_index, f.detail);
            if let Some(path) = &f.path {
                println!("    reproducer: {}", path.display());
            }
        }
        return if summary.clean() { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }

    let summary = sufsat_fuzz::run_campaign_with(&cli.config, &procs);
    println!(
        "sufsat-fuzz: {} cases ({} definitive), {} definitive answers, {} certified, \
         {} metamorphic checks, {} failures",
        summary.cases_run,
        summary.definitive_cases,
        summary.definitive_answers,
        summary.certified_answers,
        summary.meta_checks,
        summary.failures.len()
    );
    for f in &summary.failures {
        println!(
            "  case {} (seed {:#018x}) [{}]: {}",
            f.case_index, f.case_seed, f.kind, f.detail
        );
        println!("    shrunk ({} atoms): {}", f.atoms, f.shrunk_text);
        if let Some(path) = &f.path {
            println!("    reproducer: {}", path.display());
        }
    }
    if summary.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
