//! # sufsat-fuzz
//!
//! Differential fuzzing and self-checking oracle harness for the sufsat
//! decision procedures.
//!
//! A campaign generates seeded random SUF formulas ([`generate`]), runs
//! each through a panel of independent procedures — the six eager
//! encoding modes, the lazy and SVC baselines, the incremental session
//! and the parallel portfolio ([`default_procedures`]) — and
//! cross-checks the verdicts
//! ([`run_oracle`]). Answers are certified two-sidedly: SAT verdicts by
//! decoding the model and re-evaluating the *original* formula through
//! the reference evaluator, UNSAT verdicts by replaying the logged DRAT
//! proof through the RUP checker. Metamorphic transforms ([`meta`])
//! multiply every case: α-renaming and constant shifts must preserve the
//! verdict, and a valid formula's negation must be invalid.
//!
//! On any failure a delta-debugging shrinker ([`shrink`]) reduces the
//! formula while the failure reproduces, and a self-contained reproducer
//! (seed + printed formula) lands in the corpus directory ([`corpus`]).
//!
//! Everything is driven by the in-tree PRNG: a `(seed, case)` pair
//! reproduces the exact formula on any machine, fully offline.
//!
//! A second target ([`serve_target`], CLI `--target serve`) fuzzes the
//! `sufsat-serve` wire protocol instead: seeded malformed frames against
//! a live in-process server, with `.hex` reproducers.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::path::PathBuf;

use sufsat_prng::Prng;
use sufsat_suf::{TermId, TermManager};

pub mod corpus;
pub mod gen;
pub mod meta;
pub mod oracle;
pub mod serve_target;
pub mod shrink;

pub use corpus::{read_reproducer, reproducer_text, write_reproducer, ReproducerInfo};
pub use gen::{case_seed, generate, GenConfig};
pub use meta::{alpha_rename, shift_ints};
pub use oracle::{
    default_procedures, run_oracle, OracleFailure, OracleOptions, OracleReport, Procedure,
    ProcedureAnswer, Verdict,
};
pub use serve_target::{
    malformed_bytes, read_hex_reproducer, replay_hex, run_serve_fuzz, write_hex_reproducer,
    ServeFuzzConfig, ServeFuzzFailure, ServeFuzzSummary,
};
pub use shrink::{count_atoms, shrink};

/// Which metamorphic relation a failure came from.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum MetaKind {
    /// α-renaming every symbol must preserve the verdict.
    Rename,
    /// Shifting every integer constant by `k` must preserve the verdict.
    Shift(i64),
    /// A valid formula's negation must be invalid.
    Negate,
}

impl MetaKind {
    fn describe(self) -> String {
        match self {
            MetaKind::Rename => "alpha-rename".to_string(),
            MetaKind::Shift(k) => format!("shift({k})"),
            MetaKind::Negate => "negate".to_string(),
        }
    }
}

/// Checks one metamorphic relation on `phi`; `Some(detail)` on violation.
///
/// Relations are only checked between *definitive* consensus verdicts;
/// if either side timed out, nothing can be concluded.
pub fn meta_check(
    tm: &TermManager,
    phi: TermId,
    procs: &[Procedure],
    kind: MetaKind,
) -> Result<Option<String>, OracleFailure> {
    let base = run_oracle(tm, phi, procs)?;
    let Some(base_verdict) = base.consensus else {
        return Ok(None);
    };
    let mut tm = tm.clone();
    let (transformed, expected) = match kind {
        MetaKind::Rename => (alpha_rename(&mut tm, phi), base_verdict),
        MetaKind::Shift(k) => (shift_ints(&mut tm, phi, k), base_verdict),
        MetaKind::Negate => {
            if base_verdict != Verdict::Valid {
                // φ invalid says nothing definitive about ¬φ.
                return Ok(None);
            }
            (tm.mk_not(phi), Verdict::Invalid)
        }
    };
    let report = run_oracle(&tm, transformed, procs)?;
    match report.consensus {
        Some(v) if v != expected => Ok(Some(format!(
            "{}: base verdict {base_verdict}, transformed verdict {v} (expected {expected})",
            kind.describe()
        ))),
        _ => Ok(None),
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign seed; case `i` uses [`case_seed`]`(seed, i)`.
    pub seed: u64,
    /// Number of generated cases.
    pub cases: usize,
    /// Generator shape shared by all cases.
    pub gen: GenConfig,
    /// Panel configuration.
    pub oracle: OracleOptions,
    /// Also check the metamorphic relations on every agreeing case.
    pub metamorphic: bool,
    /// Shrink failing formulas before reporting them.
    pub shrink: bool,
    /// Candidate-evaluation budget per shrink.
    pub shrink_steps: usize,
    /// Where reproducers are written; `None` keeps them in memory only.
    pub corpus_dir: Option<PathBuf>,
    /// Stop the campaign after this many failures.
    pub max_failures: usize,
    /// Print progress to stderr every this many cases (0 = silent).
    pub log_every: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 0,
            cases: 100,
            gen: GenConfig::default(),
            oracle: OracleOptions::default(),
            metamorphic: true,
            shrink: true,
            shrink_steps: 400,
            corpus_dir: None,
            max_failures: 10,
            log_every: 0,
        }
    }
}

/// One recorded failure, fully reproducible from this struct alone.
#[derive(Debug, Clone)]
pub struct FailureRecord {
    /// Case index within the campaign.
    pub case_index: usize,
    /// The derived per-case seed.
    pub case_seed: u64,
    /// Stable failure kind (`disagreement`/`certificate`/`panic`/`metamorphic`).
    pub kind: String,
    /// Human-readable description.
    pub detail: String,
    /// The generated formula, printed.
    pub original_text: String,
    /// The shrunk formula, printed (equals `original_text` if unshrunk).
    pub shrunk_text: String,
    /// Atom count of the shrunk formula.
    pub atoms: usize,
    /// Reproducer file, when a corpus directory was configured.
    pub path: Option<PathBuf>,
}

/// Campaign tallies.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Cases generated and pushed through the panel.
    pub cases_run: usize,
    /// Cases on which at least one procedure answered definitively.
    pub definitive_cases: usize,
    /// Total definitive answers across all procedures and cases.
    pub definitive_answers: usize,
    /// Definitive answers that carried a checked certificate.
    pub certified_answers: usize,
    /// Definitive answers *without* a certificate, tallied per procedure
    /// name. On a panel without baselines, only the deliberately
    /// uncertified `eager:preprocess` and `cached` lenses may appear here —
    /// a regression that silently drops certification from any other
    /// procedure shows up as a new key.
    pub uncertified_by_procedure: BTreeMap<String, usize>,
    /// Metamorphic relation checks performed.
    pub meta_checks: usize,
    /// All failures, in discovery order.
    pub failures: Vec<FailureRecord>,
}

impl CampaignSummary {
    /// Whether the campaign finished without a single failure.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The generator shape the campaign uses for case `case_index`: every
/// fourth case is pure separation logic, so the separation-specific
/// paths get direct coverage too.
pub fn case_gen_config(base: &GenConfig, case_index: usize) -> GenConfig {
    if case_index % 4 == 3 {
        GenConfig {
            fun_arities: Vec::new(),
            pred_arities: Vec::new(),
            ..base.clone()
        }
    } else {
        base.clone()
    }
}

/// Runs a campaign with the standard panel from
/// [`default_procedures`]`(&config.oracle)`.
pub fn run_campaign(config: &CampaignConfig) -> CampaignSummary {
    let procs = default_procedures(&config.oracle);
    run_campaign_with(config, &procs)
}

/// Runs a campaign against a caller-supplied panel — the hook the
/// mutation tests use to inject a deliberately buggy procedure.
pub fn run_campaign_with(config: &CampaignConfig, procs: &[Procedure]) -> CampaignSummary {
    let mut summary = CampaignSummary::default();
    for case_index in 0..config.cases {
        let seed = case_seed(config.seed, case_index);
        let cfg = case_gen_config(&config.gen, case_index);
        let mut tm = TermManager::new();
        let mut rng = Prng::seed_from_u64(seed);
        let phi = generate(&mut tm, &mut rng, &cfg);
        summary.cases_run += 1;

        let failure: Option<(String, String)> = match run_oracle(&tm, phi, procs) {
            Err(err) => Some((err.kind().to_string(), err.to_string())),
            Ok(report) => {
                if report.consensus.is_some() {
                    summary.definitive_cases += 1;
                }
                for (name, a) in &report.answers {
                    if a.verdict == Verdict::Unknown {
                        continue;
                    }
                    summary.definitive_answers += 1;
                    if a.certified {
                        summary.certified_answers += 1;
                    } else {
                        *summary
                            .uncertified_by_procedure
                            .entry(name.clone())
                            .or_insert(0) += 1;
                    }
                }
                if config.metamorphic && report.consensus.is_some() {
                    let shift = rng.random_range(1i64..5);
                    let kinds = [MetaKind::Rename, MetaKind::Shift(shift), MetaKind::Negate];
                    let mut found = None;
                    for kind in kinds {
                        summary.meta_checks += 1;
                        match meta_check(&tm, phi, procs, kind) {
                            Ok(None) => {}
                            Ok(Some(detail)) => {
                                found = Some(("metamorphic".to_string(), detail));
                                break;
                            }
                            Err(err) => {
                                found = Some((err.kind().to_string(), err.to_string()));
                                break;
                            }
                        }
                    }
                    found
                } else {
                    None
                }
            }
        };

        if let Some((kind, detail)) = failure {
            let record =
                handle_failure(config, procs, &mut tm, phi, case_index, seed, kind, detail);
            summary.failures.push(record);
            if summary.failures.len() >= config.max_failures {
                eprintln!(
                    "sufsat-fuzz: stopping after {} failures",
                    summary.failures.len()
                );
                return summary;
            }
        }

        if config.log_every > 0 && (case_index + 1) % config.log_every == 0 {
            eprintln!(
                "sufsat-fuzz: {}/{} cases, {} definitive answers ({} certified), {} failures",
                case_index + 1,
                config.cases,
                summary.definitive_answers,
                summary.certified_answers,
                summary.failures.len()
            );
        }
    }
    summary
}

#[allow(clippy::too_many_arguments)]
fn handle_failure(
    config: &CampaignConfig,
    procs: &[Procedure],
    tm: &mut TermManager,
    phi: TermId,
    case_index: usize,
    seed: u64,
    kind: String,
    detail: String,
) -> FailureRecord {
    let original_text = sufsat_suf::print_problem(tm, phi);
    let shrunk = if config.shrink {
        let expect_kind = kind.clone();
        let mut still_fails = |tm: &TermManager, t: TermId| {
            failure_kind_of(tm, t, procs, config.metamorphic).as_deref() == Some(&expect_kind)
        };
        shrink::shrink(tm, phi, &mut still_fails, config.shrink_steps)
    } else {
        phi
    };
    let shrunk_text = sufsat_suf::print_problem(tm, shrunk);
    let atoms = count_atoms(tm, shrunk);
    let info = ReproducerInfo {
        campaign_seed: config.seed,
        case_index,
        kind: kind.clone(),
        detail: detail.clone(),
    };
    let path = config.corpus_dir.as_ref().and_then(|dir| {
        match write_reproducer(dir, &info, tm, shrunk, phi) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("sufsat-fuzz: could not write reproducer: {e}");
                None
            }
        }
    });
    FailureRecord {
        case_index,
        case_seed: seed,
        kind,
        detail,
        original_text,
        shrunk_text,
        atoms,
        path,
    }
}

/// Classifies the failure (if any) that `phi` triggers — the predicate
/// the shrinker preserves. Checks the plain oracle first, then (when
/// enabled) the metamorphic relations, mirroring campaign order.
pub fn failure_kind_of(
    tm: &TermManager,
    phi: TermId,
    procs: &[Procedure],
    metamorphic: bool,
) -> Option<String> {
    match run_oracle(tm, phi, procs) {
        Err(err) => Some(err.kind().to_string()),
        Ok(report) => {
            if !metamorphic || report.consensus.is_none() {
                return None;
            }
            for kind in [MetaKind::Rename, MetaKind::Shift(3), MetaKind::Negate] {
                match meta_check(tm, phi, procs, kind) {
                    Ok(None) => {}
                    Ok(Some(_)) => return Some("metamorphic".to_string()),
                    Err(err) => return Some(err.kind().to_string()),
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CampaignConfig {
        CampaignConfig {
            cases: 8,
            oracle: OracleOptions {
                include_baselines: false,
                include_portfolio: false,
                ..OracleOptions::default()
            },
            metamorphic: false,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn small_clean_campaign_certifies_every_definitive_answer() {
        let summary = run_campaign(&tiny_config());
        assert!(summary.clean(), "failures: {:#?}", summary.failures);
        assert_eq!(summary.cases_run, 8);
        assert!(summary.definitive_cases >= 6, "{summary:?}");
        // Every definitive answer carries a checked certificate except the
        // `eager:preprocess` lens (deliberately uncertified so bounded
        // variable elimination is actually exercised) and the `cached`
        // lens (certification bypasses the cache by design). Any other
        // procedure showing up uncertified is a regression.
        assert!(summary.certified_answers > 0);
        let uncertified: usize = summary.uncertified_by_procedure.values().sum();
        assert_eq!(
            summary.certified_answers + uncertified,
            summary.definitive_answers,
            "{summary:?}"
        );
        assert!(
            summary
                .uncertified_by_procedure
                .keys()
                .all(|name| name == "eager:preprocess" || name == "cached"),
            "only the preprocess and cached lenses may answer uncertified: {summary:?}"
        );
    }

    #[test]
    fn metamorphic_campaign_is_clean_too() {
        let config = CampaignConfig {
            cases: 4,
            metamorphic: true,
            ..tiny_config()
        };
        let summary = run_campaign(&config);
        assert!(summary.clean(), "failures: {:#?}", summary.failures);
        assert!(summary.meta_checks > 0);
    }
}
