//! Metamorphic transforms.
//!
//! Each transform produces a formula whose validity relates to the input's
//! in a known way, multiplying the coverage of every generated case beyond
//! the plain differential check:
//!
//! * [`alpha_rename`] — renames every symbolic constant, function and
//!   predicate symbol. Validity is preserved exactly.
//! * [`shift_ints`] — adds the same constant offset to every integer
//!   symbolic constant. Separation logic is translation-invariant, so
//!   validity is preserved exactly.
//! * negation (`mk_not`) — a formula and its negation can never both be
//!   valid, and a valid formula's negation is unsatisfiable, hence
//!   invalid.

use std::collections::HashMap;

use sufsat_suf::{substitute, Term, TermId, TermManager};

/// Rebuilds `root` with every integer/Boolean constant and every
/// function/predicate symbol renamed to a fresh `ren!…` name. The result
/// is equivalid with the input.
pub fn alpha_rename(tm: &mut TermManager, root: TermId) -> TermId {
    let order = tm.postorder(root);
    let mut map: HashMap<TermId, TermId> = HashMap::with_capacity(order.len());
    let mut fun_map = HashMap::new();
    let mut pred_map = HashMap::new();
    for id in order {
        let get = |m: &HashMap<TermId, TermId>, c: TermId| -> TermId { m[&c] };
        let new_id = match tm.term(id).clone() {
            Term::IntVar(v) => {
                let name = format!("ren!{}", tm.int_var_name(v));
                tm.int_var(&name)
            }
            Term::BoolVar(b) => {
                let name = format!("ren!{}", tm.bool_var_name(b));
                tm.bool_var(&name)
            }
            Term::App(f, args) => {
                let args: Vec<TermId> = args.iter().map(|&a| get(&map, a)).collect();
                let nf = *fun_map.entry(f).or_insert_with(|| {
                    let name = format!("ren!{}", tm.fun_name(f));
                    let arity = tm.fun_arity(f);
                    tm.declare_fun(&name, arity)
                });
                tm.mk_app(nf, args)
            }
            Term::PApp(p, args) => {
                let args: Vec<TermId> = args.iter().map(|&a| get(&map, a)).collect();
                let np = *pred_map.entry(p).or_insert_with(|| {
                    let name = format!("ren!{}", tm.pred_name(p));
                    let arity = tm.pred_arity(p);
                    tm.declare_pred(&name, arity)
                });
                tm.mk_papp(np, args)
            }
            Term::True => tm.mk_true(),
            Term::False => tm.mk_false(),
            Term::Not(a) => {
                let a = get(&map, a);
                tm.mk_not(a)
            }
            Term::And(a, b) => {
                let (a, b) = (get(&map, a), get(&map, b));
                tm.mk_and(a, b)
            }
            Term::Or(a, b) => {
                let (a, b) = (get(&map, a), get(&map, b));
                tm.mk_or(a, b)
            }
            Term::Implies(a, b) => {
                let (a, b) = (get(&map, a), get(&map, b));
                tm.mk_implies(a, b)
            }
            Term::Iff(a, b) => {
                let (a, b) = (get(&map, a), get(&map, b));
                tm.mk_iff(a, b)
            }
            Term::IteBool(c, t, e) => {
                let (c, t, e) = (get(&map, c), get(&map, t), get(&map, e));
                tm.mk_ite_bool(c, t, e)
            }
            Term::Eq(a, b) => {
                let (a, b) = (get(&map, a), get(&map, b));
                tm.mk_eq(a, b)
            }
            Term::Lt(a, b) => {
                let (a, b) = (get(&map, a), get(&map, b));
                tm.mk_lt(a, b)
            }
            Term::Succ(a) => {
                let a = get(&map, a);
                tm.mk_succ(a)
            }
            Term::Pred(a) => {
                let a = get(&map, a);
                tm.mk_pred(a)
            }
            Term::IteInt(c, t, e) => {
                let (c, t, e) = (get(&map, c), get(&map, t), get(&map, e));
                tm.mk_ite_int(c, t, e)
            }
        };
        map.insert(id, new_id);
    }
    map[&root]
}

/// Shifts every integer symbolic constant occurring in `root` by `k`
/// (replacing `v` with `v + k`). The result is equivalid with the input.
pub fn shift_ints(tm: &mut TermManager, root: TermId, k: i64) -> TermId {
    if k == 0 {
        return root;
    }
    let vars: Vec<TermId> = tm
        .postorder(root)
        .into_iter()
        .filter(|&id| matches!(tm.term(id), Term::IntVar(_)))
        .collect();
    let mut map = HashMap::with_capacity(vars.len());
    for v in vars {
        let shifted = tm.mk_offset(v, k);
        map.insert(v, shifted);
    }
    substitute(tm, root, &map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_core::{decide, DecideOptions};

    fn verdict(tm: &mut TermManager, phi: TermId) -> bool {
        decide(tm, phi, &DecideOptions::default()).outcome.is_valid()
    }

    #[test]
    fn alpha_rename_preserves_validity() {
        let cases = [
            ("(vars x y) (funs (f 1)) (formula (=> (= x y) (= (f x) (f y))))", true),
            ("(vars x y) (funs (f 1)) (formula (=> (= (f x) (f y)) (= x y)))", false),
            ("(vars a b c) (preds (q 1)) (formula (=> (and (< a b) (< b c)) (< a c)))", true),
        ];
        for (text, expected) in cases {
            let mut tm = TermManager::new();
            let phi = sufsat_suf::parse_problem(&mut tm, text).expect("parses");
            let renamed = alpha_rename(&mut tm, phi);
            assert_eq!(verdict(&mut tm, renamed), expected, "{text}");
            // Renaming twice is still equivalid.
            let twice = alpha_rename(&mut tm, renamed);
            assert_eq!(verdict(&mut tm, twice), expected, "{text}");
        }
    }

    #[test]
    fn shift_preserves_validity() {
        let cases = [
            ("(vars x y) (formula (or (< x y) (>= x y)))", true),
            ("(vars x y) (formula (< x (succ y)))", false),
            ("(vars x) (formula (< x (succ x)))", true),
        ];
        for (text, expected) in cases {
            for k in [-3i64, 1, 7] {
                let mut tm = TermManager::new();
                let phi = sufsat_suf::parse_problem(&mut tm, text).expect("parses");
                let shifted = shift_ints(&mut tm, phi, k);
                assert_eq!(verdict(&mut tm, shifted), expected, "{text} shift {k}");
            }
        }
    }
}
