//! Self-contained reproducer files.
//!
//! Every oracle failure is persisted as a single `.suf` file that the
//! stock problem parser can read back directly: a `;`-comment header
//! records the campaign seed, case index and failure, the shrunk problem
//! is the only uncommented text, and the original (pre-shrink) problem
//! rides along commented out. `sufsat-fuzz --replay <file>` re-runs the
//! panel on it; the checked-in regression corpus replays in `cargo test`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use sufsat_suf::{print_problem, TermId, TermManager};

/// Provenance recorded in a reproducer header.
#[derive(Debug, Clone)]
pub struct ReproducerInfo {
    /// Campaign seed the failing case came from.
    pub campaign_seed: u64,
    /// Case index within the campaign.
    pub case_index: usize,
    /// Stable failure kind (`disagreement` / `certificate` / `panic`).
    pub kind: String,
    /// Human-readable failure description.
    pub detail: String,
}

/// Renders a reproducer file's full text.
pub fn reproducer_text(
    info: &ReproducerInfo,
    tm: &TermManager,
    shrunk: TermId,
    original: TermId,
) -> String {
    let mut out = String::new();
    out.push_str("; sufsat-fuzz reproducer\n");
    out.push_str(&format!(
        "; seed: {} case: {}\n",
        info.campaign_seed, info.case_index
    ));
    out.push_str(&format!("; failure: {}\n", info.kind));
    for line in info.detail.lines() {
        out.push_str(&format!("; detail: {line}\n"));
    }
    out.push_str(&print_problem(tm, shrunk));
    out.push('\n');
    if shrunk != original {
        out.push_str("; original (pre-shrink):\n");
        for line in print_problem(tm, original).lines() {
            out.push_str(&format!("; {line}\n"));
        }
    }
    out
}

/// Deterministic file name for a failure, derived from provenance only.
pub fn reproducer_file_name(info: &ReproducerInfo) -> String {
    format!(
        "case-{:016x}-{:05}-{}.suf",
        info.campaign_seed, info.case_index, info.kind
    )
}

/// Writes the reproducer into `dir` (created if missing); returns the path.
pub fn write_reproducer(
    dir: &Path,
    info: &ReproducerInfo,
    tm: &TermManager,
    shrunk: TermId,
    original: TermId,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(reproducer_file_name(info));
    fs::write(&path, reproducer_text(info, tm, shrunk, original))?;
    Ok(path)
}

/// Parses a reproducer file's problem (the shrunk formula) into `tm`.
pub fn read_reproducer(tm: &mut TermManager, path: &Path) -> io::Result<TermId> {
    let text = fs::read_to_string(path)?;
    sufsat_suf::parse_problem(tm, &text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_suf::parse_problem;

    #[test]
    fn reproducer_round_trips_through_the_parser() {
        let mut tm = TermManager::new();
        let original = parse_problem(
            &mut tm,
            "(vars x y) (funs (f 1)) (formula (and (< x y) (= (f x) y)))",
        )
        .expect("parses");
        let shrunk = parse_problem(&mut tm, "(vars x y) (formula (< x y))").expect("parses");
        let info = ReproducerInfo {
            campaign_seed: 42,
            case_index: 7,
            kind: "disagreement".to_string(),
            detail: "eager:sd=valid baseline:lazy=invalid\nsecond line".to_string(),
        };
        let text = reproducer_text(&info, &tm, shrunk, original);
        assert!(text.contains("; seed: 42 case: 7"));
        assert!(text.contains("; failure: disagreement"));
        assert!(text.contains("; original (pre-shrink):"));
        let mut tm2 = TermManager::new();
        let parsed = parse_problem(&mut tm2, &text).expect("shrunk problem parses back");
        assert_eq!(tm2.dag_size(parsed), tm.dag_size(shrunk));
    }

    #[test]
    fn file_name_is_deterministic_and_fs_safe() {
        let info = ReproducerInfo {
            campaign_seed: 0xdead_beef,
            case_index: 3,
            kind: "panic".to_string(),
            detail: String::new(),
        };
        assert_eq!(
            reproducer_file_name(&info),
            "case-00000000deadbeef-00003-panic.suf"
        );
    }
}
