//! Seeded random SUF formula generation.
//!
//! The generator grows two pools — integer-sorted and Boolean-sorted
//! terms — by repeatedly applying random constructors, mirroring the shape
//! of the paper's workloads: separation predicates with small constant
//! offsets, uninterpreted function/predicate applications, ITE cascades
//! from symbolic simulation, and an arbitrary propositional skeleton on
//! top. Everything is driven by the in-tree [`Prng`], so a `(seed, config)`
//! pair reproduces the exact formula on any machine.

use sufsat_prng::Prng;
use sufsat_suf::{TermId, TermManager};

/// Shape parameters for one generated formula.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Integer symbolic constants available to the formula.
    pub int_vars: usize,
    /// Boolean symbolic constants available to the formula.
    pub bool_vars: usize,
    /// Arities of the uninterpreted functions declared for the formula.
    pub fun_arities: Vec<usize>,
    /// Arities of the uninterpreted predicates declared for the formula.
    pub pred_arities: Vec<usize>,
    /// Construction steps: each step pushes one new term into a pool.
    pub ops: usize,
    /// Succ/pred chains are drawn from `[-max_offset, max_offset]`.
    pub max_offset: i64,
    /// Probability that a step builds an `ite` (when a condition exists).
    pub ite_density: f64,
    /// Probability that a step builds a function/predicate application.
    pub app_density: f64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            int_vars: 3,
            bool_vars: 1,
            fun_arities: vec![1, 2],
            pred_arities: vec![1],
            ops: 18,
            max_offset: 2,
            ite_density: 0.15,
            app_density: 0.2,
        }
    }
}

impl GenConfig {
    /// A configuration without uninterpreted symbols: pure separation
    /// logic, where the exhaustive small-model oracle can be consulted.
    pub fn separation_only() -> GenConfig {
        GenConfig {
            fun_arities: Vec::new(),
            pred_arities: Vec::new(),
            ..GenConfig::default()
        }
    }
}

/// Generates one random formula into `tm`.
///
/// The result is always Boolean-sorted; degenerate draws collapse to a
/// single separation atom rather than a constant.
pub fn generate(tm: &mut TermManager, rng: &mut Prng, cfg: &GenConfig) -> TermId {
    let int_vars: Vec<TermId> = (0..cfg.int_vars.max(2))
        .map(|i| tm.int_var(&format!("v{i}")))
        .collect();
    let mut bools: Vec<TermId> = (0..cfg.bool_vars)
        .map(|i| tm.bool_var(&format!("b{i}")))
        .collect();
    let funs: Vec<_> = cfg
        .fun_arities
        .iter()
        .enumerate()
        .map(|(i, &a)| tm.declare_fun(&format!("f{i}"), a.max(1)))
        .collect();
    let preds: Vec<_> = cfg
        .pred_arities
        .iter()
        .enumerate()
        .map(|(i, &a)| tm.declare_pred(&format!("p{i}"), a.max(1)))
        .collect();
    let mut ints: Vec<TermId> = int_vars;

    for _ in 0..cfg.ops {
        let pick_int = |rng: &mut Prng, ints: &[TermId]| ints[rng.random_range(0..ints.len())];
        if rng.random_bool(cfg.app_density) && !(funs.is_empty() && preds.is_empty()) {
            // Application step.
            let n_choices = funs.len() + preds.len();
            let k = rng.random_range(0..n_choices);
            if k < funs.len() {
                let f = funs[k];
                let arity = tm.fun_arity(f);
                let args: Vec<TermId> = (0..arity).map(|_| pick_int(rng, &ints)).collect();
                let t = tm.mk_app(f, args);
                ints.push(t);
            } else {
                let p = preds[k - funs.len()];
                let arity = tm.pred_arity(p);
                let args: Vec<TermId> = (0..arity).map(|_| pick_int(rng, &ints)).collect();
                let t = tm.mk_papp(p, args);
                bools.push(t);
            }
        } else if rng.random_bool(cfg.ite_density) && !bools.is_empty() {
            // ITE step, either sort.
            let c = bools[rng.random_range(0..bools.len())];
            if rng.random_bool(0.5) && bools.len() >= 2 {
                let t = bools[rng.random_range(0..bools.len())];
                let e = bools[rng.random_range(0..bools.len())];
                let ite = tm.mk_ite_bool(c, t, e);
                bools.push(ite);
            } else {
                let t = pick_int(rng, &ints);
                let e = pick_int(rng, &ints);
                let ite = tm.mk_ite_int(c, t, e);
                ints.push(ite);
            }
        } else {
            match rng.random_range(0u8..8) {
                // Separation atoms: comparisons with a constant offset.
                0 | 1 => {
                    let a = pick_int(rng, &ints);
                    let b = pick_int(rng, &ints);
                    let off = rng.random_range(-cfg.max_offset..cfg.max_offset + 1);
                    let b = tm.mk_offset(b, off);
                    let t = match rng.random_range(0u8..4) {
                        0 => tm.mk_eq(a, b),
                        1 => tm.mk_lt(a, b),
                        2 => tm.mk_le(a, b),
                        _ => tm.mk_ne(a, b),
                    };
                    bools.push(t);
                }
                // Offset chains.
                2 => {
                    let a = pick_int(rng, &ints);
                    let off = rng.random_range(-cfg.max_offset..cfg.max_offset + 1);
                    let t = tm.mk_offset(a, off.max(1));
                    ints.push(t);
                }
                // Propositional skeleton.
                3 if !bools.is_empty() => {
                    let a = bools[rng.random_range(0..bools.len())];
                    let t = tm.mk_not(a);
                    bools.push(t);
                }
                4 | 5 if bools.len() >= 2 => {
                    let a = bools[rng.random_range(0..bools.len())];
                    let b = bools[rng.random_range(0..bools.len())];
                    let t = match rng.random_range(0u8..4) {
                        0 => tm.mk_and(a, b),
                        1 => tm.mk_or(a, b),
                        2 => tm.mk_implies(a, b),
                        _ => tm.mk_iff(a, b),
                    };
                    bools.push(t);
                }
                _ => {
                    let a = pick_int(rng, &ints);
                    let b = pick_int(rng, &ints);
                    let t = tm.mk_lt(a, b);
                    bools.push(t);
                }
            }
        }
    }

    // Root: a small random combination of the most recently built Boolean
    // terms, falling back to a plain atom if the pools collapsed.
    let tail: Vec<TermId> = bools.iter().rev().take(3).copied().collect();
    let root = match tail.len() {
        0 => {
            let a = ints[0];
            let b = ints[1 % ints.len()];
            tm.mk_lt(a, b)
        }
        1 => tail[0],
        _ => {
            if rng.random_bool(0.5) {
                tm.mk_or_many(&tail)
            } else {
                tm.mk_implies(tail[1], tail[0])
            }
        }
    };
    root
}

/// Derives the per-case seed from the campaign seed — SplitMix-style so
/// neighbouring case indices get uncorrelated streams.
pub fn case_seed(campaign_seed: u64, case_index: usize) -> u64 {
    let mut z = campaign_seed
        .wrapping_add((case_index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_suf::print_problem;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 0xdead_beef] {
            let cfg = GenConfig::default();
            let mut tm1 = TermManager::new();
            let mut rng1 = Prng::seed_from_u64(seed);
            let a = generate(&mut tm1, &mut rng1, &cfg);
            let mut tm2 = TermManager::new();
            let mut rng2 = Prng::seed_from_u64(seed);
            let b = generate(&mut tm2, &mut rng2, &cfg);
            assert_eq!(print_problem(&tm1, a), print_problem(&tm2, b), "seed {seed}");
        }
    }

    #[test]
    fn generated_formulas_are_bool_sorted_and_parse_back() {
        let cfg = GenConfig::default();
        for seed in 0..40 {
            let mut tm = TermManager::new();
            let mut rng = Prng::seed_from_u64(seed);
            let phi = generate(&mut tm, &mut rng, &cfg);
            assert_eq!(tm.sort(phi), sufsat_suf::Sort::Bool, "seed {seed}");
            let text = print_problem(&tm, phi);
            let mut tm2 = TermManager::new();
            let phi2 = sufsat_suf::parse_problem(&mut tm2, &text).expect("round-trips");
            assert_eq!(tm.dag_size(phi), tm2.dag_size(phi2), "seed {seed}");
        }
    }

    #[test]
    fn separation_only_config_generates_no_applications() {
        let cfg = GenConfig::separation_only();
        for seed in 0..20 {
            let mut tm = TermManager::new();
            let mut rng = Prng::seed_from_u64(seed);
            let phi = generate(&mut tm, &mut rng, &cfg);
            assert!(!sufsat_suf::contains_applications(&tm, phi), "seed {seed}");
        }
    }

    #[test]
    fn case_seeds_are_spread() {
        let s: Vec<u64> = (0..100).map(|i| case_seed(42, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }
}
