//! The differential, self-checking oracle.
//!
//! Every formula is pushed through a panel of independent procedures —
//! the six eager encoding modes, the lazy and case-splitting baselines,
//! the incremental session (the negated formula NNF-split into pushed
//! conjuncts) and the parallel portfolio — and the verdicts are
//! compared. With
//! certification enabled, each eager/portfolio answer additionally
//! carries a [`Certificate`]: SAT answers are replayed through the
//! reference evaluator, UNSAT answers through the DRAT/RUP proof
//! checker. Any disagreement, failed certificate or panic is an oracle
//! failure carrying everything needed to reproduce it.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use sufsat_baselines::{decide_lazy, decide_svc, LazyOptions, SvcOptions};
use sufsat_core::{
    decide, decide_portfolio, CacheHandle, DecideOptions, EncodingMode, Outcome,
    PortfolioOptions,
};
use sufsat_incremental::{conjuncts_of, Session};
use sufsat_suf::{TermId, TermManager};

/// A procedure's answer, stripped to what the oracle compares.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The formula is valid.
    Valid,
    /// The formula is falsifiable.
    Invalid,
    /// The procedure gave up (budget/timeout) — excluded from agreement.
    Unknown,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Valid => write!(f, "valid"),
            Verdict::Invalid => write!(f, "invalid"),
            Verdict::Unknown => write!(f, "unknown"),
        }
    }
}

impl From<&Outcome> for Verdict {
    fn from(o: &Outcome) -> Verdict {
        match o {
            Outcome::Valid => Verdict::Valid,
            Outcome::Invalid(_) => Verdict::Invalid,
            Outcome::Unknown(_) => Verdict::Unknown,
        }
    }
}

/// One procedure's result for one formula.
#[derive(Debug, Copy, Clone)]
pub struct ProcedureAnswer {
    /// The verdict.
    pub verdict: Verdict,
    /// Whether a machine-checked certificate accompanied the verdict.
    pub certified: bool,
}

/// A named decision procedure the oracle can run.
///
/// The closure receives a read-only term manager and clones it
/// internally, so procedures cannot contaminate each other through
/// shared interning state.
pub struct Procedure {
    /// Display name, e.g. `eager:hybrid(0)`.
    pub name: String,
    /// Runs the procedure. `Err` reports a failed certificate check.
    #[allow(clippy::type_complexity)]
    pub run: Box<dyn Fn(&TermManager, TermId) -> Result<ProcedureAnswer, String>>,
}

/// Panel configuration.
#[derive(Debug, Clone)]
pub struct OracleOptions {
    /// Per-procedure wall-clock timeout.
    pub timeout: Duration,
    /// Transitivity-constraint budget for the eager encodings.
    pub trans_budget: usize,
    /// Certify eager/portfolio answers (model replay + RUP check).
    pub certify: bool,
    /// Include the lazy and SVC baseline procedures.
    pub include_baselines: bool,
    /// Include the parallel portfolio engine.
    pub include_portfolio: bool,
}

impl Default for OracleOptions {
    fn default() -> OracleOptions {
        OracleOptions {
            timeout: Duration::from_millis(2_000),
            trans_budget: 2_000_000,
            certify: true,
            include_baselines: true,
            include_portfolio: true,
        }
    }
}

fn eager_procedure(mode: EncodingMode, options: &OracleOptions) -> Procedure {
    let name = match mode {
        EncodingMode::Sd => "eager:sd".to_string(),
        EncodingMode::Eij => "eager:eij".to_string(),
        EncodingMode::Hybrid(t) => format!("eager:hybrid({t})"),
        EncodingMode::FixedHybrid => "eager:fixed-hybrid".to_string(),
    };
    let opts = DecideOptions {
        mode,
        trans_budget: options.trans_budget,
        timeout: Some(options.timeout),
        certify: options.certify,
        ..DecideOptions::default()
    };
    Procedure {
        name,
        run: Box::new(move |tm, phi| {
            let mut tm = tm.clone();
            let decision = decide(&mut tm, phi, &opts);
            let verdict = Verdict::from(&decision.outcome);
            match decision.certificate {
                Some(cert) if !cert.holds() => {
                    Err(format!("certificate check failed: {cert:?}"))
                }
                Some(_) => Ok(ProcedureAnswer {
                    verdict,
                    certified: true,
                }),
                None => Ok(ProcedureAnswer {
                    verdict,
                    certified: false,
                }),
            }
        }),
    }
}

/// Builds the standard panel for `options`.
pub fn default_procedures(options: &OracleOptions) -> Vec<Procedure> {
    let mut procs: Vec<Procedure> = [
        EncodingMode::Sd,
        EncodingMode::Eij,
        EncodingMode::Hybrid(0),
        EncodingMode::Hybrid(2),
        EncodingMode::Hybrid(700),
        EncodingMode::FixedHybrid,
    ]
    .into_iter()
    .map(|mode| eager_procedure(mode, options))
    .collect();

    {
        // Eleventh lens: the default hybrid with SatELite-style CNF
        // preprocessing (subsumption, self-subsuming resolution, bounded
        // variable elimination with model reconstruction). Certification
        // is left off so elimination actually runs — under proof logging
        // the solver restricts itself to the RUP-replayable subset — and
        // wrong reconstructed models still abort via the counterexample
        // replay assertions inside `decide`.
        let opts = DecideOptions {
            trans_budget: options.trans_budget,
            timeout: Some(options.timeout),
            certify: false,
            preprocess: true,
            ..DecideOptions::default()
        };
        procs.push(Procedure {
            name: "eager:preprocess".to_string(),
            run: Box::new(move |tm, phi| {
                let mut tm = tm.clone();
                let decision = decide(&mut tm, phi, &opts);
                Ok(ProcedureAnswer {
                    verdict: Verdict::from(&decision.outcome),
                    certified: false,
                })
            }),
        });
    }

    {
        // Twelfth lens: the result cache. One cache is shared across the
        // panel's whole lifetime — a campaign reuses the panel, so
        // α-equivalent cases collide across iterations, exercising the
        // canonicalizer on unrelated-looking formulas. Each formula is
        // decided cold (populating or hitting the shared cache), warm
        // (a guaranteed hit when cold was definitive) and fresh (a
        // cache-free reference); any definitive-verdict mismatch among
        // the three is a hard oracle failure, not a mere disagreement.
        let cached_opts = DecideOptions {
            trans_budget: options.trans_budget,
            timeout: Some(options.timeout),
            certify: false,
            cache: Some(CacheHandle::with_budget(16 << 20)),
            ..DecideOptions::default()
        };
        let fresh_opts = DecideOptions {
            trans_budget: options.trans_budget,
            timeout: Some(options.timeout),
            certify: false,
            ..DecideOptions::default()
        };
        procs.push(Procedure {
            name: "cached".to_string(),
            run: Box::new(move |tm, phi| {
                let cold = decide(&mut tm.clone(), phi, &cached_opts);
                let warm = decide(&mut tm.clone(), phi, &cached_opts);
                let fresh = decide(&mut tm.clone(), phi, &fresh_opts);
                let cold_v = Verdict::from(&cold.outcome);
                let warm_v = Verdict::from(&warm.outcome);
                let fresh_v = Verdict::from(&fresh.outcome);
                let definitive: Vec<Verdict> = [cold_v, warm_v, fresh_v]
                    .into_iter()
                    .filter(|v| *v != Verdict::Unknown)
                    .collect();
                if definitive.windows(2).any(|w| w[0] != w[1]) {
                    return Err(format!(
                        "cache verdict mismatch: cold={cold_v} warm={warm_v} fresh={fresh_v}"
                    ));
                }
                Ok(ProcedureAnswer {
                    verdict: definitive.first().copied().unwrap_or(Verdict::Unknown),
                    certified: false,
                })
            }),
        });
    }

    if options.include_baselines {
        let lazy_opts = LazyOptions {
            timeout: Some(options.timeout),
            ..LazyOptions::default()
        };
        procs.push(Procedure {
            name: "baseline:lazy".to_string(),
            run: Box::new(move |tm, phi| {
                let mut tm = tm.clone();
                let (outcome, _) = decide_lazy(&mut tm, phi, &lazy_opts);
                Ok(ProcedureAnswer {
                    verdict: Verdict::from(&outcome),
                    certified: false,
                })
            }),
        });
        let svc_opts = SvcOptions {
            timeout: Some(options.timeout),
            ..SvcOptions::default()
        };
        procs.push(Procedure {
            name: "baseline:svc".to_string(),
            run: Box::new(move |tm, phi| {
                let mut tm = tm.clone();
                let (outcome, _) = decide_svc(&mut tm, phi, &svc_opts);
                Ok(ProcedureAnswer {
                    verdict: Verdict::from(&outcome),
                    certified: false,
                })
            }),
        });
    }

    {
        // The incremental session answers the same validity question by
        // refutation: ¬φ is NNF-split into conjuncts, each pushed in its
        // own scope, and one check decides their joint satisfiability.
        // This exercises activation-literal scoping, the monotone encoder
        // and session certification against every other panel member.
        let sess_opts = DecideOptions {
            trans_budget: options.trans_budget,
            timeout: Some(options.timeout),
            certify: options.certify,
            ..DecideOptions::default()
        };
        procs.push(Procedure {
            name: "session".to_string(),
            run: Box::new(move |tm, phi| {
                let mut tm = tm.clone();
                let neg = tm.mk_not(phi);
                let conjuncts = conjuncts_of(&mut tm, neg);
                let mut session = Session::with_term_manager(tm, sess_opts.clone());
                for c in conjuncts {
                    session.push();
                    session.assert(c);
                }
                let result = session.check();
                let verdict = Verdict::from(&result.outcome);
                match result.certificate {
                    Some(cert) if !cert.holds() => {
                        Err(format!("certificate check failed: {cert:?}"))
                    }
                    Some(_) => Ok(ProcedureAnswer {
                        verdict,
                        certified: true,
                    }),
                    None => Ok(ProcedureAnswer {
                        verdict,
                        certified: false,
                    }),
                }
            }),
        });
    }

    if options.include_portfolio {
        let pf_opts = PortfolioOptions {
            base: DecideOptions {
                trans_budget: options.trans_budget,
                timeout: Some(options.timeout),
                certify: options.certify,
                ..DecideOptions::default()
            },
            ..PortfolioOptions::default()
        };
        procs.push(Procedure {
            name: "portfolio".to_string(),
            run: Box::new(move |tm, phi| {
                let mut tm = tm.clone();
                let decision = decide_portfolio(&mut tm, phi, &pf_opts);
                let verdict = Verdict::from(&decision.outcome);
                match decision.certificate {
                    Some(cert) if !cert.holds() => {
                        Err(format!("certificate check failed: {cert:?}"))
                    }
                    Some(_) => Ok(ProcedureAnswer {
                        verdict,
                        certified: true,
                    }),
                    None => Ok(ProcedureAnswer {
                        verdict,
                        certified: false,
                    }),
                }
            }),
        });
    }

    procs
}

/// Everything the panel produced for one formula, when it agreed.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// `(procedure name, answer)` in panel order.
    pub answers: Vec<(String, ProcedureAnswer)>,
    /// The consensus among definitive answers, if any procedure answered.
    pub consensus: Option<Verdict>,
}

impl OracleReport {
    /// How many answers carried a checked certificate.
    pub fn certified_count(&self) -> usize {
        self.answers.iter().filter(|(_, a)| a.certified).count()
    }
}

/// Why the oracle rejected a formula.
#[derive(Debug, Clone)]
pub enum OracleFailure {
    /// Two procedures returned different definitive verdicts.
    Disagreement {
        /// All `(name, verdict)` pairs observed.
        answers: Vec<(String, Verdict)>,
    },
    /// A verdict's certificate did not check out.
    Certificate {
        /// The offending procedure.
        name: String,
        /// The certificate checker's complaint.
        detail: String,
    },
    /// A procedure panicked (a reference-replay assertion, typically).
    Panic {
        /// The offending procedure.
        name: String,
        /// The panic payload, if it was a string.
        detail: String,
    },
}

impl OracleFailure {
    /// Stable one-word classifier, used in reproducer headers and for
    /// shrinking (the shrinker preserves the failure kind, not the exact
    /// message).
    pub fn kind(&self) -> &'static str {
        match self {
            OracleFailure::Disagreement { .. } => "disagreement",
            OracleFailure::Certificate { .. } => "certificate",
            OracleFailure::Panic { .. } => "panic",
        }
    }
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleFailure::Disagreement { answers } => {
                write!(f, "procedures disagree:")?;
                for (name, v) in answers {
                    write!(f, " {name}={v}")?;
                }
                Ok(())
            }
            OracleFailure::Certificate { name, detail } => {
                write!(f, "certificate failure in {name}: {detail}")
            }
            OracleFailure::Panic { name, detail } => {
                write!(f, "panic in {name}: {detail}")
            }
        }
    }
}

/// Runs the whole panel on `phi` and cross-checks the verdicts.
///
/// `Unknown` answers never fail the oracle (a budget running out is not a
/// bug), but at least two definitive answers must exist for a formula to
/// count as covered — the campaign tracks that separately.
pub fn run_oracle(
    tm: &TermManager,
    phi: TermId,
    procs: &[Procedure],
) -> Result<OracleReport, OracleFailure> {
    let span = sufsat_obs::span_with!("fuzz.oracle", procedures = procs.len());
    let mut answers: Vec<(String, ProcedureAnswer)> = Vec::with_capacity(procs.len());
    for proc in procs {
        let outcome = catch_unwind(AssertUnwindSafe(|| (proc.run)(tm, phi)));
        match outcome {
            Ok(Ok(answer)) => {
                if span.is_recording() {
                    sufsat_obs::event!(
                        "fuzz.procedure",
                        name = proc.name.as_str(),
                        verdict = match answer.verdict {
                            Verdict::Valid => "valid",
                            Verdict::Invalid => "invalid",
                            Verdict::Unknown => "unknown",
                        },
                        certified = answer.certified,
                        panicked = false
                    );
                }
                answers.push((proc.name.clone(), answer));
            }
            Ok(Err(detail)) => {
                let failure = OracleFailure::Certificate {
                    name: proc.name.clone(),
                    detail,
                };
                trace_failure(&span, &failure);
                return Err(failure);
            }
            Err(payload) => {
                if span.is_recording() {
                    sufsat_obs::event!(
                        "fuzz.procedure",
                        name = proc.name.as_str(),
                        verdict = "panic",
                        certified = false,
                        panicked = true
                    );
                }
                let detail = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                let failure = OracleFailure::Panic {
                    name: proc.name.clone(),
                    detail,
                };
                trace_failure(&span, &failure);
                return Err(failure);
            }
        }
    }

    let definitive: Vec<Verdict> = answers
        .iter()
        .map(|(_, a)| a.verdict)
        .filter(|v| *v != Verdict::Unknown)
        .collect();
    let consensus = definitive.first().copied();
    if let Some(first) = consensus {
        if definitive.iter().any(|v| *v != first) {
            let failure = OracleFailure::Disagreement {
                answers: answers
                    .iter()
                    .map(|(name, a)| (name.clone(), a.verdict))
                    .collect(),
            };
            trace_failure(&span, &failure);
            return Err(failure);
        }
    }
    if span.is_recording() {
        static ORACLE_RUNS: sufsat_obs::Counter = sufsat_obs::Counter::new("fuzz.oracle.runs");
        ORACLE_RUNS.incr();
        sufsat_obs::event!(
            "fuzz.oracle.done",
            procedures = procs.len(),
            definitive = definitive.len(),
            consensus = consensus.map_or("none", |v| match v {
                Verdict::Valid => "valid",
                Verdict::Invalid => "invalid",
                Verdict::Unknown => "unknown",
            })
        );
    }
    Ok(OracleReport { answers, consensus })
}

fn trace_failure(span: &sufsat_obs::Span, failure: &OracleFailure) {
    if !span.is_recording() {
        return;
    }
    static ORACLE_FAILURES: sufsat_obs::Counter = sufsat_obs::Counter::new("fuzz.oracle.failures");
    ORACLE_FAILURES.incr();
    let name = match failure {
        OracleFailure::Certificate { name, .. } | OracleFailure::Panic { name, .. } => {
            name.as_str()
        }
        OracleFailure::Disagreement { .. } => "<panel>",
    };
    sufsat_obs::event!("fuzz.failure", kind = failure.kind(), name = name);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sufsat_suf::parse_problem;

    #[test]
    fn panel_agrees_on_simple_formulas() {
        let options = OracleOptions::default();
        let procs = default_procedures(&options);
        assert_eq!(procs.len(), 12);
        assert!(
            procs.iter().any(|p| p.name == "eager:preprocess"),
            "the preprocessing lens must be on the panel"
        );
        assert!(
            procs.iter().any(|p| p.name == "cached"),
            "the result-cache lens must be on the panel"
        );
        let cases = [
            ("(vars x y) (funs (f 1)) (formula (=> (= x y) (= (f x) (f y))))", Verdict::Valid),
            ("(vars x y) (funs (f 1)) (formula (=> (= (f x) (f y)) (= x y)))", Verdict::Invalid),
            ("(vars x) (formula (< x (succ x)))", Verdict::Valid),
        ];
        for (text, expected) in cases {
            let mut tm = TermManager::new();
            let phi = parse_problem(&mut tm, text).expect("parses");
            let report = run_oracle(&tm, phi, &procs).expect("oracle accepts");
            assert_eq!(report.consensus, Some(expected), "{text}");
            // All six eager lanes and the portfolio certified their answers.
            assert!(report.certified_count() >= 7, "{text}");
        }
    }

    #[test]
    fn disagreement_is_reported() {
        let mut tm = TermManager::new();
        let phi = parse_problem(&mut tm, "(vars x) (formula (< x (succ x)))").expect("parses");
        let truthful = eager_procedure(EncodingMode::Sd, &OracleOptions::default());
        let liar = Procedure {
            name: "liar".to_string(),
            run: Box::new(|_, _| {
                Ok(ProcedureAnswer {
                    verdict: Verdict::Invalid,
                    certified: false,
                })
            }),
        };
        let err = run_oracle(&tm, phi, &[truthful, liar]).expect_err("must disagree");
        assert_eq!(err.kind(), "disagreement");
    }

    #[test]
    fn panics_are_contained() {
        let mut tm = TermManager::new();
        let phi = parse_problem(&mut tm, "(vars x) (formula (< x (succ x)))").expect("parses");
        let bomb = Procedure {
            name: "bomb".to_string(),
            run: Box::new(|_, _| panic!("boom")),
        };
        let err = run_oracle(&tm, phi, &[bomb]).expect_err("must fail");
        assert_eq!(err.kind(), "panic");
        match err {
            OracleFailure::Panic { detail, .. } => assert!(detail.contains("boom")),
            other => panic!("wrong failure: {other:?}"),
        }
    }
}
